//! Integration tests of the observability layer (ISSUE 6): a fully traced
//! BMC/PDR portfolio race on the `deep_pipeline(16)` workload.
//!
//! The acceptance criteria exercised here:
//!
//! * the span profile covers ≥ 95% of the traced wall-clock;
//! * `trace.jsonl` round-trips through the report renderer (serialise →
//!   parse → identical events);
//! * span nesting reconstructs into a well-nested per-thread tree from the
//!   JSONL alone, under the portfolio's two racing engine threads;
//! * sequence numbers are strictly monotone per thread;
//! * the unified metrics cover all three stat families (solver, PDR,
//!   encoder) plus the satellite obligation-queue statistics;
//! * the checker-level `SequentialOptions::trace` plumbing produces a
//!   snapshot with replayable structure on a falsified design.

use ipcl::checker::{
    check_netlist_sequential_with, Engine, Latency, SequentialOptions, TraceConfig, Tracer,
};
use ipcl::core::example::ExampleArch;
use ipcl::pdr::deep::deep_pipeline;
use ipcl::pdr::{check_property_portfolio_traced, PdrOptions, PortfolioWinner};
use ipcl::pipesim::BrokenVariant;
use ipcl::synth::synthesize_broken_interlock;
use ipcl::trace::report;
use ipcl_bmc::{BmcOptions, PropertyKind, SequentialProperty};

/// One traced deep-chain-16 portfolio run, shared by the assertions below.
fn traced_deep_chain_snapshot() -> ipcl::trace::TraceSnapshot {
    let (spec, netlist) = deep_pipeline(16);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let tracer = Tracer::new(TraceConfig::enabled());
    let result = check_property_portfolio_traced(
        &spec,
        &netlist,
        &property,
        &BmcOptions::with_depth(13),
        &PdrOptions::default(),
        &tracer,
    )
    .expect("netlist elaborates");
    assert_eq!(
        result.winner,
        Some(PortfolioWinner::Pdr),
        "only PDR can prove deep-chain-16"
    );
    tracer.snapshot().expect("enabled tracer yields a snapshot")
}

#[test]
fn traced_portfolio_covers_wall_time_and_round_trips() {
    let snapshot = traced_deep_chain_snapshot();

    // ---- Span coverage: the portfolio.race span on the caller thread must
    // account for >= 95% of everything the tracer saw.
    let race_us = snapshot
        .spans
        .iter()
        .find(|s| s.path == ["portfolio.race"])
        .map(|s| s.total_us)
        .expect("the race span is profiled");
    let coverage = race_us as f64 / snapshot.wall_us.max(1) as f64;
    assert!(
        coverage >= 0.95,
        "span tree covers {:.1}% of wall time",
        coverage * 100.0
    );

    // Both engines' spans are present, nested under their own threads.
    for path in [
        vec!["bmc.check"],
        vec!["bmc.check", "bmc.encode"],
        vec!["pdr.check"],
        vec!["pdr.check", "pdr.generalize"],
        vec!["pdr.check", "pdr.propagate"],
        vec!["pdr.check", "pdr.validate"],
    ] {
        assert!(
            snapshot.spans.iter().any(|s| s.path == path),
            "missing span path {path:?}"
        );
    }

    // ---- Round-trip: events → JSONL → parse → identical events.
    let jsonl = report::events_jsonl(&snapshot);
    let parsed = report::parse_jsonl(&jsonl).expect("trace.jsonl parses");
    assert_eq!(parsed, snapshot.events);

    // The profile JSON renders and mentions the race span.
    let profile = report::profile_json(&snapshot);
    assert!(profile.contains("portfolio.race"));
    assert!(report::render_profile(&snapshot).contains("pdr.generalize"));
}

#[test]
fn traced_portfolio_spans_nest_per_thread_and_seqs_are_monotone() {
    let snapshot = traced_deep_chain_snapshot();

    // ---- Well-nested span reconstruction from the JSONL alone, with two
    // engine threads racing: enter/exit pairs must balance per thread.
    let jsonl = report::events_jsonl(&snapshot);
    let parsed = report::parse_jsonl(&jsonl).expect("trace.jsonl parses");
    let reconstructed =
        report::reconstruct_spans(&parsed).expect("span events are well-nested per thread");
    assert!(
        reconstructed.iter().any(|s| s.path == ["portfolio.race"]),
        "caller thread's race span reconstructs"
    );
    assert!(
        reconstructed
            .iter()
            .any(|s| s.path == ["pdr.check", "pdr.propagate"]),
        "PDR racer's nested spans reconstruct"
    );
    assert!(
        reconstructed.iter().any(|s| s.path == ["bmc.check"]),
        "BMC racer's span reconstructs"
    );
    // The two racers ran on distinct threads.
    let threads: std::collections::BTreeSet<u64> = reconstructed.iter().map(|s| s.thread).collect();
    assert!(
        threads.len() >= 3,
        "caller + two racers, got threads {threads:?}"
    );

    // ---- Sequence numbers: strictly monotone per thread (and globally
    // unique, since they are drawn from one atomic counter).
    let mut last_by_thread = std::collections::BTreeMap::new();
    let mut all_seqs = std::collections::BTreeSet::new();
    for event in &snapshot.events {
        if let Some(prev) = last_by_thread.insert(event.thread, event.seq) {
            assert!(
                event.seq > prev,
                "thread {} seq went {} -> {}",
                event.thread,
                prev,
                event.seq
            );
        }
        assert!(all_seqs.insert(event.seq), "duplicate seq {}", event.seq);
    }

    // ---- The event log carries the portfolio handshake and the per-frame
    // obligation traffic.
    let kinds: std::collections::BTreeSet<&str> =
        snapshot.events.iter().map(|e| e.kind.as_ref()).collect();
    for kind in [
        "portfolio_cancel",
        "portfolio_verdict",
        "pdr_obligation",
        "bmc_depth",
    ] {
        assert!(kinds.contains(kind), "missing event kind {kind}: {kinds:?}");
    }

    // ---- Unified metrics: all three stat families report through the one
    // sink, including the satellite queue statistics.
    for counter in ["sat.conflicts", "pdr.obligations", "unroll.pdr.gates"] {
        assert!(
            snapshot.counters.contains_key(counter),
            "missing counter {counter}"
        );
    }
    assert!(
        snapshot
            .gauges
            .get("pdr.max_queue_depth")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "the PDR obligation queue must have been non-trivial"
    );
}

#[test]
fn sequential_checker_trace_config_produces_snapshot_with_replays() {
    // The checker-level plumbing: a falsified design traced end-to-end
    // through `SequentialOptions::trace` yields replay_verdict events and a
    // checker-rooted span tree; with the default (disabled) config the
    // report carries no snapshot.
    let spec = ExampleArch::new().functional_spec();
    let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);

    let options = SequentialOptions {
        trace: TraceConfig::enabled(),
        ..SequentialOptions::from(Engine::Portfolio)
    };
    let report = check_netlist_sequential_with(&spec, broken.netlist(), &options).unwrap();
    assert!(report.falsified());
    let snapshot = report.trace.as_ref().expect("tracing was enabled");
    assert!(
        snapshot
            .spans
            .iter()
            .any(|s| s.path == ["checker.sequential"]),
        "the checker's root span is profiled"
    );
    let replays: Vec<_> = snapshot
        .events
        .iter()
        .filter(|e| e.kind == "replay_verdict")
        .collect();
    assert!(!replays.is_empty(), "falsifications emit replay verdicts");
    for event in replays {
        assert_eq!(
            event.field("reproduced"),
            Some(&ipcl::trace::Value::Bool(true))
        );
    }

    let untraced =
        check_netlist_sequential_with(&spec, broken.netlist(), &SequentialOptions::default())
            .unwrap();
    assert!(untraced.trace.is_none(), "tracing defaults to off");
}
