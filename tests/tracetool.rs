//! Integration tests of the trace-analytics layer (ISSUE 7): export,
//! diff, and live-progress heartbeats, driven by real engine runs.
//!
//! The acceptance criteria exercised here:
//!
//! * the Chrome Trace Event export of a real traced portfolio run is
//!   valid JSON in which every `B` has a matching `E` on the same thread
//!   (well-nested, verified with an independent stack machine);
//! * the folded-stack export's totals equal the span profile's totals;
//! * `ProfileDiff` on two real deep-chain-16 PDR profiles attributes
//!   ≥ 95% of the wall-clock delta to span paths and ranks the grown
//!   path first;
//! * the engines emit rate-limited `heartbeat` events when event
//!   recording is on — and **zero** when it is off.

use std::collections::BTreeMap;

use ipcl::pdr::deep::deep_pipeline;
use ipcl::pdr::{
    check_property_pdr_traced, check_property_portfolio_traced, PdrOptions, PortfolioWinner,
};
use ipcl::trace::{report, TraceConfig, TraceSnapshot, Tracer, Value};
use ipcl::tracetool::json::Json;
use ipcl::tracetool::{chrome_trace, folded_stacks, ProfileDiff, ProfileDoc};
use ipcl_bmc::{BmcOptions, Latency, PropertyKind, SequentialProperty};

/// One traced deep-chain-16 portfolio run.
fn traced_portfolio_snapshot() -> TraceSnapshot {
    let (spec, netlist) = deep_pipeline(16);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let tracer = Tracer::new(TraceConfig::enabled());
    let result = check_property_portfolio_traced(
        &spec,
        &netlist,
        &property,
        &BmcOptions::with_depth(13),
        &PdrOptions::default(),
        &tracer,
    )
    .expect("netlist elaborates");
    assert_eq!(result.winner, Some(PortfolioWinner::Pdr));
    tracer.snapshot().expect("enabled tracer yields a snapshot")
}

/// One PDR deep-chain-16 profile; `runs` checks recorded under one tracer
/// (so a doubled workload is a *real* — not fabricated — regression).
fn pdr_profile(runs: usize) -> ProfileDoc {
    let (spec, netlist) = deep_pipeline(16);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let tracer = Tracer::new(TraceConfig::enabled());
    for _ in 0..runs {
        let result = check_property_pdr_traced(
            &spec,
            &netlist,
            &property,
            &PdrOptions::default(),
            None,
            &tracer,
        )
        .expect("netlist elaborates");
        assert!(result.outcome.is_proved());
    }
    let snapshot = tracer.snapshot().expect("snapshot");
    // Exercise the same path the CLI takes: snapshot → profile.json text
    // → parsed document.
    ProfileDoc::parse(&report::profile_json(&snapshot)).expect("profile.json parses")
}

#[test]
fn chrome_export_of_a_real_portfolio_run_is_well_paired() {
    let snapshot = traced_portfolio_snapshot();
    let text = chrome_trace(&snapshot.events).expect("the event stream is balanced");
    let doc = Json::parse(&text).expect("the export is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("a traceEvents array");
    assert!(!events.is_empty());

    // Independent check of the exporter's guarantee: replay every B/E in
    // file order per tid and demand LIFO pairing by name.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut durations = 0usize;
    for event in events {
        let tid = event.get("tid").and_then(Json::as_u64).expect("tid");
        let name = event.get("name").and_then(Json::as_str).expect("name");
        let ts = event.get("ts").and_then(Json::as_u64);
        assert!(ts.is_some(), "every event carries a µs timestamp");
        match event.get("ph").and_then(Json::as_str).expect("ph") {
            "B" => {
                stacks.entry(tid).or_default().push(name.to_owned());
                durations += 1;
            }
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E without an open B");
                assert_eq!(top, name, "E must close the innermost B of its thread");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(durations > 0, "the run produced span events");
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }

    // The portfolio race produces the engine spans on at least three
    // threads (caller + two racers).
    assert!(stacks.len() >= 3, "threads seen: {:?}", stacks.keys());
}

#[test]
fn folded_stack_totals_equal_the_profile_totals() {
    let snapshot = traced_portfolio_snapshot();
    let folded = folded_stacks(&snapshot);
    let parse_line = |line: &str| -> (String, u64) {
        let (path, us) = line.rsplit_once(' ').expect("`path us` lines");
        (path.to_owned(), us.parse().expect("integer self time"))
    };

    // Per-line: each folded entry is exactly the profile's self time.
    for line in folded.lines() {
        let (path_text, self_us) = parse_line(line);
        let path: Vec<String> = path_text.split(';').map(str::to_owned).collect();
        assert_eq!(self_us, snapshot.self_us(&path), "at {path_text}");
        assert!(self_us > 0, "zero-self paths are skipped");
    }

    // Re-accumulated: the lines under each root sum to that root span's
    // total, and the grand total is the root-span total.
    for root in snapshot.spans.iter().filter(|s| s.path.len() == 1) {
        let accumulated: u64 = folded
            .lines()
            .map(parse_line)
            .filter(|(path, _)| {
                path == &root.path[0] || path.starts_with(&format!("{};", root.path[0]))
            })
            .map(|(_, us)| us)
            .sum();
        assert_eq!(accumulated, root.total_us, "under root {:?}", root.path);
    }
    let grand_total: u64 = folded.lines().map(|l| parse_line(l).1).sum();
    assert_eq!(grand_total, snapshot.root_span_us());
}

#[test]
fn diff_of_two_real_pdr_profiles_attributes_the_wall_delta() {
    let before = pdr_profile(1);
    let after = pdr_profile(2);
    let diff = ProfileDiff::compute(&before, &after);

    assert!(
        diff.wall_delta_us > 0,
        "doubling the workload must cost wall-clock"
    );
    // Acceptance: ≥ 95% of the wall-clock delta lands on span paths. (The
    // ratio can exceed 1 slightly when the before run had more
    // out-of-span time than the after run.)
    assert!(
        diff.attributed >= 0.95 && diff.attributed <= 1.10,
        "attributed {:.3} of the wall delta",
        diff.attributed
    );
    // The regressed path is ranked first and is the PDR engine.
    assert_eq!(diff.spans[0].path[0], "pdr.check", "ranked: {:?}", {
        diff.spans
            .iter()
            .map(|s| s.path.join("/"))
            .take(3)
            .collect::<Vec<_>>()
    });
    let root = diff
        .spans
        .iter()
        .find(|s| s.path == ["pdr.check"])
        .expect("the engine root aligns");
    assert_eq!(root.count_before, 1);
    assert_eq!(root.count_after, 2);
    // A 50%-growth gate with a 1 ms floor catches it.
    let regressions = diff.regressions(0.5, 1_000);
    assert!(
        regressions.iter().any(|s| s.path[0] == "pdr.check"),
        "regression gate must flag the doubled engine"
    );
    // The unified metrics double along with the work.
    let obligations = diff
        .counters
        .iter()
        .find(|m| m.name == "pdr.obligations")
        .expect("counter aligned");
    assert!(obligations.after > obligations.before);
}

#[test]
fn heartbeats_flow_when_events_are_on_and_never_otherwise() {
    let (spec, netlist) = deep_pipeline(16);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);

    // Events on: the PDR and SAT engines beat at least once (the first
    // heartbeat of a run is always due), carrying their progress fields.
    let tracer = Tracer::new(TraceConfig::enabled());
    let result = check_property_pdr_traced(
        &spec,
        &netlist,
        &property,
        &PdrOptions::default(),
        None,
        &tracer,
    )
    .expect("netlist elaborates");
    assert!(result.outcome.is_proved());
    let snapshot = tracer.snapshot().expect("snapshot");
    let engines: std::collections::BTreeSet<&str> = snapshot
        .events
        .iter()
        .filter(|e| e.kind == "heartbeat")
        .filter_map(|e| match e.field("engine") {
            Some(Value::Str(s)) => Some(s.as_ref()),
            _ => None,
        })
        .collect();
    assert!(
        engines.contains("pdr") && engines.contains("sat"),
        "heartbeating engines: {engines:?}"
    );
    let beat = snapshot
        .events
        .iter()
        .find(|e| e.kind == "heartbeat" && e.field("engine") == Some(&Value::from("pdr")))
        .expect("a PDR heartbeat");
    assert!(beat.field("frame").is_some() && beat.field("queue").is_some());
    // And the watch renderer turns them into a progress line.
    let line = ipcl::tracetool::progress_line(&snapshot.events).expect("heartbeats render");
    assert!(line.contains("pdr"), "{line}");

    // Events off (profile-only tracing): zero heartbeat events, same run.
    let quiet = Tracer::new(TraceConfig {
        events: false,
        ..TraceConfig::enabled()
    });
    let result = check_property_pdr_traced(
        &spec,
        &netlist,
        &property,
        &PdrOptions::default(),
        None,
        &quiet,
    )
    .expect("netlist elaborates");
    assert!(result.outcome.is_proved());
    let snapshot = quiet.snapshot().expect("snapshot");
    assert_eq!(
        snapshot.events.len(),
        0,
        "no events may be recorded with events off"
    );
    assert_eq!(ipcl::tracetool::progress_line(&snapshot.events), None);
}
