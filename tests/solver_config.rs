//! Property-based tests of the solver heuristics and the encodings
//! (ISSUE 3): every [`SolverConfig`] feature combination must agree with
//! brute force on random CNFs (monolithic *and* incremental streams), and
//! the Plaisted–Greenbaum encoding must be equisatisfiable with the full
//! Tseitin encoding — on random formulas and on the paper-example netlist
//! properties the engines actually solve.

use proptest::prelude::*;

use ipcl::bmc::{Latency, PropertyKind, SequentialProperty};
use ipcl::core::example::ExampleArch;
use ipcl::expr::{Cnf, Expr, Lit, TseitinEncoder};
use ipcl::sat::{RestartStrategy, SatResult, Solver, SolverConfig};

/// The named configuration points of the matrix: each new heuristic
/// individually off against the optimized default, restart-schedule
/// variants, and the full pre-optimization baseline.
fn config_matrix() -> Vec<(&'static str, SolverConfig)> {
    let default = SolverConfig::default();
    vec![
        ("default", default),
        (
            "no-heap",
            SolverConfig {
                heap_decisions: false,
                ..default
            },
        ),
        (
            "no-minimize",
            SolverConfig {
                minimize: false,
                ..default
            },
        ),
        (
            "no-reduce",
            SolverConfig {
                reduce_db: false,
                ..default
            },
        ),
        (
            "reduce-aggressively",
            SolverConfig {
                reduce_base: 1,
                restart: RestartStrategy::Luby { unit: 1 },
                ..default
            },
        ),
        (
            "geometric-restarts",
            SolverConfig {
                restart: RestartStrategy::Geometric {
                    first: 2,
                    factor_percent: 150,
                },
                ..default
            },
        ),
        ("baseline", SolverConfig::baseline()),
    ]
}

/// A random clause set over up to 8 variables (small enough for brute
/// force, wide enough to hit units, binaries and ternaries).
fn arbitrary_clauses() -> impl Strategy<Value = (u32, Vec<Vec<(u32, bool)>>)> {
    let clause = proptest::collection::vec((0u32..8, any::<bool>()), 1..=3);
    (2u32..=8, proptest::collection::vec(clause, 1..=24)).prop_map(|(num_vars, clauses)| {
        // Fold the 0..8 literal universe onto the drawn variable count.
        let clauses = clauses
            .into_iter()
            .map(|clause| clause.into_iter().map(|(v, s)| (v % num_vars, s)).collect())
            .collect();
        (num_vars, clauses)
    })
}

fn build_cnf(num_vars: u32, clauses: &[Vec<(u32, bool)>]) -> Cnf {
    let mut cnf = Cnf::new(num_vars);
    for clause in clauses {
        cnf.add_clause(clause.iter().map(|&(v, s)| Lit::new(v, s)));
    }
    cnf
}

fn brute_force_sat(cnf: &Cnf) -> bool {
    (0u64..(1 << cnf.num_vars)).any(|mask| cnf.eval(|v| mask & (1 << v) != 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever heuristics are on — heap decisions, minimization, database
    /// reduction (even firing constantly), Luby or geometric restarts, or
    /// the full pre-optimization baseline — the verdict matches brute
    /// force and every model satisfies the formula.
    #[test]
    fn every_config_agrees_with_brute_force(input in arbitrary_clauses()) {
        let (num_vars, clauses) = input;
        let cnf = build_cnf(num_vars, &clauses);
        let expected = brute_force_sat(&cnf);
        for (name, config) in config_matrix() {
            let mut solver = Solver::from_cnf_with_config(&cnf, config);
            let result = solver.solve();
            prop_assert!(
                result.is_sat() == expected,
                "config {} disagrees with brute force on {}",
                name,
                cnf.to_dimacs()
            );
            if let SatResult::Sat(model) = result {
                prop_assert!(cnf.eval(|v| model[v as usize]), "config {} returned a bad model", name);
            }
        }
    }

    /// The incremental contract under every configuration: interleaved
    /// clause addition, assumption queries and re-solves give the same
    /// verdict stream as brute force over the clauses added so far.
    #[test]
    fn incremental_streams_match_brute_force(input in arbitrary_clauses(),
                                             assume_var in 0u32..8, assume_sign in any::<bool>()) {
        let (num_vars, clauses) = input;
        let assumption = Lit::new(assume_var % num_vars, assume_sign);
        for (name, config) in config_matrix() {
            let mut solver = Solver::with_config(num_vars as usize, config);
            let mut so_far = Cnf::new(num_vars);
            for clause in &clauses {
                let lits: Vec<Lit> = clause.iter().map(|&(v, s)| Lit::new(v, s)).collect();
                so_far.add_clause(lits.clone());
                solver.add_clause(lits);

                let expected_plain = brute_force_sat(&so_far);
                prop_assert!(
                    solver.solve().is_sat() == expected_plain,
                    "config {}: plain re-solve diverged on {}",
                    name,
                    so_far.to_dimacs()
                );

                let mut assumed = so_far.clone();
                assumed.add_clause([assumption]);
                prop_assert!(
                    solver.solve_under_assumptions(&[assumption]).is_sat()
                        == brute_force_sat(&assumed),
                    "config {}: assumption query diverged on {}",
                    name,
                    so_far.to_dimacs()
                );
            }
        }
    }

    /// PG vs. full Tseitin on random expression shapes, decided by the
    /// CDCL solver itself (complementing the brute-force check inside
    /// `ipcl-expr`): both encodings of the same expression must agree.
    #[test]
    fn plaisted_greenbaum_agrees_with_full_tseitin(input in arbitrary_clauses()) {
        let (num_vars, clauses) = input;
        // Reinterpret the clause soup as a nested and/or/not expression.
        let mut pool = ipcl::expr::VarPool::new();
        let vars: Vec<_> = (0..num_vars).map(|i| pool.var(&format!("v{i}"))).collect();
        let expr = Expr::and(clauses.iter().map(|clause| {
            Expr::or(clause.iter().map(|&(v, s)| {
                let var = Expr::var(vars[v as usize]);
                if s { var } else { Expr::not(var) }
            }))
        }));

        let mut full = TseitinEncoder::new();
        let root = full.encode(&expr);
        full.assert_literal(root);
        let mut full_solver = Solver::from_cnf(full.cnf());

        let mut pg = TseitinEncoder::new();
        pg.assert_expr(&expr);
        prop_assert!(pg.cnf().len() <= full.cnf().len());
        let mut pg_solver = Solver::from_cnf(pg.cnf());

        prop_assert_eq!(full_solver.solve().is_sat(), pg_solver.solve().is_sat());
    }
}

/// PG vs. full Tseitin on the expressions the sequential engines actually
/// encode: every property direction of the paper example, at both latency
/// classes, and its negation-for-refutation form.
#[test]
fn plaisted_greenbaum_matches_tseitin_on_paper_example_properties() {
    let spec = ExampleArch::new().functional_spec();
    for latency in [Latency::Combinational, Latency::Registered] {
        for stage in 0..spec.stages().len() {
            for kind in PropertyKind::ALL {
                let property = SequentialProperty::for_stage(&spec, stage, kind, latency);
                for expr in [property.ok.clone(), Expr::not(property.ok.clone())] {
                    let mut full = TseitinEncoder::new();
                    let root = full.encode(&expr);
                    full.assert_literal(root);
                    let mut full_solver = Solver::from_cnf(full.cnf());

                    let mut pg = TseitinEncoder::new();
                    pg.assert_expr(&expr);
                    let mut pg_solver = Solver::from_cnf(pg.cnf());

                    assert!(
                        pg.cnf().len() <= full.cnf().len(),
                        "{}: PG may not emit more clauses",
                        property.name
                    );
                    assert_eq!(
                        full_solver.solve().is_sat(),
                        pg_solver.solve().is_sat(),
                        "{}: encodings disagree",
                        property.name
                    );
                }
            }
        }
    }
}
