//! Integration tests of the sequential verification flow (ISSUE 1):
//! `pipesim::BrokenVariant` bug classes synthesized to netlists, falsified
//! by BMC with minimal-length simulator-replayable counterexamples; correct
//! implementations proved by k-induction — on the paper's example
//! architecture and on the FirePath-like configuration.

use ipcl::checker::{
    check_netlist_sequential, check_netlist_sequential_with, BmcOutcome, Engine, Latency,
    PropertyKind, SequentialOptions,
};
use ipcl::core::example::ExampleArch;
use ipcl::core::{ArchSpec, FunctionalSpec};
use ipcl::pipesim::BrokenVariant;
use ipcl::rtl::Netlist;
use ipcl::synth::{
    synthesize_broken_interlock, synthesize_interlock, synthesize_interlock_with, SynthesisOptions,
};

fn example_spec() -> FunctionalSpec {
    ExampleArch::new().functional_spec()
}

/// Asserts that every counterexample in the report replays through the
/// simulator (the checker asserts this internally; re-doing it here makes
/// the integration contract explicit) and returns the minimal trace length.
fn assert_replayable_and_minimal_length(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    report: &ipcl::checker::SequentialReport,
) -> usize {
    let counterexamples = report.counterexamples();
    assert!(!counterexamples.is_empty(), "expected a falsification");
    let mut min_length = usize::MAX;
    for result in counterexamples {
        let cex = result.outcome.counterexample().unwrap();
        let replay = cex.replay(spec, netlist, &result.property).unwrap();
        assert!(
            replay.violation_reproduced,
            "{} did not replay:\n{}",
            result.property.name,
            cex.render()
        );
        min_length = min_length.min(cex.length());
    }
    min_length
}

/// The wrong-reset bug (registered outputs resetting to "stalled"): BMC
/// falsifies it with the minimal one-cycle trace, and the injected
/// `BadResetValues` policy netlist (flags forced high out of reset) is
/// falsified with the minimal two-cycle trace (quiet reset frame, then the
/// hazard the forced flags ignore).
#[test]
fn bmc_finds_wrong_reset_with_minimal_counterexample() {
    let spec = example_spec();

    // Performance-direction reset bug: stalled out of reset.
    let wrong_reset = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: false,
            ..Default::default()
        },
    );
    let options = SequentialOptions {
        latency: Some(Latency::Combinational),
        ..SequentialOptions::from(Engine::Bmc { k: 4 })
    };
    let report = check_netlist_sequential_with(&spec, wrong_reset.netlist(), &options).unwrap();
    assert!(report.falsified());
    assert!(!report.reset.ok(), "the static reset check agrees");
    let min_length = assert_replayable_and_minimal_length(&spec, wrong_reset.netlist(), &report);
    assert_eq!(min_length, 1, "reset bug is visible in the reset frame");

    // Functional-direction reset bug: moe flags forced high after reset
    // (pipesim's BadResetValues), invisible at cycle 0 (quiet) but caught at
    // cycle 1.
    let forced = synthesize_broken_interlock(&spec, BrokenVariant::BadResetValues { cycles: 2 });
    let report = check_netlist_sequential(&spec, forced.netlist(), Engine::Bmc { k: 6 }).unwrap();
    assert!(report.falsified());
    let functional_falsified: Vec<_> = report
        .counterexamples()
        .into_iter()
        .filter(|r| matches!(r.property.kind, PropertyKind::Functional))
        .collect();
    assert!(
        !functional_falsified.is_empty(),
        "forcing flags high misses required stalls"
    );
    let min_length = assert_replayable_and_minimal_length(&spec, forced.netlist(), &report);
    assert_eq!(min_length, 2, "quiet reset frame, hazard at cycle 1");
}

/// The late-stall bug (registered outputs lag the hazard by one cycle):
/// falsified against the combinational-latency functional property with a
/// minimal two-cycle trace.
#[test]
fn bmc_finds_late_stall_with_minimal_counterexample() {
    let spec = example_spec();
    let late = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let options = SequentialOptions {
        latency: Some(Latency::Combinational),
        ..SequentialOptions::from(Engine::Bmc { k: 4 })
    };
    let report = check_netlist_sequential_with(&spec, late.netlist(), &options).unwrap();
    assert!(report.falsified());
    let min_length = assert_replayable_and_minimal_length(&spec, late.netlist(), &report);
    assert_eq!(
        min_length, 2,
        "the stall cannot arrive before cycle 1: hazard at 1, flags still answering for quiet 0"
    );
}

/// Every `BrokenVariant` synthesized to a netlist is falsified by BMC with a
/// replayable counterexample (the ISSUE acceptance criterion).
#[test]
fn bmc_falsifies_every_broken_variant_with_replayable_traces() {
    let spec = example_spec();
    for variant in [
        BrokenVariant::IgnoreScoreboard,
        BrokenVariant::IgnoreCompletionGrant,
        BrokenVariant::BadResetValues { cycles: 2 },
    ] {
        let broken = synthesize_broken_interlock(&spec, variant);
        let report =
            check_netlist_sequential(&spec, broken.netlist(), Engine::Bmc { k: 6 }).unwrap();
        assert!(report.falsified(), "{variant:?} must be falsified");
        let min_length = assert_replayable_and_minimal_length(&spec, broken.netlist(), &report);
        // All three bugs need one event frame after the quiet reset frame.
        assert_eq!(min_length, 2, "{variant:?}");
        // The dropped-stall variants miss stalls (functional violations).
        if !matches!(variant, BrokenVariant::BadResetValues { .. }) {
            assert!(
                report
                    .counterexamples()
                    .iter()
                    .any(|r| matches!(r.property.kind, PropertyKind::Functional)),
                "{variant:?} must miss a required stall"
            );
        }
    }
}

/// k-induction proves the synthesized paper-example interlock correct — the
/// combinational form at combinational latency, the registered form at
/// registered latency — including deadlock freedom and reset correctness.
#[test]
fn k_induction_proves_example_interlocks() {
    let spec = example_spec();

    let combinational = synthesize_interlock(&spec);
    let report =
        check_netlist_sequential(&spec, combinational.netlist(), Engine::Bmc { k: 8 }).unwrap();
    assert_eq!(report.latency, Latency::Combinational);
    assert!(report.proved(), "combinational: {:?}", summaries(&report));
    assert!(report.stall_escape.iter().all(|s| s.escapable));

    let registered = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let report =
        check_netlist_sequential(&spec, registered.netlist(), Engine::Bmc { k: 8 }).unwrap();
    assert_eq!(report.latency, Latency::Registered);
    assert!(report.proved(), "registered: {:?}", summaries(&report));
    assert!(report.reset.ok());
}

/// The FirePath-like architecture (24 stages, bit-level scoreboard) is also
/// proved by k-induction, demonstrating the engine scales past the paper
/// example.
#[test]
fn k_induction_proves_firepath_like_interlock() {
    let spec = ArchSpec::firepath_like().functional_spec().unwrap();
    let synthesized = synthesize_interlock(&spec);
    let options = SequentialOptions {
        // 24 stages × 2 directions: keep the run lean — no deadlock pass
        // here (covered by the example-arch test) and a small depth bound;
        // induction closes at depth 0 for a correct combinational netlist.
        deadlock: false,
        prepass_cycles: 50,
        ..SequentialOptions::from(Engine::Bmc { k: 3 })
    };
    let report = check_netlist_sequential_with(&spec, synthesized.netlist(), &options).unwrap();
    assert_eq!(report.results.len(), 48);
    assert!(
        report.results.iter().all(|r| r.outcome.is_proved()),
        "{:?}",
        summaries(&report)
    );
}

/// The incremental solver makes deep falsification-free runs cheaper than
/// re-encoding from scratch (the bench quantifies this; here we only assert
/// both modes agree on verdict and trace length).
#[test]
fn incremental_and_scratch_modes_agree() {
    let spec = example_spec();
    let late = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let base = SequentialOptions {
        latency: Some(Latency::Combinational),
        deadlock: false,
        prepass_cycles: 0,
        ..SequentialOptions::from(Engine::Bmc { k: 4 })
    };
    let incremental = check_netlist_sequential_with(&spec, late.netlist(), &base).unwrap();
    let mut scratch_options = base;
    scratch_options.bmc.incremental = false;
    let scratch = check_netlist_sequential_with(&spec, late.netlist(), &scratch_options).unwrap();
    let lengths = |report: &ipcl::checker::SequentialReport| -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = report
            .counterexamples()
            .iter()
            .map(|r| {
                (
                    r.property.name.clone(),
                    r.outcome.counterexample().unwrap().length(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(lengths(&incremental), lengths(&scratch));
}

fn summaries(report: &ipcl::checker::SequentialReport) -> Vec<(String, String)> {
    report
        .results
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                BmcOutcome::Falsified(cex) => format!("falsified@{}", cex.length()),
                BmcOutcome::Proved { induction_depth } => format!("proved@k={induction_depth}"),
                BmcOutcome::Unknown { depth_checked } => format!("unknown@{depth_checked}"),
            };
            (r.property.name.clone(), outcome)
        })
        .collect()
}
