//! Integration tests of the parallel PDR engine (ISSUE 8).
//!
//! The headline guarantee under test: the work-stealing round scheduler is
//! **deterministic by construction** — verdicts, counterexample traces and
//! inductive-invariant certificates are bit-identical for every worker
//! count and across repeated runs, because workers only answer semantic
//! SAT/UNSAT bits while every model comes from the master's canonical
//! solver in canonical order. The suite runs the worker matrix
//! `{1, 2, 4, 8}` (with repeats) over proofs and over the broken-variant
//! falsification matrix, checks agreement with the sequential engine's
//! verdicts, and re-validates the certificate of every parallel proof.

use ipcl::core::example::ExampleArch;
use ipcl::core::FunctionalSpec;
use ipcl::pdr::deep::deep_pipeline;
use ipcl::pdr::{
    check_property_pdr, check_property_pdr_parallel, ParallelPdrOptions, PdrOptions, PdrOutcome,
};
use ipcl::pipesim::BrokenVariant;
use ipcl::synth::{synthesize_broken_interlock, synthesize_interlock};
use ipcl_bmc::{Latency, PropertyKind, SequentialProperty};

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn example_spec() -> FunctionalSpec {
    ExampleArch::new().functional_spec()
}

fn options(threads: usize) -> ParallelPdrOptions {
    ParallelPdrOptions {
        threads,
        ..Default::default()
    }
}

/// Proof determinism: the deep-chain certificate renders bit-identically
/// at 1, 2, 4 and 8 workers and across repeated runs, and every proof's
/// certificate re-validates with independent SAT queries.
#[test]
fn certificates_are_bit_identical_across_worker_counts_and_runs() {
    let (spec, netlist) = deep_pipeline(9);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let mut renders: Vec<String> = Vec::new();
    for threads in WORKER_MATRIX {
        for run in 0..2 {
            let result =
                check_property_pdr_parallel(&spec, &netlist, &property, &options(threads)).unwrap();
            let PdrOutcome::Proved { certificate, .. } = &result.outcome else {
                panic!(
                    "deep chain must prove at {threads} workers (run {run}), got {:?}",
                    result.outcome
                );
            };
            assert!(!certificate.is_trivial(), "the proof needs real lemmas");
            assert!(
                result.validation.expect("validation on by default").ok(),
                "certificate re-validation failed at {threads} workers"
            );
            renders.push(certificate.render());
        }
    }
    let reference = &renders[0];
    for (i, render) in renders.iter().enumerate() {
        assert_eq!(
            render, reference,
            "certificate diverged at matrix entry {i} (workers × repeats)"
        );
    }
}

/// Falsification determinism and sequential agreement: on every broken
/// variant × property direction, the parallel engine returns the same
/// verdict as the sequential engine at every worker count, and its
/// counterexample trace renders bit-identically across the matrix (and
/// replays on the simulator).
#[test]
fn broken_variant_traces_are_bit_identical_and_agree_with_sequential() {
    let spec = example_spec();
    for variant in [
        BrokenVariant::IgnoreScoreboard,
        BrokenVariant::IgnoreCompletionGrant,
        BrokenVariant::BadResetValues { cycles: 2 },
    ] {
        let broken = synthesize_broken_interlock(&spec, variant);
        for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
            let sequential =
                check_property_pdr(&spec, broken.netlist(), &property, &PdrOptions::default())
                    .unwrap();
            let mut renders: Vec<Option<String>> = Vec::new();
            for threads in WORKER_MATRIX {
                let parallel = check_property_pdr_parallel(
                    &spec,
                    broken.netlist(),
                    &property,
                    &options(threads),
                )
                .unwrap();
                assert_eq!(
                    parallel.outcome.is_proved(),
                    sequential.outcome.is_proved(),
                    "{variant:?}/{}: parallel({threads}) disagrees with sequential",
                    property.name
                );
                if let Some(cex) = parallel.outcome.counterexample() {
                    let replay = cex.replay(&spec, broken.netlist(), &property).unwrap();
                    assert!(
                        replay.violation_reproduced,
                        "{variant:?}/{}: {}",
                        property.name,
                        cex.render()
                    );
                    renders.push(Some(cex.render()));
                } else {
                    renders.push(None);
                }
            }
            let reference = &renders[0];
            for (i, render) in renders.iter().enumerate() {
                assert_eq!(
                    render, reference,
                    "{variant:?}/{}: trace diverged at worker count {}",
                    property.name, WORKER_MATRIX[i]
                );
            }
        }
    }
}

/// The stateless special case (combinational interlock, no registers)
/// short-circuits without scheduling rounds — but still at every worker
/// count, with the trivial certificate.
#[test]
fn stateless_netlists_prove_trivially_at_every_worker_count() {
    let spec = example_spec();
    let synthesized = synthesize_interlock(&spec);
    for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
        for threads in [1, 4] {
            let result = check_property_pdr_parallel(
                &spec,
                synthesized.netlist(),
                &property,
                &options(threads),
            )
            .unwrap();
            let PdrOutcome::Proved { certificate, .. } = &result.outcome else {
                panic!("{}: stateless proof failed", property.name);
            };
            assert!(certificate.is_trivial());
            assert!(result.validation.unwrap().ok());
        }
    }
}

/// Cube-and-conquer coverage: with the bad-query split enabled (it
/// defaults to off — branch bits are pure overhead at one worker) the
/// certificate is still bit-identical across worker counts, and on a
/// falsified design the counterexample trace is too.
#[test]
fn cube_and_conquer_split_is_deterministic_across_worker_counts() {
    let split = |threads| ParallelPdrOptions {
        split_registers: 2,
        ..options(threads)
    };

    let (spec, netlist) = deep_pipeline(7);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let mut renders: Vec<String> = Vec::new();
    for threads in WORKER_MATRIX {
        let result =
            check_property_pdr_parallel(&spec, &netlist, &property, &split(threads)).unwrap();
        let PdrOutcome::Proved { certificate, .. } = &result.outcome else {
            panic!(
                "split proof failed at {threads} workers: {:?}",
                result.outcome
            );
        };
        assert!(result.validation.unwrap().ok());
        renders.push(certificate.render());
    }
    assert!(
        renders.iter().all(|render| render == &renders[0]),
        "split certificate diverged across worker counts"
    );

    let spec = example_spec();
    let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
    for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
        let mut traces: Vec<Option<String>> = Vec::new();
        for threads in [1, 4] {
            let result =
                check_property_pdr_parallel(&spec, broken.netlist(), &property, &split(threads))
                    .unwrap();
            traces.push(result.outcome.counterexample().map(|cex| cex.render()));
        }
        assert_eq!(
            traces[0], traces[1],
            "{}: split trace diverged across worker counts",
            property.name
        );
    }
}

/// Knob robustness: disabling the clause exchange and the bad-query split,
/// or widening the split, must not change any verdict or certificate —
/// only the canonical trajectory knobs (`batch`, `split_registers`) may,
/// and they are pinned per run, never derived from the worker count.
#[test]
fn sharing_knob_does_not_change_the_certificate() {
    let (spec, netlist) = deep_pipeline(7);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let reference = {
        let result = check_property_pdr_parallel(&spec, &netlist, &property, &options(4)).unwrap();
        result.outcome.certificate().expect("proved").render()
    };
    let unshared = ParallelPdrOptions {
        share_max_lbd: 0,
        ..options(4)
    };
    let result = check_property_pdr_parallel(&spec, &netlist, &property, &unshared).unwrap();
    assert_eq!(
        result.outcome.certificate().expect("proved").render(),
        reference,
        "the clause exchange must be invisible to the canonical trajectory"
    );
    assert_eq!(result.stats.imported_clauses, 0);
    assert_eq!(result.stats.exported_clauses, 0);
}
