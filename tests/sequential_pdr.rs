//! Integration tests of the PDR engine and portfolio checker (ISSUE 2).
//!
//! The exhaustive matrix: every `pipesim::BrokenVariant` synthesized to a
//! netlist is falsified by **both** the BMC and PDR strategies (and by the
//! portfolio) with simulator-replayable counterexamples; every unbroken
//! preset — the paper example, the FirePath-like configuration and a
//! synthetic scaling point — is proved by PDR with a validated
//! inductive-invariant certificate. Plus the acceptance criterion of the
//! issue: a correct property that defeats k-induction for every `k ≤ 10`
//! but that PDR proves outright.

use ipcl::checker::{
    check_netlist_sequential, check_netlist_sequential_with, Engine, Latency, ProofStrategy,
    SequentialOptions, SequentialReport,
};
use ipcl::core::example::ExampleArch;
use ipcl::core::{ArchSpec, FunctionalSpec};
use ipcl::pdr::deep::deep_pipeline;
use ipcl::pdr::{check_property_pdr, PdrOptions, PdrOutcome};
use ipcl::pipesim::BrokenVariant;
use ipcl::rtl::Netlist;
use ipcl::synth::{synthesize_broken_interlock, synthesize_interlock};
use ipcl_bmc::{check_property, BmcOptions, BmcOutcome, PropertyKind, SequentialProperty};

fn example_spec() -> FunctionalSpec {
    ExampleArch::new().functional_spec()
}

fn assert_replayable(spec: &FunctionalSpec, netlist: &Netlist, report: &SequentialReport) {
    let counterexamples = report.counterexamples();
    assert!(!counterexamples.is_empty(), "expected a falsification");
    for result in counterexamples {
        let cex = result.outcome.counterexample().unwrap();
        let replay = cex.replay(spec, netlist, &result.property).unwrap();
        assert!(
            replay.violation_reproduced,
            "{} did not replay:\n{}",
            result.property.name,
            cex.render()
        );
    }
}

/// Every broken variant × every sequential strategy: falsified with
/// replayable traces. (BMC with `Engine::Bmc` is already covered by
/// `sequential_bmc.rs`; here the same bugs must fall to PDR and to the
/// portfolio.)
#[test]
fn every_broken_variant_is_falsified_by_bmc_pdr_and_portfolio() {
    let spec = example_spec();
    for variant in [
        BrokenVariant::IgnoreScoreboard,
        BrokenVariant::IgnoreCompletionGrant,
        BrokenVariant::BadResetValues { cycles: 2 },
    ] {
        let broken = synthesize_broken_interlock(&spec, variant);
        for strategy in [
            ProofStrategy::KInduction,
            ProofStrategy::Pdr,
            ProofStrategy::Portfolio,
        ] {
            let options = SequentialOptions {
                strategy,
                bmc: BmcOptions::with_depth(6),
                deadlock: false,
                ..Default::default()
            };
            let report = check_netlist_sequential_with(&spec, broken.netlist(), &options).unwrap();
            assert!(
                report.falsified(),
                "{variant:?} must be falsified by {strategy:?}"
            );
            assert_replayable(&spec, broken.netlist(), &report);
        }
    }
}

/// Every unbroken preset is proved by PDR, and every proved property ships
/// a certificate that passed the independent initiation/consecution/safety
/// validation (the engine panics on a failing certificate, so presence in
/// the report implies validation succeeded; re-validate one explicitly to
/// keep the contract visible).
#[test]
fn every_unbroken_preset_is_proved_by_pdr_with_validated_certificates() {
    let presets: Vec<(&str, FunctionalSpec)> = vec![
        (
            "paper_example",
            ArchSpec::paper_example().functional_spec().unwrap(),
        ),
        (
            "firepath_like",
            ArchSpec::firepath_like().functional_spec().unwrap(),
        ),
        (
            "synthetic(3,4)",
            ArchSpec::synthetic(3, 4).functional_spec().unwrap(),
        ),
    ];
    for (name, spec) in presets {
        let synthesized = synthesize_interlock(&spec);
        let options = SequentialOptions {
            deadlock: false,
            prepass_cycles: 50,
            ..SequentialOptions::from(Engine::Pdr)
        };
        let report = check_netlist_sequential_with(&spec, synthesized.netlist(), &options).unwrap();
        assert!(
            report.results.iter().all(|r| r.outcome.is_proved()),
            "{name}: not all properties proved"
        );
        assert_eq!(
            report.certificates.len(),
            report.results.len(),
            "{name}: every proof carries a certificate"
        );
        // Spot re-validation, from the report's data alone.
        let (property_name, certificate) = report.certificates.iter().next().unwrap();
        let property = report
            .results
            .iter()
            .find(|r| &r.property.name == property_name)
            .map(|r| r.property.clone())
            .unwrap();
        let check = certificate
            .validate(&spec, synthesized.netlist(), &property)
            .unwrap();
        assert!(check.ok(), "{name}: {check}");
    }
}

/// The ISSUE acceptance criterion: a correct-interlock property where
/// k-induction fails for all k ≤ 10 while PDR proves it with a validated,
/// non-trivial certificate — and the portfolio returns that proof.
#[test]
fn pdr_proves_where_k_induction_fails_for_all_k_up_to_10() {
    let (spec, netlist) = deep_pipeline(13);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);

    // k-induction: stuck at every k ≤ 10.
    let bmc = check_property(&spec, &netlist, &property, &BmcOptions::with_depth(10)).unwrap();
    let BmcOutcome::Unknown { depth_checked } = bmc.outcome else {
        panic!(
            "k-induction must not decide the deep chain: {:?}",
            bmc.outcome
        );
    };
    assert_eq!(depth_checked, 10);

    // PDR: unbounded proof with a real (non-trivial) invariant.
    let pdr = check_property_pdr(&spec, &netlist, &property, &PdrOptions::default()).unwrap();
    let PdrOutcome::Proved { certificate, .. } = &pdr.outcome else {
        panic!("PDR must prove the deep chain: {:?}", pdr.outcome);
    };
    assert!(!certificate.is_trivial());
    assert!(pdr.validation.unwrap().ok());
    let check = certificate.validate(&spec, &netlist, &property).unwrap();
    assert!(check.ok(), "{check}");

    // The full sequential flow with Engine::Portfolio agrees.
    let options = SequentialOptions {
        deadlock: false,
        prepass_cycles: 0,
        bmc: BmcOptions::with_depth(6),
        ..SequentialOptions::from(Engine::Portfolio)
    };
    let report = check_netlist_sequential_with(&spec, &netlist, &options).unwrap();
    assert!(report.proved(), "{:?}", report.results);
    assert!(report.certificates.contains_key(&property.name));
}

/// Determinism across the new solver heuristics (ISSUE 3): two runs with
/// the same `SolverConfig` — including variants that stress the heap,
/// minimization, aggressive database reduction and both restart schedules
/// — produce byte-identical verdicts, counterexample traces and
/// certificates.
#[test]
fn solver_config_variants_are_deterministic() {
    use ipcl::sat::{RestartStrategy, SolverConfig};

    let spec = example_spec();
    let correct = synthesize_interlock(&spec);
    let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
    let (deep_spec, deep_netlist) = deep_pipeline(8);
    let deep_property = SequentialProperty::for_stage(
        &deep_spec,
        0,
        PropertyKind::Performance,
        Latency::Combinational,
    );

    let variants = [
        ("optimized", SolverConfig::default()),
        (
            "stress-reduction",
            SolverConfig {
                reduce_base: 1,
                restart: RestartStrategy::Luby { unit: 1 },
                ..SolverConfig::default()
            },
        ),
        ("baseline", SolverConfig::baseline()),
    ];
    for (name, solver) in variants {
        // PDR proof of the deep chain: identical certificate text.
        let pdr_options = PdrOptions {
            solver,
            ..PdrOptions::default()
        };
        let renders: Vec<String> = (0..2)
            .map(|_| {
                let result =
                    check_property_pdr(&deep_spec, &deep_netlist, &deep_property, &pdr_options)
                        .unwrap();
                let PdrOutcome::Proved { certificate, .. } = &result.outcome else {
                    panic!("{name}: deep chain must be proved");
                };
                certificate.render()
            })
            .collect();
        assert_eq!(renders[0], renders[1], "{name}: certificates diverge");

        // Full sequential runs: identical verdicts and traces.
        let options = SequentialOptions {
            bmc: BmcOptions {
                solver,
                ..BmcOptions::with_depth(6)
            },
            pdr: pdr_options,
            deadlock: false,
            strategy: ProofStrategy::KInduction,
            ..Default::default()
        };
        let reports: Vec<SequentialReport> = (0..2)
            .map(|_| check_netlist_sequential_with(&spec, broken.netlist(), &options).unwrap())
            .collect();
        assert!(reports[0].falsified(), "{name}: bug must be found");
        let traces: Vec<Vec<String>> = reports
            .iter()
            .map(|report| {
                report
                    .results
                    .iter()
                    .map(|r| match r.outcome.counterexample() {
                        Some(cex) => format!("{}: {}", r.property.name, cex.render()),
                        None => format!("{}: clean", r.property.name),
                    })
                    .collect()
            })
            .collect();
        assert_eq!(traces[0], traces[1], "{name}: traces diverge");

        let proved: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                check_netlist_sequential_with(&spec, correct.netlist(), &options)
                    .unwrap()
                    .results
                    .iter()
                    .map(|r| r.outcome.is_proved())
                    .collect()
            })
            .collect();
        assert_eq!(proved[0], proved[1], "{name}: proof verdicts diverge");
        assert!(proved[0].iter().all(|&p| p), "{name}: must prove correct");
    }
}

/// `Engine::Pdr` and `Engine::Bmc` agree on the paper example end to end
/// (proved properties, reset verdicts, stall-escape verdicts).
#[test]
fn pdr_and_k_induction_agree_on_the_paper_example() {
    let spec = example_spec();
    let synthesized = synthesize_interlock(&spec);
    let bmc = check_netlist_sequential(&spec, synthesized.netlist(), Engine::Bmc { k: 6 }).unwrap();
    let pdr = check_netlist_sequential(&spec, synthesized.netlist(), Engine::Pdr).unwrap();
    assert_eq!(bmc.proved(), pdr.proved());
    assert_eq!(bmc.results.len(), pdr.results.len());
    for (b, p) in bmc.results.iter().zip(&pdr.results) {
        assert_eq!(
            b.outcome.is_proved(),
            p.outcome.is_proved(),
            "{} vs {}",
            b.property.name,
            p.property.name
        );
    }
}
