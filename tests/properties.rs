//! Property-based tests (proptest) of the workspace-level invariants:
//! the Section 3 theory holds for *randomly generated* monotone
//! specifications, not just the hand-written architectures, and the
//! expression/BDD/SAT substrates agree with each other.

use proptest::prelude::*;

use ipcl::bdd::BddManager;
use ipcl::core::fixpoint::{derive_concrete, derive_symbolic, is_most_liberal};
use ipcl::core::model::StageRef;
use ipcl::core::properties::check_preconditions;
use ipcl::core::spec::{FunctionalSpec, FunctionalSpecBuilder};
use ipcl::expr::{Assignment, Expr, VarId};

/// Strategy: a random interlocked-pipeline functional specification with
/// 1–3 pipes of depth 1–4, random extra stall causes and random lock-step
/// coupling between the issue stages.
fn arbitrary_spec() -> impl Strategy<Value = FunctionalSpec> {
    (
        proptest::collection::vec(1u32..=4, 1..=3),
        proptest::collection::vec(0u8..=2, 0..=6),
        any::<bool>(),
    )
        .prop_map(|(depths, extra_causes, lockstep)| {
            let mut builder = FunctionalSpecBuilder::new();
            // Declare stages, completion stage first per pipe.
            for (pipe_index, &depth) in depths.iter().enumerate() {
                let pipe = format!("p{pipe_index}");
                for stage in (1..=depth).rev() {
                    builder
                        .declare_stage(StageRef::new(&pipe, stage))
                        .expect("unique stages");
                }
            }
            for (pipe_index, &depth) in depths.iter().enumerate() {
                let pipe = format!("p{pipe_index}");
                // Completion rule.
                let last = StageRef::new(&pipe, depth);
                let req = builder.env(&format!("{pipe}.req"));
                let gnt = builder.env(&format!("{pipe}.gnt"));
                builder
                    .stall_rule(&last, "completion", Expr::and([req, Expr::not(gnt)]))
                    .expect("declared");
                // Back-pressure chain.
                for stage in (1..depth).rev() {
                    let this = StageRef::new(&pipe, stage);
                    let rtm = builder.env(&this.rtm());
                    let downstream = builder.stalled(&this.next());
                    builder
                        .stall_rule(&this, "backpressure", Expr::and([rtm, downstream]))
                        .expect("declared");
                }
            }
            // Random extra causes on issue stages.
            for (i, &kind) in extra_causes.iter().enumerate() {
                let pipe = format!("p{}", i % depths.len());
                let issue = StageRef::new(&pipe, 1);
                let cause = match kind {
                    0 => builder.env("op_is_wait"),
                    1 => builder.env(&format!("{pipe}.1.operand_outstanding")),
                    _ => {
                        let a = builder.env(&format!("hazard{i}_a"));
                        let b = builder.env(&format!("hazard{i}_b"));
                        Expr::and([a, b])
                    }
                };
                builder
                    .stall_rule(&issue, "extra", cause)
                    .expect("issue stage exists");
            }
            // Optional lock-step coupling of all issue stages.
            if lockstep && depths.len() > 1 {
                for i in 0..depths.len() {
                    for j in 0..depths.len() {
                        if i == j {
                            continue;
                        }
                        let this = StageRef::new(&format!("p{i}"), 1);
                        let other = builder.stalled(&StageRef::new(&format!("p{j}"), 1));
                        builder
                            .stall_rule(&this, "lockstep", other)
                            .expect("issue stage exists");
                    }
                }
            }
            builder.build().expect("generated spec is well-formed")
        })
}

/// A random environment assignment for a specification.
fn env_for(spec: &FunctionalSpec, bits: u64) -> Assignment {
    spec.env_vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, bits & (1 << (i % 63)) != 0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated specification satisfies the Section 3.1 preconditions
    /// by construction.
    #[test]
    fn generated_specs_satisfy_preconditions(spec in arbitrary_spec()) {
        let report = check_preconditions(&spec);
        prop_assert!(report.monotone);
        prop_assert!(report.p1_all_stalled_satisfies);
        prop_assert!(report.p2_disjunction_closed);
    }

    /// The concrete fixed point is the unique most liberal satisfying
    /// assignment (Section 3.2 maximality), for random environments.
    #[test]
    fn derived_assignment_is_most_liberal(spec in arbitrary_spec(), bits in any::<u64>()) {
        prop_assume!(spec.moe_vars().len() <= 12);
        let env = env_for(&spec, bits);
        let moe = derive_concrete(&spec, &env);
        prop_assert!(is_most_liberal(&spec, &env, &moe));
    }

    /// The symbolic closed forms agree with the concrete iteration.
    #[test]
    fn symbolic_and_concrete_derivations_agree(spec in arbitrary_spec(), bits in any::<u64>()) {
        let derivation = derive_symbolic(&spec);
        let env = env_for(&spec, bits);
        prop_assert_eq!(derive_concrete(&spec, &env), derivation.evaluate(&env));
    }

    /// The derived assignment satisfies the combined specification: checked
    /// via the BDD engine by substituting the closed forms and asserting the
    /// result is a tautology.
    #[test]
    fn derived_assignment_satisfies_combined_spec(spec in arbitrary_spec()) {
        let derivation = derive_symbolic(&spec);
        let combined = spec.combined_expr();
        let substituted = combined.substitute(&|v: VarId| derivation.moe.get(&v).cloned());
        let mut manager = BddManager::new();
        let f = manager.from_expr(&substituted);
        prop_assert!(manager.is_tautology(f));
    }

    /// Disjunction closure (property P2) holds semantically: the pointwise OR
    /// of the derived assignment with any satisfying assignment satisfies the
    /// functional specification (and equals the derived assignment, by
    /// maximality).
    #[test]
    fn disjunction_with_any_satisfying_assignment_is_satisfying(
        spec in arbitrary_spec(),
        bits in any::<u64>(),
        other_bits in any::<u64>(),
    ) {
        prop_assume!(spec.moe_vars().len() <= 12);
        let env = env_for(&spec, bits);
        let functional = spec.functional_expr();
        let moe_vars = spec.moe_vars();
        let eval = |candidate: &dyn Fn(VarId) -> bool| {
            functional.eval_with(|v| {
                if moe_vars.contains(&v) { candidate(v) } else { env.get_or_false(v) }
            })
        };
        // A random satisfying assignment: mask the derived maximum.
        let derived = derive_concrete(&spec, &env);
        let candidate = |v: VarId| {
            let index = moe_vars.iter().position(|&x| x == v).expect("moe var");
            derived.get_or_false(v) && (other_bits & (1 << (index % 63)) != 0)
        };
        prop_assume!(eval(&candidate));
        // OR with the derived maximum still satisfies (and is the maximum).
        let union = |v: VarId| candidate(v) || derived.get_or_false(v);
        prop_assert!(eval(&union));
    }
}
