//! End-to-end integration tests spanning every crate of the workspace:
//! specification → derivation → assertions → simulation → synthesis →
//! property checking, on both the paper's example architecture and the
//! FirePath-like configuration.

use ipcl::assertgen::{AssertionKind, SpecMonitor, ViolationKind};
use ipcl::checker::{
    check_derived_implementation, check_netlist, check_reset_values, Engine, SpecDirection,
};
use ipcl::core::example::ExampleArch;
use ipcl::core::fixpoint::{derive_concrete, derive_symbolic};
use ipcl::core::model::StageRef;
use ipcl::core::properties::check_preconditions;
use ipcl::core::ArchSpec;
use ipcl::expr::Assignment;
use ipcl::pipesim::{
    BrokenInterlock, BrokenVariant, ConservativeInterlock, ConservativeVariant, Machine,
    MaximalInterlock, WorkloadConfig,
};
use ipcl::synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

/// The complete paper flow on the example architecture: preconditions,
/// derivation, exhaustive check, synthesis, equivalence.
#[test]
fn paper_flow_on_example_architecture() {
    let spec = ExampleArch::new().functional_spec();
    assert!(check_preconditions(&spec).all_hold());

    let derivation = derive_symbolic(&spec);
    assert_eq!(derivation.moe.len(), 6);

    for engine in Engine::ALL {
        assert!(check_derived_implementation(&spec, engine).holds());
    }

    let synthesized = synthesize_interlock(&spec);
    let report = check_netlist(&spec, synthesized.netlist(), Engine::Bdd).unwrap();
    assert!(report.holds());
    assert!(synthesized.to_verilog().contains("endmodule"));
}

/// The same flow on the FirePath-like architecture (the scaled case study).
#[test]
fn paper_flow_on_firepath_like_architecture() {
    let spec = ArchSpec::firepath_like().functional_spec().unwrap();
    assert!(check_preconditions(&spec).all_hold());
    assert!(spec.has_cyclic_dependencies());
    let report = check_derived_implementation(&spec, Engine::Bdd);
    assert!(report.holds());
    let synthesized = synthesize_interlock(&spec);
    assert!(check_netlist(&spec, synthesized.netlist(), Engine::Bdd)
        .unwrap()
        .holds());
}

/// Simulation with the maximal interlock is hazard-free and assertion-clean;
/// injected performance bugs are caught by the ground-truth comparison and
/// never cause hazards; injected functional bugs cause hazards that the
/// functional assertions report.
#[test]
fn simulation_and_assertions_classify_injected_bugs() {
    let arch = ArchSpec::paper_example();
    let program = WorkloadConfig::default()
        .with_packets(600)
        .with_dependence_bias(0.7)
        .generate(99);

    // Correct interlock.
    let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
    let spec = machine.spec().clone();
    let mut monitor = SpecMonitor::new(&spec, AssertionKind::Combined);
    let stats = machine.run_program_with_observer(&program, 100_000, |env, moe| {
        monitor.check_cycle(env, moe);
    });
    assert_eq!(stats.hazards.total(), 0);
    assert_eq!(stats.unnecessary_stalls, 0);
    assert!(monitor.report().is_clean());

    // Performance bugs: unnecessary stalls, no hazards.
    for variant in ConservativeVariant::ALL {
        let mut machine =
            Machine::new(&arch, Box::new(ConservativeInterlock::new(variant))).unwrap();
        let stats = machine.run_program(&program, 200_000);
        assert_eq!(stats.hazards.total(), 0, "{variant:?}");
        assert!(stats.unnecessary_stalls > 0, "{variant:?}");
    }

    // Functional bug: hazards, flagged by the functional assertions.
    let mut machine = Machine::new(
        &arch,
        Box::new(BrokenInterlock::new(BrokenVariant::IgnoreScoreboard)),
    )
    .unwrap();
    let spec = machine.spec().clone();
    let mut monitor = SpecMonitor::new(&spec, AssertionKind::Functional);
    let stats = machine.run_program_with_observer(&program, 200_000, |env, moe| {
        monitor.check_cycle(env, moe);
    });
    assert!(stats.hazards.raw_violations > 0);
    assert!(monitor.report().count_of(ViolationKind::MissedStall) > 0);
}

/// Property checking distinguishes the two bug classes exactly: conservative
/// interlocks fail only the performance direction, broken interlocks fail the
/// functional direction.
#[test]
fn property_checking_classifies_bug_classes() {
    let spec = ExampleArch::new().functional_spec();
    let wait = spec.pool().lookup("op_is_wait").unwrap();

    // Over-conservative: derived from an augmented specification.
    let augmented = spec
        .augmented(
            &StageRef::new("long", 2),
            "spurious",
            ipcl::expr::Expr::var(wait),
        )
        .unwrap();
    let conservative = derive_symbolic(&augmented).moe;
    let report = ipcl::checker::check_moe_expressions(&spec, &conservative, Engine::Sat);
    assert!(report.holds_direction(SpecDirection::Functional));
    assert!(!report.holds_direction(SpecDirection::Performance));

    // Broken: a stage ignores its stall condition entirely.
    let mut broken = derive_symbolic(&spec).moe;
    let short2 = spec.moe_var(&StageRef::new("short", 2)).unwrap();
    broken.insert(short2, ipcl::expr::Expr::TRUE);
    let report = ipcl::checker::check_moe_expressions(&spec, &broken, Engine::Bdd);
    assert!(!report.holds_direction(SpecDirection::Functional));
    assert!(!report.functional_violations().is_empty());
}

/// The closed-form symbolic derivation, the concrete per-cycle derivation and
/// the synthesised netlist all agree on every environment of the example
/// architecture (cross-validation of three independent code paths).
#[test]
fn derivation_simulation_and_synthesis_agree() {
    let spec = ExampleArch::new().functional_spec();
    let derivation = derive_symbolic(&spec);
    let synthesized = synthesize_interlock(&spec);
    let mut simulator = ipcl::rtl::Simulator::new(synthesized.netlist()).unwrap();
    let env_vars: Vec<_> = spec.env_vars().into_iter().collect();
    let pool = spec.pool();

    // Exhaustive over the 2^11 environments of the abstract example spec.
    for mask in 0u64..(1 << env_vars.len()) {
        let env: Assignment = env_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, mask & (1 << i) != 0))
            .collect();
        let concrete = derive_concrete(&spec, &env);
        let symbolic = derivation.evaluate(&env);
        assert_eq!(concrete, symbolic, "mask {mask:b}");
        for &var in &env_vars {
            let name = pool.name_or_fallback(var);
            let signal = synthesized.inputs()[&name];
            simulator.set_input(signal, env.get_or_false(var));
        }
        for stage in spec.stages() {
            let name = pool.name_or_fallback(stage.moe);
            let signal = synthesized.moe_outputs()[&name];
            assert_eq!(
                simulator.value(signal),
                concrete.get(stage.moe).unwrap(),
                "netlist disagrees on {name} for mask {mask:b}"
            );
        }
    }
}

/// Reset-value bugs are caught by the sequential check and invisible to the
/// purely combinational equivalence of the next-state functions.
#[test]
fn reset_value_bug_detection() {
    let spec = ExampleArch::new().functional_spec();
    let buggy = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: false,
            ..Default::default()
        },
    );
    let report = check_reset_values(&spec, buggy.netlist());
    assert_eq!(report.mismatches.len(), 6);

    let correct = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    assert!(check_reset_values(&spec, correct.netlist()).ok());
}

/// The generated SVA text references every specification signal and contains
/// one assertion per stage for each kind.
#[test]
fn generated_assertions_cover_the_specification() {
    let spec = ArchSpec::firepath_like().functional_spec().unwrap();
    let generator = ipcl::assertgen::sva::SvaGenerator::new(&spec);
    for kind in AssertionKind::ALL {
        let text = generator.render_module(kind);
        assert_eq!(
            text.matches("assert property").count(),
            spec.stages().len(),
            "{kind:?}"
        );
    }
}
