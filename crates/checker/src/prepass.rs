//! Bit-parallel random falsification: the compiled 64-lane sweep.
//!
//! [`random_falsification_bitsim`] is the throughput-optimised twin of
//! [`crate::sequential::random_falsification`]: instead of driving one
//! random input sequence per simulator pass, it drives **64 independent
//! random sequences at once** through a compiled [`ipcl_bitsim::BitSimulator`]
//! — one `u64` word per signal, bit `i` belonging to scenario `i` — and
//! evaluates both assertion directions word-wide with
//! [`ipcl_bitsim::eval_expr_word`]. A sweep of `c` cycles therefore covers
//! `64 × c` scenario-cycles for roughly the cost the interpreter pays for
//! `c`.
//!
//! **Oracle discipline.** The bit-parallel engine is an accelerator, never
//! an authority: whenever a lane violates an assertion, that lane's input
//! history is extracted into a standard [`Counterexample`] and replayed
//! gate-by-gate through the interpreted [`ipcl_rtl::Simulator`] before the
//! trace is reported. A lane verdict that fails to reproduce under the
//! interpreter would mean the compiled program diverged from the netlist
//! semantics — a simulator bug, not a property verdict — and panics.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use ipcl_bitsim::{eval_expr_word, BitSimulator, LANES};
use ipcl_bmc::{Counterexample, Latency, PropertyKind, SequentialProperty};
use ipcl_core::FunctionalSpec;
use ipcl_expr::VarId;
use ipcl_rtl::{Netlist, RtlError, SignalId, SignalKind};

use crate::sequential::DynamicViolation;

/// One word-wide assertion violation: the same observation as
/// [`DynamicViolation`], plus the mask of lanes (scenarios) that violated
/// simultaneously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneViolation {
    /// Cycle at which the assertion fired.
    pub cycle: u64,
    /// Offending stage prefix.
    pub stage: String,
    /// `true` for a missed stall (functional), `false` for an unnecessary
    /// stall (performance).
    pub functional: bool,
    /// Bitmask of the violating lanes (bit `i` = scenario `i`).
    pub lanes: u64,
}

impl LaneViolation {
    /// Number of scenarios that violated this assertion at this cycle.
    pub fn lane_count(&self) -> u32 {
        self.lanes.count_ones()
    }
}

/// Result of a bit-parallel falsification sweep.
#[derive(Clone, Debug)]
pub struct BitSweep {
    /// Every word-wide violation observed, in cycle order.
    pub violations: Vec<LaneViolation>,
    /// One interpreter-verified counterexample per violated
    /// `(stage, direction)` pair — the first violating lane of the first
    /// violating cycle, its input history extracted frame by frame and
    /// replayed through [`ipcl_rtl::Simulator`] (reproduction is asserted).
    pub counterexamples: Vec<Counterexample>,
    /// Total scenario-cycles swept (`cycles × 64`).
    pub scenarios: u64,
}

impl BitSweep {
    /// Whether the sweep observed no violation in any lane.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations in the interpreter sweep's vocabulary (one
    /// [`DynamicViolation`] per violated cycle/stage/direction, lane
    /// multiplicity dropped) — what the sequential checker's
    /// property-prioritisation consumes.
    pub fn dynamic_violations(&self) -> Vec<DynamicViolation> {
        self.violations
            .iter()
            .map(|v| DynamicViolation {
                cycle: v.cycle,
                stage: v.stage.clone(),
                functional: v.functional,
            })
            .collect()
    }
}

/// Drives `netlist` with 64 independent random environment sequences of
/// `cycles` cycles each and evaluates the functional and performance
/// assertions on its `moe` outputs word-wide every cycle.
///
/// Assertions are evaluated combinationally (`moe` and environment sampled
/// in the same cycle), exactly like the interpreter sweep — run it on
/// combinational-latency implementations. Stages whose `moe` signal the
/// netlist does not implement are skipped (their violations could not be
/// replayed; the full sequential checker rejects such netlists up front).
///
/// The sweep is deterministic in `seed`. Violating lanes are extracted and
/// interpreter-verified per the module-level oracle discipline.
///
/// # Errors
///
/// Propagates [`RtlError`]s from netlist elaboration/compilation.
///
/// # Panics
///
/// Panics if an extracted counterexample fails to reproduce under the
/// interpreted simulator (a compiled-simulator bug, never a verdict).
pub fn random_falsification_bitsim(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<BitSweep, RtlError> {
    let mut sim = BitSimulator::new(netlist)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = spec.pool();
    let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();

    // Pre-resolve name lookups once: the environment inputs the netlist
    // implements, and each stage's moe signal.
    let driven: Vec<(VarId, Option<SignalId>)> = env_vars
        .iter()
        .map(|&var| {
            let signal = netlist
                .find(&pool.name_or_fallback(var))
                .filter(|&s| matches!(netlist.signal(s).kind, SignalKind::Input));
            (var, signal)
        })
        .collect();
    let moe_signals: Vec<Option<SignalId>> = spec
        .stages()
        .iter()
        .map(|stage| netlist.find(&pool.name_or_fallback(stage.moe)))
        .collect();
    let properties = SequentialProperty::both_directions(spec, Latency::Combinational);

    // Per-cycle environment words, for lane extraction.
    let mut history: Vec<Vec<(VarId, u64)>> = Vec::with_capacity(cycles as usize);
    let mut extracted: BTreeSet<(String, bool)> = BTreeSet::new();
    let mut violations = Vec::new();
    let mut counterexamples = Vec::new();

    for cycle in 0..cycles {
        // 64 random environments at once: every lane of every word is an
        // independent coin flip. Inputs are driven deferred; the first moe
        // read below pays the single combinational settle.
        let mut words: BTreeMap<VarId, u64> = BTreeMap::new();
        let mut frame = Vec::with_capacity(env_vars.len());
        for &(var, signal) in &driven {
            let word = rng.next_u64();
            words.insert(var, word);
            frame.push((var, word));
            if let Some(signal) = signal {
                sim.set_input_word(signal, word);
            }
        }
        history.push(frame);
        // moe words shadow the environment, exactly like the interpreter
        // sweep's `moe.get(v).or(env.get(v))` lookup.
        for (stage, &signal) in spec.stages().iter().zip(&moe_signals) {
            if let Some(signal) = signal {
                words.insert(stage.moe, sim.value_word(signal));
            }
        }

        let lookup = |v: VarId| words.get(&v).copied().unwrap_or(0);
        for (stage, &signal) in spec.stages().iter().zip(&moe_signals) {
            if signal.is_none() {
                continue;
            }
            let moving = words[&stage.moe];
            let condition = eval_expr_word(&stage.condition(), lookup);
            for (functional, lanes) in [(true, condition & moving), (false, !moving & !condition)] {
                if lanes == 0 {
                    continue;
                }
                let prefix = stage.stage.prefix();
                violations.push(LaneViolation {
                    cycle,
                    stage: prefix.clone(),
                    functional,
                    lanes,
                });
                if extracted.insert((prefix.clone(), functional)) {
                    let cex = extract_and_verify(
                        spec,
                        netlist,
                        &properties,
                        &history,
                        &prefix,
                        functional,
                        cycle,
                        lanes,
                        pool,
                    )?;
                    counterexamples.push(cex);
                }
            }
        }
        sim.step();
    }

    Ok(BitSweep {
        violations,
        counterexamples,
        scenarios: cycles * LANES as u64,
    })
}

/// Extracts the lowest violating lane's input history into a
/// [`Counterexample`] and replays it through the interpreted simulator,
/// asserting the violation reproduces.
#[allow(clippy::too_many_arguments)]
fn extract_and_verify(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    properties: &[SequentialProperty],
    history: &[Vec<(VarId, u64)>],
    stage_prefix: &str,
    functional: bool,
    cycle: u64,
    lanes: u64,
    pool: &ipcl_expr::VarPool,
) -> Result<Counterexample, RtlError> {
    let kind = if functional {
        PropertyKind::Functional
    } else {
        PropertyKind::Performance
    };
    let property = properties
        .iter()
        .find(|p| p.stage == stage_prefix && p.kind == kind)
        .expect("both_directions covers every stage and direction");
    let lane = lanes.trailing_zeros() as usize;
    let frames: Vec<BTreeMap<String, bool>> = history
        .iter()
        .map(|frame| {
            frame
                .iter()
                .map(|&(var, word)| (pool.name_or_fallback(var), (word >> lane) & 1 == 1))
                .collect()
        })
        .collect();
    let cex = Counterexample {
        property: property.name.clone(),
        frames,
        violation_frame: cycle as usize,
    };
    let replay = cex.replay(spec, netlist, property)?;
    assert!(
        replay.violation_reproduced,
        "bit-parallel counterexample for {} (lane {lane}) failed to replay through \
         the interpreter — the compiled simulator diverged from the netlist \
         semantics:\n{}",
        property.name,
        cex.render()
    );
    Ok(cex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::{random_falsification, DEFAULT_PREPASS_SEED};
    use ipcl_core::example::ExampleArch;
    use ipcl_pipesim::BrokenVariant;
    use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock};

    #[test]
    fn correct_combinational_synthesis_sweeps_clean() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let sweep = random_falsification_bitsim(&spec, synthesized.netlist(), 300, 0xF00D).unwrap();
        assert!(sweep.clean(), "{:?}", sweep.violations);
        assert!(sweep.counterexamples.is_empty());
        assert_eq!(sweep.scenarios, 300 * 64);
    }

    #[test]
    fn sweep_is_deterministic_in_the_seed() {
        let spec = ExampleArch::new().functional_spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
        let a =
            random_falsification_bitsim(&spec, broken.netlist(), 40, DEFAULT_PREPASS_SEED).unwrap();
        let b =
            random_falsification_bitsim(&spec, broken.netlist(), 40, DEFAULT_PREPASS_SEED).unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.counterexamples, b.counterexamples);
    }

    #[test]
    fn broken_interlocks_are_falsified_with_verified_traces() {
        let spec = ExampleArch::new().functional_spec();
        for variant in [
            BrokenVariant::IgnoreScoreboard,
            BrokenVariant::IgnoreCompletionGrant,
            BrokenVariant::BadResetValues { cycles: 2 },
        ] {
            let broken = synthesize_broken_interlock(&spec, variant);
            let sweep = random_falsification_bitsim(&spec, broken.netlist(), 100, 0xBAD).unwrap();
            assert!(!sweep.clean(), "{variant:?} not caught");
            // Extraction already asserted replay internally; re-verify the
            // reported traces externally for good measure.
            assert!(!sweep.counterexamples.is_empty(), "{variant:?}");
            let properties = SequentialProperty::both_directions(&spec, Latency::Combinational);
            for cex in &sweep.counterexamples {
                let property = properties
                    .iter()
                    .find(|p| p.name == cex.property)
                    .expect("extracted property exists");
                let replay = cex.replay(&spec, broken.netlist(), property).unwrap();
                assert!(replay.violation_reproduced, "{variant:?}: {}", cex.render());
            }
        }
    }

    #[test]
    fn lane_multiplicity_is_reported() {
        // The bad-reset bug fires in (nearly) every lane at cycle 0: the
        // word-wide sweep sees the multiplicity a scalar sweep cannot.
        let spec = ExampleArch::new().functional_spec();
        let broken =
            synthesize_broken_interlock(&spec, BrokenVariant::BadResetValues { cycles: 2 });
        let sweep = random_falsification_bitsim(&spec, broken.netlist(), 10, 0xF00D).unwrap();
        let early: Vec<_> = sweep.violations.iter().filter(|v| v.cycle == 0).collect();
        assert!(!early.is_empty());
        assert!(early.iter().any(|v| v.lane_count() > 1));
    }

    #[test]
    fn agrees_with_the_interpreter_sweep_on_detection() {
        // Different RNG consumption means different sequences, but on a
        // buggy netlist both sweeps must find violations, and on a correct
        // one neither may.
        let spec = ExampleArch::new().functional_spec();
        let correct = synthesize_interlock(&spec);
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreCompletionGrant);
        for (netlist, buggy) in [(correct.netlist(), false), (broken.netlist(), true)] {
            let interp = random_falsification(&spec, netlist, 200, 0x5EED).unwrap();
            let bits = random_falsification_bitsim(&spec, netlist, 200, 0x5EED).unwrap();
            assert_eq!(interp.is_empty(), !buggy);
            assert_eq!(bits.clean(), !buggy);
        }
    }
}
