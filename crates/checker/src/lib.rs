//! Property checking of interlock implementations against their
//! specifications.
//!
//! Simulation with assertions (the `ipcl-assertgen` monitors) is only as good
//! as the stimulus; the paper's Results section recommends exhaustive
//! property checking instead. This crate provides that engine:
//!
//! * [`engine`] answers validity / implication / equivalence queries over
//!   specification expressions, with either the BDD package (`ipcl-bdd`) or
//!   the CDCL SAT solver (`ipcl-sat`) as a backend;
//! * [`implementation`] checks a concrete interlock implementation — given as
//!   closed-form `moe` expressions or as an `ipcl-rtl` netlist — against the
//!   functional, performance and combined specifications, producing
//!   counterexample assignments (unnecessary-stall or missed-stall
//!   witnesses);
//! * [`sequential`] checks reset behaviour of registered implementations and
//!   runs bounded random falsification over input sequences;
//! * [`prepass`] accelerates that falsification 64× with the compiled
//!   bit-parallel simulator (`ipcl-bitsim`), replaying every lane verdict
//!   through the interpreted simulator before reporting it.
//!
//! # Example
//!
//! ```
//! use ipcl_checker::{engine::Engine, implementation::check_derived_implementation};
//! use ipcl_core::example::ExampleArch;
//!
//! let spec = ExampleArch::new().functional_spec();
//! // The derived maximum-performance implementation satisfies the combined
//! // specification — exhaustively, not just on simulated cycles.
//! let report = check_derived_implementation(&spec, Engine::Bdd);
//! assert!(report.holds());
//! ```

pub mod engine;
pub mod implementation;
pub mod prepass;
pub mod sequential;

pub use engine::{CheckOutcome, Engine};
pub use implementation::{
    check_derived_implementation, check_moe_expressions, check_netlist, ImplementationReport,
    SpecDirection, StageVerdict,
};
pub use prepass::{random_falsification_bitsim, BitSweep, LaneViolation};
pub use sequential::{
    check_netlist_sequential, check_netlist_sequential_with, check_property_job,
    check_reset_values, random_falsification, DynamicViolation, ProofStrategy, ResetReport,
    SequentialOptions, SequentialReport, DEFAULT_PREPASS_SEED,
};
// The BMC/PDR vocabulary types, so callers of the sequential checker need
// not depend on `ipcl-bmc` / `ipcl-pdr` directly.
pub use ipcl_bmc::{
    BmcError, BmcOptions, BmcOutcome, BmcResult, Counterexample, Latency, PropertyKind,
    SequentialProperty, StallEscapeReport,
};
pub use ipcl_pdr::{
    Certificate, CertificateCheck, PdrOptions, PdrOutcome, PdrResult, PortfolioResult,
    PortfolioWinner, StateLiteral,
};
// Observability vocabulary, so callers can configure tracing on
// `SequentialOptions` and consume the snapshot without naming `ipcl-trace`.
pub use ipcl_trace::{TraceConfig, TraceSnapshot, Tracer};

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;

    #[test]
    fn crate_example_runs() {
        let spec = ExampleArch::new().functional_spec();
        for engine in [Engine::Bdd, Engine::Sat] {
            assert!(check_derived_implementation(&spec, engine).holds());
        }
    }
}
