//! Validity, implication and equivalence engines (BDD- and SAT-backed).

use ipcl_bdd::BddManager;
use ipcl_expr::{Assignment, Expr, TseitinEncoder};
use ipcl_sat::{SatResult, Solver};

/// Which exhaustive engine answers a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Reduced ordered binary decision diagrams (`ipcl-bdd`). Canonical, also
    /// yields model counts; the default.
    #[default]
    Bdd,
    /// Conflict-driven clause learning SAT (`ipcl-sat`). Usually faster on
    /// large, irregular formulas.
    Sat,
    /// SAT-based bounded model checking with k-induction (`ipcl-bmc`), the
    /// default sequential engine of
    /// [`crate::sequential::check_netlist_sequential`]. `k` bounds the
    /// unroll depth. On purely combinational validity queries this engine
    /// degenerates to [`Engine::Sat`] (a one-frame unrolling).
    Bmc {
        /// Maximum number of time frames to unroll.
        k: usize,
    },
    /// IC3/property-directed reachability (`ipcl-pdr`): unbounded sequential
    /// proofs with certified inductive invariants — no unrolling depth to
    /// choose. On combinational queries this degenerates to [`Engine::Sat`].
    Pdr,
    /// The portfolio checker (`ipcl-pdr`): BMC falsification racing a PDR
    /// proof per property, first definitive verdict wins. The most robust
    /// sequential choice when it is unknown whether the design is buggy.
    Portfolio,
}

impl Engine {
    /// The combinational engines, for ablation experiments.
    pub const ALL: [Engine; 2] = [Engine::Bdd, Engine::Sat];

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Bdd => "bdd",
            Engine::Sat => "sat",
            Engine::Bmc { .. } => "bmc",
            Engine::Pdr => "pdr",
            Engine::Portfolio => "portfolio",
        }
    }
}

/// Outcome of a validity query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The formula is valid (true under every assignment).
    Valid,
    /// The formula is falsifiable; the assignment is a witness of `¬formula`.
    CounterExample(Assignment),
}

impl CheckOutcome {
    /// Whether the query was valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckOutcome::Valid)
    }

    /// The counterexample, if any.
    pub fn counterexample(&self) -> Option<&Assignment> {
        match self {
            CheckOutcome::Valid => None,
            CheckOutcome::CounterExample(a) => Some(a),
        }
    }
}

/// Decides whether `formula` is valid, returning a counterexample when not.
pub fn check_validity(formula: &Expr, engine: Engine) -> CheckOutcome {
    match engine {
        Engine::Bdd => {
            let mut manager = BddManager::new();
            let negated = Expr::not(formula.clone());
            let f = manager.from_expr(&negated);
            match manager.any_model(f) {
                None => CheckOutcome::Valid,
                Some(model) => CheckOutcome::CounterExample(model),
            }
        }
        // A combinational query is a one-frame BMC/PDR problem: answer it
        // with the plain SAT path (Plaisted–Greenbaum encoding of the
        // negation — the refutation only ever asserts the root positively).
        Engine::Sat | Engine::Bmc { .. } | Engine::Pdr | Engine::Portfolio => {
            let negated = Expr::not(formula.clone());
            let mut encoder = TseitinEncoder::new();
            encoder.assert_expr(&negated);
            let var_map = encoder.var_map().clone();
            let mut solver = Solver::from_cnf(encoder.cnf());
            match solver.solve() {
                SatResult::Unsat => CheckOutcome::Valid,
                SatResult::Sat(model) => {
                    let assignment = var_map
                        .into_iter()
                        .map(|(spec_var, cnf_var)| (spec_var, model[cnf_var as usize]))
                        .collect();
                    CheckOutcome::CounterExample(assignment)
                }
            }
        }
    }
}

/// Decides whether `antecedent → consequent` is valid.
pub fn check_implication(antecedent: &Expr, consequent: &Expr, engine: Engine) -> CheckOutcome {
    check_validity(
        &Expr::implies(antecedent.clone(), consequent.clone()),
        engine,
    )
}

/// Decides whether two formulas denote the same function.
pub fn check_equivalence(left: &Expr, right: &Expr, engine: Engine) -> CheckOutcome {
    check_validity(&Expr::iff(left.clone(), right.clone()), engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    fn parse(text: &str) -> (Expr, VarPool) {
        let mut pool = VarPool::new();
        let e = parse_expr(text, &mut pool).unwrap();
        (e, pool)
    }

    #[test]
    fn both_engines_agree_on_validity() {
        let cases = [
            ("a | !a", true),
            ("a & !a", false),
            ("(a -> b) & (b -> c) -> (a -> c)", true),
            ("a -> a & b", false),
            ("(a & b) | (!a & b) | !b", true),
        ];
        for (text, expected_valid) in cases {
            let (expr, _) = parse(text);
            for engine in Engine::ALL {
                let outcome = check_validity(&expr, engine);
                assert_eq!(outcome.is_valid(), expected_valid, "{text} with {engine:?}");
            }
        }
    }

    #[test]
    fn counterexamples_falsify_the_formula() {
        let (expr, _) = parse("a -> a & b");
        for engine in Engine::ALL {
            let outcome = check_validity(&expr, engine);
            let model = outcome.counterexample().expect("falsifiable").clone();
            // The model satisfies the negation of the formula.
            assert!(
                Expr::not(expr.clone()).eval_with(|v| model.get_or_false(v)),
                "{engine:?}"
            );
        }
    }

    #[test]
    fn implication_and_equivalence_helpers() {
        let (stronger, mut pool) = parse("a & b");
        let weaker = parse_expr("a | b", &mut pool).unwrap();
        for engine in Engine::ALL {
            assert!(check_implication(&stronger, &weaker, engine).is_valid());
            assert!(!check_implication(&weaker, &stronger, engine).is_valid());
            assert!(!check_equivalence(&stronger, &weaker, engine).is_valid());
            assert!(check_equivalence(&stronger, &stronger, engine).is_valid());
        }
    }

    #[test]
    fn engine_names() {
        assert_eq!(Engine::Bdd.name(), "bdd");
        assert_eq!(Engine::Sat.name(), "sat");
        assert_eq!(Engine::default(), Engine::Bdd);
    }
}
