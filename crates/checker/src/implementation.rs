//! Checking interlock implementations against specifications.
//!
//! An *implementation* is, for every stage, a boolean function giving the
//! stage's `moe` flag in terms of the environment signals (and possibly other
//! stages' flags). The checker substitutes those functions into each
//! direction of the specification and decides validity exhaustively:
//!
//! * a failing **functional** check means the implementation misses a
//!   required stall (the counterexample is a hazard scenario);
//! * a failing **performance** check means the implementation stalls
//!   unnecessarily (the counterexample is the paper's performance bug);
//! * the **combined** check is both.

use std::collections::BTreeMap;

use ipcl_core::fixpoint::derive_symbolic;
use ipcl_core::FunctionalSpec;
use ipcl_expr::{Assignment, Expr, VarId, VarPool};
use ipcl_rtl::Netlist;

use crate::engine::{check_validity, CheckOutcome, Engine};

/// Which direction of the specification is checked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecDirection {
    /// `condition → ¬moe`.
    Functional,
    /// `¬moe → condition`.
    Performance,
    /// Both directions.
    Combined,
}

impl SpecDirection {
    /// All directions.
    pub const ALL: [SpecDirection; 3] = [
        SpecDirection::Functional,
        SpecDirection::Performance,
        SpecDirection::Combined,
    ];
}

/// Verdict for one pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageVerdict {
    /// The stage's `pipe.stage` prefix.
    pub stage: String,
    /// Whether the functional direction holds.
    pub functional: CheckOutcome,
    /// Whether the performance direction holds.
    pub performance: CheckOutcome,
}

impl StageVerdict {
    /// Whether both directions hold for this stage.
    pub fn holds(&self) -> bool {
        self.functional.is_valid() && self.performance.is_valid()
    }
}

/// Result of checking a whole implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImplementationReport {
    /// Engine used.
    pub engine: Engine,
    /// Per-stage verdicts, in specification order.
    pub stages: Vec<StageVerdict>,
}

impl ImplementationReport {
    /// Whether every stage satisfies both directions.
    pub fn holds(&self) -> bool {
        self.stages.iter().all(StageVerdict::holds)
    }

    /// Whether every stage satisfies the requested direction.
    pub fn holds_direction(&self, direction: SpecDirection) -> bool {
        self.stages.iter().all(|s| match direction {
            SpecDirection::Functional => s.functional.is_valid(),
            SpecDirection::Performance => s.performance.is_valid(),
            SpecDirection::Combined => s.holds(),
        })
    }

    /// Stages with a functional violation (missed stall), with witnesses.
    pub fn functional_violations(&self) -> Vec<(&str, &Assignment)> {
        self.stages
            .iter()
            .filter_map(|s| s.functional.counterexample().map(|c| (s.stage.as_str(), c)))
            .collect()
    }

    /// Stages with a performance violation (unnecessary stall), with
    /// witnesses.
    pub fn performance_violations(&self) -> Vec<(&str, &Assignment)> {
        self.stages
            .iter()
            .filter_map(|s| {
                s.performance
                    .counterexample()
                    .map(|c| (s.stage.as_str(), c))
            })
            .collect()
    }
}

/// Checks an implementation given as one `moe` expression per stage flag.
///
/// The expressions may reference other stages' `moe` variables; they are
/// inlined (in the closed form computed from the map itself) before checking,
/// so self-consistent register-to-register implementations are handled.
///
/// # Panics
///
/// Panics if the map misses a stage of the specification.
pub fn check_moe_expressions(
    spec: &FunctionalSpec,
    implementation: &BTreeMap<VarId, Expr>,
    engine: Engine,
) -> ImplementationReport {
    let closed = close_implementation(spec, implementation);
    let stages = spec
        .stages()
        .iter()
        .map(|stage| {
            let substitute = |e: &Expr| e.substitute(&|v| closed.get(&v).cloned());
            let condition = substitute(&stage.condition());
            let moe_expr = closed
                .get(&stage.moe)
                .unwrap_or_else(|| panic!("implementation misses stage {}", stage.stage))
                .clone();
            let not_moe = Expr::not(moe_expr);
            let functional =
                check_validity(&Expr::implies(condition.clone(), not_moe.clone()), engine);
            let performance = check_validity(&Expr::implies(not_moe, condition), engine);
            StageVerdict {
                stage: stage.stage.prefix(),
                functional,
                performance,
            }
        })
        .collect();
    ImplementationReport { engine, stages }
}

/// Inlines cross-references between implementation expressions so that every
/// stage's `moe` is expressed purely over environment signals.
fn close_implementation(
    spec: &FunctionalSpec,
    implementation: &BTreeMap<VarId, Expr>,
) -> BTreeMap<VarId, Expr> {
    let mut closed = implementation.clone();
    // At most |stages| rounds are needed; cyclic references settle because we
    // substitute the previous round's expressions simultaneously.
    for _ in 0..spec.stages().len() {
        let snapshot = closed.clone();
        let mut changed = false;
        for expr in closed.values_mut() {
            let replaced = expr.substitute(&|v| snapshot.get(&v).cloned());
            if &replaced != expr {
                *expr = ipcl_expr::simplify::simplify(&replaced);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    closed
}

/// Checks the implementation defined by the fixed-point derivation itself
/// (a self-check of the method: the derived `moe` functions must satisfy the
/// combined specification).
pub fn check_derived_implementation(spec: &FunctionalSpec, engine: Engine) -> ImplementationReport {
    let derivation = derive_symbolic(spec);
    check_moe_expressions(spec, &derivation.moe, engine)
}

/// Checks an `ipcl-rtl` netlist implementation.
///
/// The netlist's outputs must be named exactly like the specification's `moe`
/// signals (`"long.4.moe"`, …) and its inputs like the environment signals —
/// the convention used by `ipcl-synth`. The boolean function of every output
/// is extracted from the gate network and checked as in
/// [`check_moe_expressions`].
///
/// # Errors
///
/// Returns the names of specification stages whose `moe` output is missing
/// from the netlist.
pub fn check_netlist(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    engine: Engine,
) -> Result<ImplementationReport, Vec<String>> {
    // Extract output functions into a pool that shares names with the spec.
    let mut shared_pool: VarPool = spec.pool().clone();
    let mut implementation = BTreeMap::new();
    let mut missing = Vec::new();
    for stage in spec.stages() {
        let name = spec.pool().name_or_fallback(stage.moe);
        match netlist.find(&name) {
            Some(signal) => {
                let expr = netlist.signal_expr(signal, &mut shared_pool);
                implementation.insert(stage.moe, expr);
            }
            None => missing.push(name),
        }
    }
    if !missing.is_empty() {
        return Err(missing);
    }
    Ok(check_moe_expressions(spec, &implementation, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_core::model::StageRef;
    use ipcl_synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

    fn derived_map(spec: &FunctionalSpec) -> BTreeMap<VarId, Expr> {
        derive_symbolic(spec).moe
    }

    #[test]
    fn derived_implementation_satisfies_combined_spec_with_both_engines() {
        let spec = ExampleArch::new().functional_spec();
        for engine in Engine::ALL {
            let report = check_derived_implementation(&spec, engine);
            assert!(report.holds(), "{engine:?}: {report:?}");
            assert!(report.holds_direction(SpecDirection::Functional));
            assert!(report.holds_direction(SpecDirection::Performance));
            assert!(report.holds_direction(SpecDirection::Combined));
            assert_eq!(report.stages.len(), 6);
        }
    }

    #[test]
    fn over_conservative_implementation_fails_performance_only() {
        let spec = ExampleArch::new().functional_spec();
        // Inject a performance bug: long.3 additionally stalls whenever the
        // wait flag is set. Deriving from the *augmented* specification keeps
        // the implementation internally consistent (upstream stages respect
        // the spurious stall), so it still satisfies the original functional
        // specification — but not the original performance specification.
        let wait = spec.pool().lookup("op_is_wait").unwrap();
        let augmented = spec
            .augmented(&StageRef::new("long", 3), "spurious-wait", Expr::var(wait))
            .unwrap();
        let implementation = derived_map(&augmented);
        let report = check_moe_expressions(&spec, &implementation, Engine::Bdd);
        assert!(
            report.holds_direction(SpecDirection::Functional),
            "{report:?}"
        );
        assert!(!report.holds_direction(SpecDirection::Performance));
        let violations = report.performance_violations();
        assert!(!violations.is_empty());
        assert!(violations.iter().any(|(stage, _)| *stage == "long.3"));
        // Every witness has the wait flag set (the spurious stall cause).
        for (_, witness) in &violations {
            assert_eq!(witness.get(wait), Some(true));
        }
    }

    #[test]
    fn broken_implementation_fails_functional_only() {
        let spec = ExampleArch::new().functional_spec();
        let mut implementation = derived_map(&spec);
        // long.4 ignores the completion grant: claims to move even when it
        // lost the bus.
        let long4 = spec.moe_var(&StageRef::new("long", 4)).unwrap();
        implementation.insert(long4, Expr::TRUE);
        let report = check_moe_expressions(&spec, &implementation, Engine::Sat);
        assert!(!report.holds_direction(SpecDirection::Functional));
        let violations = report.functional_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].0, "long.4");
        let witness = violations[0].1;
        let req = spec.pool().lookup("long.req").unwrap();
        let gnt = spec.pool().lookup("long.gnt").unwrap();
        assert!(witness.get_or_false(req));
        assert!(!witness.get_or_false(gnt));
    }

    #[test]
    fn synthesized_netlist_is_equivalent_to_spec() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        for engine in Engine::ALL {
            let report = check_netlist(&spec, synthesized.netlist(), engine).unwrap();
            assert!(report.holds(), "{engine:?}");
        }
    }

    #[test]
    fn netlist_with_missing_outputs_is_rejected() {
        let spec = ExampleArch::new().functional_spec();
        let empty = Netlist::new("empty");
        let missing = check_netlist(&spec, &empty, Engine::Bdd).unwrap_err();
        assert_eq!(missing.len(), 6);
        assert!(missing.contains(&"long.4.moe".to_owned()));
    }

    #[test]
    fn registered_synthesis_checks_combinationally_via_next_state() {
        // With registered outputs the *output* signal is a register (a free
        // variable), so the combinational check is run against the register's
        // next-state cone instead — rebuild a map from the next-state
        // functions and verify it.
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                ..Default::default()
            },
        );
        let mut pool = spec.pool().clone();
        let mut implementation = BTreeMap::new();
        for stage in spec.stages() {
            let name = spec.pool().name_or_fallback(stage.moe);
            let register = synthesized.netlist().find(&name).unwrap();
            let next = synthesized
                .netlist()
                .register_next_expr(register, &mut pool)
                .unwrap();
            implementation.insert(stage.moe, next);
        }
        let report = check_moe_expressions(&spec, &implementation, Engine::Bdd);
        assert!(report.holds());
    }

    #[test]
    fn firepath_like_derived_implementation_holds() {
        let spec = ipcl_core::ArchSpec::firepath_like()
            .functional_spec()
            .unwrap();
        let report = check_derived_implementation(&spec, Engine::Bdd);
        assert!(report.holds());
        assert_eq!(report.stages.len(), 24);
    }
}
