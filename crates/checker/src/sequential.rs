//! Sequential checks: reset values and bounded random falsification.
//!
//! The paper's case study reports finding "incorrect initialisation values of
//! control signals". [`check_reset_values`] detects exactly that class of
//! bug in registered interlock implementations: immediately after reset the
//! pipeline is empty, so the maximum-performance assignment is *everything
//! may move*; any `moe` register that resets to a different value either
//! stalls unnecessarily out of reset or (worse) reports a busy stage as free.
//!
//! [`random_falsification`] complements the combinational checks with a
//! dynamic sweep: it drives an `ipcl-rtl` implementation with random
//! environment vectors for a bounded number of cycles and evaluates the
//! functional and performance assertions on every cycle — the same checks a
//! simulation testbench performs, without needing `ipcl-pipesim`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ipcl_core::fixpoint::derive_concrete;
use ipcl_core::FunctionalSpec;
use ipcl_expr::Assignment;
use ipcl_rtl::{Netlist, RtlError, SignalKind, Simulator};

/// Result of a reset-value check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResetReport {
    /// `(moe signal name, expected reset value, actual reset value)` for each
    /// mismatching register.
    pub mismatches: Vec<(String, bool, bool)>,
    /// Number of registered `moe` outputs examined.
    pub examined: usize,
}

impl ResetReport {
    /// Whether every examined reset value was correct.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Checks the reset values of a registered interlock implementation.
///
/// `moe` outputs implemented as plain wires are ignored (they have no reset
/// value of their own); registered outputs are compared against the derived
/// maximum-performance value for the empty (post-reset) environment.
pub fn check_reset_values(spec: &FunctionalSpec, netlist: &Netlist) -> ResetReport {
    let expected = derive_concrete(spec, &Assignment::new());
    let mut mismatches = Vec::new();
    let mut examined = 0;
    for stage in spec.stages() {
        let name = spec.pool().name_or_fallback(stage.moe);
        let Some(signal) = netlist.find(&name) else {
            continue;
        };
        if let SignalKind::Register { init, .. } = netlist.signal(signal).kind {
            examined += 1;
            let expected_value = expected.get(stage.moe).unwrap_or(true);
            if init != expected_value {
                mismatches.push((name, expected_value, init));
            }
        }
    }
    ResetReport {
        mismatches,
        examined,
    }
}

/// One violation found by [`random_falsification`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicViolation {
    /// Cycle at which the assertion fired.
    pub cycle: u64,
    /// Offending stage prefix.
    pub stage: String,
    /// `true` for a missed stall (functional), `false` for an unnecessary
    /// stall (performance).
    pub functional: bool,
}

/// Drives `netlist` with `cycles` random environment vectors and evaluates
/// the functional and performance assertions on its `moe` outputs each cycle.
///
/// Returns the violations found (possibly empty).
///
/// # Errors
///
/// Propagates [`RtlError`]s from netlist elaboration.
pub fn random_falsification(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<Vec<DynamicViolation>, RtlError> {
    let mut simulator = Simulator::new(netlist)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let env_vars: Vec<_> = spec.env_vars().into_iter().collect();
    let pool = spec.pool();
    let mut violations = Vec::new();

    for cycle in 0..cycles {
        // Random environment, driven into the matching netlist inputs.
        let mut env = Assignment::new();
        for &var in &env_vars {
            let value = rng.random_bool(0.5);
            env.set(var, value);
            if let Some(signal) = netlist.find(&pool.name_or_fallback(var)) {
                if matches!(netlist.signal(signal).kind, SignalKind::Input) {
                    simulator.set_input(signal, value);
                }
            }
        }
        // Read the implementation's moe outputs.
        let mut moe = Assignment::new();
        for stage in spec.stages() {
            if let Some(signal) = netlist.find(&pool.name_or_fallback(stage.moe)) {
                moe.set(stage.moe, simulator.value(signal));
            }
        }
        // Evaluate both assertion directions.
        let lookup = |v| moe.get(v).or(env.get(v)).unwrap_or(false);
        for stage in spec.stages() {
            let moving = moe.get(stage.moe).unwrap_or(true);
            let condition = stage.condition().eval_with(lookup);
            if condition && moving {
                violations.push(DynamicViolation {
                    cycle,
                    stage: stage.stage.prefix(),
                    functional: true,
                });
            }
            if !moving && !condition {
                violations.push(DynamicViolation {
                    cycle,
                    stage: stage.stage.prefix(),
                    functional: false,
                });
            }
        }
        simulator.step();
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

    #[test]
    fn correct_reset_values_pass() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 6);
        assert!(report.ok());
    }

    #[test]
    fn incorrect_reset_values_are_reported() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 6);
        assert_eq!(report.mismatches.len(), 6);
        assert!(report
            .mismatches
            .iter()
            .all(|(_, expected, actual)| *expected && !*actual));
    }

    #[test]
    fn combinational_outputs_are_skipped_by_reset_check() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 0);
        assert!(report.ok());
    }

    #[test]
    fn random_falsification_is_clean_for_combinational_synthesis() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let violations =
            random_falsification(&spec, synthesized.netlist(), 300, 0xF00D).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn random_falsification_catches_wrong_reset_value_at_cycle_zero() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let violations =
            random_falsification(&spec, synthesized.netlist(), 50, 0xF00D).unwrap();
        // At cycle 0 every stage is stalled although (for most random
        // environments) no stall condition holds: performance violations.
        assert!(violations.iter().any(|v| v.cycle == 0 && !v.functional));
    }

    #[test]
    fn random_falsification_flags_registered_latency_mismatches() {
        // Registered outputs with the *correct* reset value still lag the
        // environment by one cycle, so a one-cycle-delayed implementation is
        // occasionally caught by the combinational assertions — demonstrating
        // why the paper treats registered implementations via the sequential
        // flow rather than pure combinational checks.
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let violations =
            random_falsification(&spec, synthesized.netlist(), 400, 0xBEEF).unwrap();
        assert!(!violations.is_empty());
    }
}
