//! Sequential checks: BMC/k-induction property checking, reset values and
//! bounded random falsification.
//!
//! The paper's case study reports finding "incorrect initialisation values of
//! control signals". [`check_reset_values`] detects exactly that class of
//! bug in registered interlock implementations: immediately after reset the
//! pipeline is empty, so the maximum-performance assignment is *everything
//! may move*; any `moe` register that resets to a different value either
//! stalls unnecessarily out of reset or (worse) reports a busy stage as free.
//!
//! [`check_netlist_sequential`] is the exhaustive sequential engine: it
//! builds the functional/performance property portfolio for the netlist's
//! latency class, proves or falsifies every property with the configured
//! [`ProofStrategy`] — k-induction (`ipcl-bmc`), IC3/PDR with certified
//! inductive invariants (`ipcl-pdr`), or a per-property race of the two —
//! proves every stall state escapable, and folds in the reset check.
//! Counterexamples replay deterministically through the simulator and PDR
//! certificates pass independent SAT validation before a verdict is
//! reported. Properties are checked in parallel, one OS thread per property
//! (a portfolio race uses two).
//!
//! [`random_falsification`] remains as a cheap dynamic pre-pass: it drives
//! the implementation with random environment vectors and evaluates the
//! assertions on every cycle. `check_netlist_sequential` runs it first and
//! uses its (unsound but fast) verdicts to prioritise which properties to
//! attack; its violations are reported alongside the exhaustive results.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipcl_bmc::{
    check_property_traced, check_stall_escape, BmcError, BmcOptions, BmcOutcome, BmcResult,
    BmcStats, Latency, SequentialProperty, StallEscapeReport,
};
use ipcl_core::fixpoint::derive_concrete;
use ipcl_core::FunctionalSpec;
use ipcl_expr::Assignment;
use ipcl_pdr::{
    check_property_pdr_parallel_traced, check_property_pdr_traced,
    check_property_portfolio_parallel_with_cancel, check_property_portfolio_with_cancel,
    Certificate, ParallelPdrOptions, PdrOptions, PdrOutcome, PdrResult, PortfolioWinner,
};
use ipcl_rtl::{Netlist, RtlError, SignalKind, Simulator};
use ipcl_trace::{TraceConfig, TraceSnapshot, Tracer, Value};

use crate::engine::Engine;

/// Deterministic default seed of the random-simulation pre-pass
/// ([`SequentialOptions::prepass_seed`]).
pub const DEFAULT_PREPASS_SEED: u64 = 0x1b3c;

/// Result of a reset-value check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResetReport {
    /// `(moe signal name, expected reset value, actual reset value)` for each
    /// mismatching register.
    pub mismatches: Vec<(String, bool, bool)>,
    /// Number of registered `moe` outputs examined.
    pub examined: usize,
}

impl ResetReport {
    /// Whether every examined reset value was correct.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Checks the reset values of a registered interlock implementation.
///
/// `moe` outputs implemented as plain wires are ignored (they have no reset
/// value of their own); registered outputs are compared against the derived
/// maximum-performance value for the empty (post-reset) environment.
pub fn check_reset_values(spec: &FunctionalSpec, netlist: &Netlist) -> ResetReport {
    let expected = derive_concrete(spec, &Assignment::new());
    let mut mismatches = Vec::new();
    let mut examined = 0;
    for stage in spec.stages() {
        let name = spec.pool().name_or_fallback(stage.moe);
        let Some(signal) = netlist.find(&name) else {
            continue;
        };
        if let SignalKind::Register { init, .. } = netlist.signal(signal).kind {
            examined += 1;
            let expected_value = expected.get(stage.moe).unwrap_or(true);
            if init != expected_value {
                mismatches.push((name, expected_value, init));
            }
        }
    }
    ResetReport {
        mismatches,
        examined,
    }
}

/// One violation found by [`random_falsification`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicViolation {
    /// Cycle at which the assertion fired.
    pub cycle: u64,
    /// Offending stage prefix.
    pub stage: String,
    /// `true` for a missed stall (functional), `false` for an unnecessary
    /// stall (performance).
    pub functional: bool,
}

/// Drives `netlist` with `cycles` random environment vectors and evaluates
/// the functional and performance assertions on its `moe` outputs each cycle.
///
/// Returns the violations found (possibly empty).
///
/// # Errors
///
/// Propagates [`RtlError`]s from netlist elaboration.
pub fn random_falsification(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<Vec<DynamicViolation>, RtlError> {
    let mut simulator = Simulator::new(netlist)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let env_vars: Vec<_> = spec.env_vars().into_iter().collect();
    let pool = spec.pool();
    let mut violations = Vec::new();

    for cycle in 0..cycles {
        // Random environment, driven into the matching netlist inputs in
        // one batch (one settle per cycle, not one per input).
        let mut env = Assignment::new();
        let mut driven = Vec::with_capacity(env_vars.len());
        for &var in &env_vars {
            let value = rng.random_bool(0.5);
            env.set(var, value);
            if let Some(signal) = netlist.find(&pool.name_or_fallback(var)) {
                if matches!(netlist.signal(signal).kind, SignalKind::Input) {
                    driven.push((signal, value));
                }
            }
        }
        simulator.set_inputs(driven);
        // Read the implementation's moe outputs.
        let mut moe = Assignment::new();
        for stage in spec.stages() {
            if let Some(signal) = netlist.find(&pool.name_or_fallback(stage.moe)) {
                moe.set(stage.moe, simulator.value(signal));
            }
        }
        // Evaluate both assertion directions.
        let lookup = |v| moe.get(v).or(env.get(v)).unwrap_or(false);
        for stage in spec.stages() {
            let moving = moe.get(stage.moe).unwrap_or(true);
            let condition = stage.condition().eval_with(lookup);
            if condition && moving {
                violations.push(DynamicViolation {
                    cycle,
                    stage: stage.stage.prefix(),
                    functional: true,
                });
            }
            if !moving && !condition {
                violations.push(DynamicViolation {
                    cycle,
                    stage: stage.stage.prefix(),
                    functional: false,
                });
            }
        }
        simulator.step();
    }
    Ok(violations)
}

/// Which proof engine decides each property of the sequential portfolio.
///
/// The strategies differ in one semantic detail besides strength: the
/// k-induction base cases honour [`BmcOptions::quiet_cycles`] (the
/// post-reset environment is assumed quiet, ruling out counterfeit
/// "hazard at reset" traces), while PDR — and therefore the portfolio,
/// which aligns its BMC racer by forcing `quiet_cycles` to 0 — decides the
/// property **unconditionally**, over every input sequence from reset. A
/// design that is only correct under the quiet-reset assumption is proved
/// by [`ProofStrategy::KInduction`] and falsified (with a noisy-reset
/// trace) by the other two; that trace is a real execution of the netlist,
/// just one the quiet-cycle discipline chooses to exclude.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProofStrategy {
    /// BMC falsification with a k-induction proof attempt per depth
    /// (`ipcl-bmc`); bounded by [`BmcOptions::max_depth`]. The default.
    #[default]
    KInduction,
    /// IC3/PDR (`ipcl-pdr`): unbounded proofs with certified inductive
    /// invariants; counterexamples are replayable but not minimal-length.
    /// Ignores [`BmcOptions::quiet_cycles`] (see the enum docs).
    Pdr,
    /// Race both per property on scoped threads; the first definitive
    /// verdict wins and cancels the loser
    /// ([`ipcl_pdr::check_property_portfolio`]). Both racers run with
    /// `quiet_cycles = 0` (see the enum docs).
    Portfolio,
}

/// Options of [`check_netlist_sequential`].
#[derive(Clone, Copy, Debug)]
pub struct SequentialOptions {
    /// Which engine proves/falsifies each property. Note the quiet-cycle
    /// caveat on [`ProofStrategy`]: only [`ProofStrategy::KInduction`]
    /// honours [`BmcOptions::quiet_cycles`].
    pub strategy: ProofStrategy,
    /// BMC / k-induction knobs (depth bound, quiet cycles, incrementality,
    /// and the CDCL heuristics via [`BmcOptions::solver`] — heap decisions,
    /// clause minimization, database reduction, restarts, phase saving).
    pub bmc: BmcOptions,
    /// PDR knobs (frame budget, generalisation, certificate validation,
    /// and the CDCL heuristics via [`PdrOptions::solver`]).
    pub pdr: PdrOptions,
    /// Worker threads of the proof engine itself (not to be confused with
    /// [`SequentialOptions::parallel`], which is per-property parallelism).
    /// `1` (the default) runs the sequential PDR engine exactly; `N ≥ 2`
    /// routes [`ProofStrategy::Pdr`] and the PDR racer of
    /// [`ProofStrategy::Portfolio`] through the parallel proof engine
    /// ([`ipcl_pdr::check_property_pdr_parallel`]) with `N` workers —
    /// verdicts, traces and certificates are deterministic in `N` (see the
    /// `ipcl_pdr::parallel` docs). [`ProofStrategy::KInduction`] is
    /// unaffected. Use [`ipcl_pdr::default_threads`] to fill in the host's
    /// available parallelism.
    pub threads: usize,
    /// Property latency. `None` auto-detects from the netlist
    /// ([`Latency::Registered`] when the `moe` outputs are registers).
    pub latency: Option<Latency>,
    /// Cycles of the random-simulation pre-pass (0 disables it).
    pub prepass_cycles: u64,
    /// Seed of the random-simulation pre-pass. The default
    /// ([`DEFAULT_PREPASS_SEED`]) is fixed so CI runs are reproducible;
    /// vary it explicitly to diversify the sweep.
    pub prepass_seed: u64,
    /// Run the pre-pass on the compiled bit-parallel simulator
    /// ([`crate::prepass::random_falsification_bitsim`]): 64 independent
    /// random input sequences per pass instead of one, for roughly the same
    /// cost. Every violating lane is extracted into a counterexample and
    /// replayed through the interpreted simulator before its verdict is
    /// used. `true` by default; disable to fall back to the interpreted
    /// [`random_falsification`] sweep.
    pub bitsim: bool,
    /// Check every property on its own OS thread.
    pub parallel: bool,
    /// Run the per-stage stall-escape (deadlock/livelock) proof.
    pub deadlock: bool,
    /// Window of the stall-escape check, in quiet cycles.
    pub escape_cycles: usize,
    /// Observability configuration. Disabled by default (and zero-cost when
    /// disabled); when enabled, [`SequentialReport::trace`] carries the
    /// frozen profile tree, metrics and event log of the whole run.
    pub trace: TraceConfig,
}

impl Default for SequentialOptions {
    fn default() -> Self {
        SequentialOptions {
            strategy: ProofStrategy::default(),
            bmc: BmcOptions::default(),
            pdr: PdrOptions::default(),
            threads: 1,
            latency: None,
            prepass_cycles: 200,
            prepass_seed: DEFAULT_PREPASS_SEED,
            bitsim: true,
            parallel: true,
            deadlock: true,
            escape_cycles: 2,
            trace: TraceConfig::disabled(),
        }
    }
}

impl From<Engine> for SequentialOptions {
    /// Maps an [`Engine`] selection onto sequential options:
    /// [`Engine::Bmc`]'s `k` becomes the k-induction depth bound,
    /// [`Engine::Pdr`] / [`Engine::Portfolio`] select the matching
    /// [`ProofStrategy`], and the combinational engines get the k-induction
    /// default.
    fn from(engine: Engine) -> Self {
        let (strategy, bmc) = match engine {
            Engine::Bmc { k } => (ProofStrategy::KInduction, BmcOptions::with_depth(k)),
            Engine::Pdr => (ProofStrategy::Pdr, BmcOptions::default()),
            Engine::Portfolio => (ProofStrategy::Portfolio, BmcOptions::default()),
            Engine::Bdd | Engine::Sat => (ProofStrategy::KInduction, BmcOptions::default()),
        };
        SequentialOptions {
            strategy,
            bmc,
            ..Default::default()
        }
    }
}

/// Result of a full sequential verification run.
#[derive(Clone, Debug)]
pub struct SequentialReport {
    /// The latency class the properties were checked at.
    pub latency: Latency,
    /// One result per property, in portfolio order. Properties decided by
    /// PDR are folded into the BMC vocabulary (`Proved`'s depth is the PDR
    /// fixpoint frame).
    pub results: Vec<BmcResult>,
    /// Validated inductive-invariant certificates, keyed by property name —
    /// one per property that PDR proved (empty under
    /// [`ProofStrategy::KInduction`], and absent for portfolio properties
    /// the BMC racer won).
    pub certificates: BTreeMap<String, Certificate>,
    /// The static reset-value check.
    pub reset: ResetReport,
    /// Per-stage stall-escape proofs (empty when disabled).
    pub stall_escape: Vec<StallEscapeReport>,
    /// Violations found by the random pre-pass (unsound, informational).
    pub prepass_violations: Vec<DynamicViolation>,
    /// The frozen observability snapshot — profile tree, unified metrics
    /// and the structured event log — when [`SequentialOptions::trace`] was
    /// enabled; `None` otherwise. Render it with `ipcl_trace::report`.
    pub trace: Option<TraceSnapshot>,
}

impl SequentialReport {
    /// Whether the implementation is *proved* sequentially correct: every
    /// property proved by k-induction, reset values right and every stall
    /// escapable. (`Unknown` outcomes count as not proved.)
    pub fn proved(&self) -> bool {
        self.results.iter().all(|r| r.outcome.is_proved())
            && self.reset.ok()
            && self.stall_escape.iter().all(|s| s.escapable)
    }

    /// Whether any property was falsified (a definite bug with a trace).
    pub fn falsified(&self) -> bool {
        self.results.iter().any(|r| r.outcome.is_falsified())
    }

    /// The falsified properties with their counterexamples.
    pub fn counterexamples(&self) -> Vec<&BmcResult> {
        self.results
            .iter()
            .filter(|r| r.outcome.is_falsified())
            .collect()
    }
}

/// Exhaustive sequential verification of a netlist implementation against
/// the specification: BMC falsification + k-induction proof per stage and
/// direction, stall-escape proofs and the reset check, with the random sweep
/// as a prioritising pre-pass. See the module docs.
///
/// Every returned counterexample has been replayed through
/// [`ipcl_rtl::Simulator`] and reproduced its violation (this is asserted
/// internally), so traces can be handed to an RTL debugger as-is.
///
/// # Errors
///
/// [`BmcError::MissingSignals`] when the netlist lacks `moe` outputs,
/// [`BmcError::Rtl`] when it does not elaborate.
pub fn check_netlist_sequential(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    engine: Engine,
) -> Result<SequentialReport, BmcError> {
    check_netlist_sequential_with(spec, netlist, &SequentialOptions::from(engine))
}

/// As [`check_netlist_sequential`], with explicit options.
pub fn check_netlist_sequential_with(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    options: &SequentialOptions,
) -> Result<SequentialReport, BmcError> {
    let missing = ipcl_bmc::missing_moe_signals(spec, netlist);
    if !missing.is_empty() {
        return Err(BmcError::MissingSignals(missing));
    }

    let tracer = Tracer::new(options.trace);
    let run_span = tracer.span("checker.sequential");

    let latency = options
        .latency
        .unwrap_or_else(|| Latency::detect(spec, netlist));

    // Cheap dynamic pre-pass: unsound, but when it finds a violation the
    // corresponding property is almost certainly falsifiable — check those
    // first so (in sequential mode) counterexamples surface early. The
    // random sweep evaluates assertions combinationally (moe and env in the
    // same cycle), so at registered latency its verdicts would be
    // systematically wrong (every correct registered implementation "fails"
    // by one cycle of lag) — skip it there.
    let prepass_violations = if options.prepass_cycles > 0 && latency == Latency::Combinational {
        if options.bitsim {
            // Compiled 64-lane sweep: 64× the scenario coverage per cycle,
            // every lane verdict interpreter-replayed before use.
            let _span = tracer.span("checker.bitsim_prepass");
            let sweep = crate::prepass::random_falsification_bitsim(
                spec,
                netlist,
                options.prepass_cycles,
                options.prepass_seed,
            )
            .map_err(BmcError::Rtl)?;
            if tracer.is_enabled() {
                tracer.event(
                    "bitsim_prepass",
                    &[
                        ("cycles", Value::from(options.prepass_cycles)),
                        ("scenarios", Value::from(sweep.scenarios)),
                        ("violations", Value::from(sweep.violations.len() as u64)),
                        (
                            "counterexamples",
                            Value::from(sweep.counterexamples.len() as u64),
                        ),
                    ],
                );
            }
            sweep.dynamic_violations()
        } else {
            random_falsification(spec, netlist, options.prepass_cycles, options.prepass_seed)
                .map_err(BmcError::Rtl)?
        }
    } else {
        Vec::new()
    };
    let flagged: Vec<(String, bool)> = prepass_violations
        .iter()
        .map(|v| (v.stage.clone(), v.functional))
        .collect();

    let mut properties = SequentialProperty::both_directions(spec, latency);
    properties.sort_by_key(|p| {
        let hit = flagged.iter().any(|(stage, functional)| {
            *stage == p.stage && *functional == matches!(p.kind, ipcl_bmc::PropertyKind::Functional)
        });
        // Flagged properties first.
        !hit
    });

    let checked: Vec<(BmcResult, Option<Certificate>)> = if options.parallel {
        std::thread::scope(|scope| {
            let tracer = &tracer;
            let handles: Vec<_> = properties
                .iter()
                .map(|property| {
                    let opts = *options;
                    scope.spawn(move || check_one_property(spec, netlist, property, &opts, tracer))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("property checker thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?
    } else {
        properties
            .iter()
            .map(|property| check_one_property(spec, netlist, property, options, &tracer))
            .collect::<Result<Vec<_>, _>>()?
    };
    let mut certificates = BTreeMap::new();
    let mut results = Vec::with_capacity(checked.len());
    for (result, certificate) in checked {
        if let Some(certificate) = certificate {
            certificates.insert(result.property.name.clone(), certificate);
        }
        results.push(result);
    }

    // Counterexamples must replay: a trace that does not reproduce through
    // the simulator would mean the CNF encoding diverged from the netlist
    // semantics, which is a checker bug, not a property verdict.
    for result in &results {
        if let BmcOutcome::Falsified(cex) = &result.outcome {
            let _replay_span = tracer.span("checker.replay");
            let replay = cex
                .replay(spec, netlist, &result.property)
                .map_err(BmcError::Rtl)?;
            if tracer.is_enabled() {
                tracer.event(
                    "replay_verdict",
                    &[
                        ("property", Value::from(result.property.name.clone())),
                        ("length", Value::from(cex.length() as u64)),
                        ("reproduced", Value::from(replay.violation_reproduced)),
                    ],
                );
            }
            assert!(
                replay.violation_reproduced,
                "counterexample for {} failed to replay:\n{}",
                result.property.name,
                cex.render()
            );
        }
    }

    let stall_escape = if options.deadlock {
        let _span = tracer.span("checker.stall_escape");
        check_stall_escape(spec, netlist, options.escape_cycles)?
    } else {
        Vec::new()
    };

    drop(run_span);
    Ok(SequentialReport {
        latency,
        results,
        certificates,
        reset: check_reset_values(spec, netlist),
        stall_escape,
        prepass_violations,
        trace: tracer.snapshot(),
    })
}

/// Decides one property with the configured [`ProofStrategy`], folding PDR
/// verdicts into the BMC result vocabulary and returning the certificate
/// when the proof came from PDR.
fn check_one_property(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &SequentialOptions,
    tracer: &Tracer,
) -> Result<(BmcResult, Option<Certificate>), BmcError> {
    check_property_job(spec, netlist, property, options, None, tracer)
}

/// The job-oriented single-property entry point: decides `property` with
/// the configured [`ProofStrategy`], with an optional **cancellation
/// token** the owner can raise at any time — the engines poll it between
/// SAT queries (BMC: per depth; PDR: per obligation; the portfolio
/// forwards it to both racers), so a cancelled job returns promptly with
/// an `Unknown` outcome rather than being killed mid-query.
///
/// This is what a job server (`ipcl-serve`) schedules onto its worker
/// pool: one call per queued (netlist, property) pair, one token per job.
/// [`check_netlist_sequential_with`] is this function mapped over the full
/// property portfolio without a token.
///
/// Returns the folded [`BmcResult`] plus the validated certificate when
/// the proof came from PDR.
///
/// # Errors
///
/// As [`check_netlist_sequential`].
///
/// # Panics
///
/// Like the full checker, on a PDR certificate that fails its independent
/// validation (an engine bug, not a verdict).
pub fn check_property_job(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &SequentialOptions,
    cancel: Option<&std::sync::atomic::AtomicBool>,
    tracer: &Tracer,
) -> Result<(BmcResult, Option<Certificate>), BmcError> {
    match options.strategy {
        ProofStrategy::KInduction => {
            check_property_traced(spec, netlist, property, &options.bmc, cancel, tracer)
                .map(|r| (r, None))
        }
        ProofStrategy::Pdr => {
            let result = if options.threads >= 2 {
                check_property_pdr_parallel_traced(
                    spec,
                    netlist,
                    property,
                    &parallel_options(options),
                    cancel,
                    tracer,
                )?
            } else {
                check_property_pdr_traced(spec, netlist, property, &options.pdr, cancel, tracer)?
            };
            Ok(fold_pdr_result(result))
        }
        ProofStrategy::Portfolio => {
            let result = if options.threads >= 2 {
                check_property_portfolio_parallel_with_cancel(
                    spec,
                    netlist,
                    property,
                    &options.bmc,
                    &parallel_options(options),
                    cancel,
                    tracer,
                )?
            } else {
                check_property_portfolio_with_cancel(
                    spec,
                    netlist,
                    property,
                    &options.bmc,
                    &options.pdr,
                    cancel,
                    tracer,
                )?
            };
            match result.winner {
                Some(PortfolioWinner::Pdr) => Ok(fold_pdr_result(result.pdr)),
                // BMC won — or neither engine was definitive, in which case
                // the BMC result carries the deepest bound checked.
                Some(PortfolioWinner::Bmc) | None => Ok((result.bmc, None)),
            }
        }
    }
}

/// The parallel engine's options under [`SequentialOptions`]: the
/// configured PDR knobs carry over, the worker count comes from
/// [`SequentialOptions::threads`], and the scheduler knobs keep their
/// (worker-count-independent) defaults.
fn parallel_options(options: &SequentialOptions) -> ParallelPdrOptions {
    ParallelPdrOptions {
        base: options.pdr,
        threads: options.threads,
        ..ParallelPdrOptions::default()
    }
}

/// Maps a [`PdrResult`] into the report's [`BmcResult`] vocabulary.
///
/// A PDR proof whose certificate fails the independent validation is an
/// engine bug, not a verdict — like a counterexample that fails to replay,
/// it panics rather than being reported as "proved".
fn fold_pdr_result(result: PdrResult) -> (BmcResult, Option<Certificate>) {
    if let Some(check) = &result.validation {
        assert!(
            check.ok(),
            "certificate for {} failed independent validation ({check}):\n{}",
            result.property.name,
            result
                .outcome
                .certificate()
                .map(|c| c.render())
                .unwrap_or_default()
        );
    }
    let stats = BmcStats {
        depth_reached: result.stats.frames,
        solve_calls: result.stats.solve_calls as usize,
        base_clauses: result.stats.clauses,
        induction_clauses: 0,
        conflicts: result.stats.conflicts,
        propagations: result.stats.propagations,
        last_depth_conflicts: 0,
        last_depth_propagations: 0,
    };
    match result.outcome {
        PdrOutcome::Proved {
            certificate,
            fixpoint_frame,
        } => (
            BmcResult {
                property: result.property,
                outcome: BmcOutcome::Proved {
                    induction_depth: fixpoint_frame,
                },
                stats,
            },
            Some(certificate),
        ),
        PdrOutcome::Falsified(cex) => (
            BmcResult {
                property: result.property,
                outcome: BmcOutcome::Falsified(cex),
                stats,
            },
            None,
        ),
        PdrOutcome::Unknown { frames_explored } => (
            BmcResult {
                property: result.property,
                outcome: BmcOutcome::Unknown {
                    depth_checked: frames_explored,
                },
                stats,
            },
            None,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock, synthesize_interlock_with, SynthesisOptions};

    #[test]
    fn correct_reset_values_pass() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 6);
        assert!(report.ok());
    }

    #[test]
    fn incorrect_reset_values_are_reported() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 6);
        assert_eq!(report.mismatches.len(), 6);
        assert!(report
            .mismatches
            .iter()
            .all(|(_, expected, actual)| *expected && !*actual));
    }

    #[test]
    fn combinational_outputs_are_skipped_by_reset_check() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let report = check_reset_values(&spec, synthesized.netlist());
        assert_eq!(report.examined, 0);
        assert!(report.ok());
    }

    #[test]
    fn random_falsification_is_clean_for_combinational_synthesis() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        let violations = random_falsification(&spec, synthesized.netlist(), 300, 0xF00D).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn random_falsification_catches_wrong_reset_value_at_cycle_zero() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let violations = random_falsification(&spec, synthesized.netlist(), 50, 0xF00D).unwrap();
        // At cycle 0 every stage is stalled although (for most random
        // environments) no stall condition holds: performance violations.
        assert!(violations.iter().any(|v| v.cycle == 0 && !v.functional));
    }

    #[test]
    fn sequential_check_proves_correct_implementations() {
        let spec = ExampleArch::new().functional_spec();
        // Combinational synthesis: proved at combinational latency.
        let combinational = synthesize_interlock(&spec);
        let report =
            check_netlist_sequential(&spec, combinational.netlist(), crate::Engine::Bmc { k: 6 })
                .unwrap();
        assert_eq!(report.latency, Latency::Combinational);
        assert!(report.proved(), "{:?}", report.results);
        assert!(!report.falsified());
        assert!(report.prepass_violations.is_empty());

        // Registered synthesis with correct reset: proved at the
        // auto-detected registered latency.
        let registered = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let report =
            check_netlist_sequential(&spec, registered.netlist(), crate::Engine::Bmc { k: 6 })
                .unwrap();
        assert_eq!(report.latency, Latency::Registered);
        assert!(report.proved(), "{:?}", report.results);
    }

    #[test]
    fn sequential_check_falsifies_wrong_reset_with_replayable_trace() {
        let spec = ExampleArch::new().functional_spec();
        let buggy = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        // Force combinational latency: the wrong-reset stall must answer for
        // the cycle it occurs in.
        let options = SequentialOptions {
            latency: Some(Latency::Combinational),
            ..SequentialOptions::from(crate::Engine::Bmc { k: 4 })
        };
        let report = check_netlist_sequential_with(&spec, buggy.netlist(), &options).unwrap();
        assert!(report.falsified());
        assert!(!report.reset.ok());
        // At least one stage produces the minimal one-cycle trace (stalled
        // out of reset with a quiet environment).
        assert!(report.counterexamples().iter().any(|r| r
            .outcome
            .counterexample()
            .unwrap()
            .length()
            == 1));
    }

    #[test]
    fn pdr_engine_proves_with_certificates() {
        let spec = ExampleArch::new().functional_spec();
        let registered = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let report =
            check_netlist_sequential(&spec, registered.netlist(), crate::Engine::Pdr).unwrap();
        assert_eq!(report.latency, Latency::Registered);
        assert!(report.proved(), "{:?}", report.results);
        // Every proved property carries a certificate (independently
        // validated inside the engine).
        for result in &report.results {
            assert!(
                report.certificates.contains_key(&result.property.name),
                "{} has no certificate",
                result.property.name
            );
        }
    }

    #[test]
    fn pdr_engine_with_worker_threads_agrees_with_single_threaded() {
        let spec = ExampleArch::new().functional_spec();
        let registered = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let single = SequentialOptions::from(crate::Engine::Pdr);
        let threaded = SequentialOptions {
            threads: 4,
            ..single
        };
        let a = check_netlist_sequential_with(&spec, registered.netlist(), &single).unwrap();
        let b = check_netlist_sequential_with(&spec, registered.netlist(), &threaded).unwrap();
        assert!(b.proved(), "{:?}", b.results);
        // Property-by-property verdict agreement, and every parallel proof
        // still ships its (independently validated) certificate.
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.property.name, y.property.name);
            assert_eq!(x.outcome.is_proved(), y.outcome.is_proved());
            assert!(b.certificates.contains_key(&y.property.name));
        }
    }

    #[test]
    fn portfolio_engine_falsifies_wrong_reset_with_replayable_trace() {
        let spec = ExampleArch::new().functional_spec();
        let buggy = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let options = SequentialOptions {
            latency: Some(Latency::Combinational),
            ..SequentialOptions::from(crate::Engine::Portfolio)
        };
        let report = check_netlist_sequential_with(&spec, buggy.netlist(), &options).unwrap();
        // Replayability is asserted inside check_netlist_sequential_with for
        // every counterexample, whichever racer produced it.
        assert!(report.falsified());
        assert!(!report.reset.ok());
    }

    #[test]
    fn prepass_seed_is_explicit_and_deterministic() {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock(&spec);
        assert_eq!(
            SequentialOptions::default().prepass_seed,
            DEFAULT_PREPASS_SEED
        );
        // The same seed reproduces the same sweep; an explicit different
        // seed is honoured (both sweeps are clean on a correct netlist, so
        // equality of violation lists is the observable).
        let a =
            random_falsification(&spec, synthesized.netlist(), 100, DEFAULT_PREPASS_SEED).unwrap();
        let b =
            random_falsification(&spec, synthesized.netlist(), 100, DEFAULT_PREPASS_SEED).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_check_rejects_netlists_without_moe_outputs() {
        let spec = ExampleArch::new().functional_spec();
        let empty = Netlist::new("empty");
        let err = check_netlist_sequential(&spec, &empty, crate::Engine::default()).unwrap_err();
        assert!(matches!(err, BmcError::MissingSignals(ref names) if names.len() == 6));
    }

    #[test]
    fn random_falsification_flags_registered_latency_mismatches() {
        // Registered outputs with the *correct* reset value still lag the
        // environment by one cycle, so a one-cycle-delayed implementation is
        // occasionally caught by the combinational assertions — demonstrating
        // why the paper treats registered implementations via the sequential
        // flow rather than pure combinational checks.
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let violations = random_falsification(&spec, synthesized.netlist(), 400, 0xBEEF).unwrap();
        assert!(!violations.is_empty());
    }
}
