//! Full-stack exercise of the bit-parallel pre-pass: every injected bug
//! class is swept 64-wide, each violating lane extracted into a trace that
//! must replay bit-identically through the interpreted simulator, and the
//! sequential checker reaches the same verdicts with the compiled sweep as
//! with the interpreted one.

use ipcl_checker::{
    check_netlist_sequential_with, random_falsification_bitsim, Engine, Latency, SequentialOptions,
    SequentialProperty,
};
use ipcl_core::example::ExampleArch;
use ipcl_pipesim::BrokenVariant;
use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock};

const VARIANTS: [BrokenVariant; 3] = [
    BrokenVariant::IgnoreScoreboard,
    BrokenVariant::IgnoreCompletionGrant,
    BrokenVariant::BadResetValues { cycles: 2 },
];

#[test]
fn every_broken_variant_yields_interpreter_verified_lane_traces() {
    let spec = ExampleArch::new().functional_spec();
    let properties = SequentialProperty::both_directions(&spec, Latency::Combinational);
    for variant in VARIANTS {
        let broken = synthesize_broken_interlock(&spec, variant);
        let sweep = random_falsification_bitsim(&spec, broken.netlist(), 150, 0x1b3c).unwrap();
        assert!(
            !sweep.violations.is_empty(),
            "{variant:?} survived the 64-lane sweep"
        );
        assert!(!sweep.counterexamples.is_empty(), "{variant:?}");
        for cex in &sweep.counterexamples {
            // The extraction already asserts reproduction; replay again here
            // so the discipline is checked end-to-end from the public API.
            let property = properties
                .iter()
                .find(|p| p.name == cex.property)
                .expect("property portfolio covers every extracted trace");
            let replay = cex.replay(&spec, broken.netlist(), property).unwrap();
            assert!(
                replay.violation_reproduced,
                "{variant:?}: lane trace for {} did not reproduce:\n{}",
                cex.property,
                cex.render()
            );
            assert_eq!(cex.violation_frame, cex.length() - 1);
        }
    }
}

#[test]
fn sequential_checker_verdicts_agree_across_prepass_engines() {
    let spec = ExampleArch::new().functional_spec();
    let correct = synthesize_interlock(&spec);
    let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
    for (netlist, buggy) in [(correct.netlist(), false), (broken.netlist(), true)] {
        let bitsim = SequentialOptions {
            bitsim: true,
            ..SequentialOptions::from(Engine::Bmc { k: 4 })
        };
        let interpreted = SequentialOptions {
            bitsim: false,
            ..bitsim
        };
        let a = check_netlist_sequential_with(&spec, netlist, &bitsim).unwrap();
        let b = check_netlist_sequential_with(&spec, netlist, &interpreted).unwrap();
        assert_eq!(a.falsified(), buggy);
        assert_eq!(b.falsified(), buggy);
        assert_eq!(a.proved(), b.proved());
        // The compiled sweep covers 64 scenarios per cycle, so on a buggy
        // netlist it must flag at least as many property directions as the
        // single-sequence interpreted sweep.
        if buggy {
            let flagged = |report: &ipcl_checker::SequentialReport| {
                report
                    .prepass_violations
                    .iter()
                    .map(|v| (v.stage.clone(), v.functional))
                    .collect::<std::collections::BTreeSet<_>>()
            };
            assert!(flagged(&a).is_superset(&flagged(&b)));
        }
    }
}

#[test]
fn bitsim_prepass_events_surface_in_the_trace() {
    let spec = ExampleArch::new().functional_spec();
    let correct = synthesize_interlock(&spec);
    let options = SequentialOptions {
        trace: ipcl_checker::TraceConfig::enabled(),
        ..SequentialOptions::from(Engine::Bmc { k: 4 })
    };
    let report = check_netlist_sequential_with(&spec, correct.netlist(), &options).unwrap();
    let snapshot = report.trace.expect("tracing was enabled");
    assert!(
        snapshot.events.iter().any(|e| e.kind == "bitsim_prepass"),
        "no bitsim_prepass event in the trace"
    );
}
