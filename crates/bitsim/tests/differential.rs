//! Differential fuzzing of the compiled simulator against the interpreter.
//!
//! The interpreted [`ipcl_rtl::Simulator`] is the oracle: for every
//! generated netlist and input sequence, every lane of every
//! [`BitSimulator`] word must match, cycle by cycle and signal by signal,
//! a scalar interpreter run driven with that lane's bits. Coverage comes
//! from three directions: proptest-generated random netlists, the
//! synthesized interlock designs (correct and every `BrokenVariant`
//! bug-injection), and lane-extracted traces replayed through the
//! interpreter.

use ipcl_bitsim::{BitSimulator, LANES};
use ipcl_core::example::ExampleArch;
use ipcl_pipesim::BrokenVariant;
use ipcl_rtl::{Netlist, SignalId, SignalKind, Simulator};
use ipcl_synth::{
    synthesize_broken_interlock, synthesize_interlock, synthesize_interlock_with, SynthesisOptions,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One randomly drawn combinational gate: an op selector plus raw operand
/// picks, resolved modulo the number of already-built nodes (the generator
/// of `ipcl-serve`'s digest soundness suite, reused for value soundness).
type GateDraw = (u8, u64, u64, u64);

/// Builds a random netlist: `inputs` primary inputs feeding `gates`, a
/// register folding the last gate back in, and an `out` wire ORing both.
fn build_design(inputs: usize, gates: &[GateDraw], register_init: bool) -> Netlist {
    let mut netlist = Netlist::new("generated");
    let mut nodes: Vec<SignalId> = (0..inputs)
        .map(|i| netlist.input(&format!("in{i}")))
        .collect();
    for (j, &(op, a, b, c)) in gates.iter().enumerate() {
        let pick = |raw: u64| nodes[(raw % nodes.len() as u64) as usize];
        let name = format!("g{j}");
        let id = match op % 6 {
            0 => netlist.buf_gate(&name, pick(a)),
            1 => netlist.not_gate(&name, pick(a)),
            2 => netlist.and_gate(&name, [pick(a), pick(b)]),
            3 => netlist.or_gate(&name, [pick(a), pick(b)]),
            4 => netlist.xor_gate(&name, pick(a), pick(b)),
            _ => netlist.mux_gate(&name, pick(a), pick(b), pick(c)),
        };
        nodes.push(id);
    }
    let last = *nodes.last().expect("at least one input");
    let register = netlist.register("state", register_init);
    netlist
        .connect_register(register, last)
        .expect("combinational next");
    let out = netlist.or_gate("out", [register, last]);
    netlist.mark_output(out);
    netlist
}

/// The primary inputs of `netlist`, in id order.
fn primary_inputs(netlist: &Netlist) -> Vec<SignalId> {
    netlist
        .iter()
        .filter(|(_, signal)| matches!(signal.kind, SignalKind::Input))
        .map(|(id, _)| id)
        .collect()
}

/// Drives `words[cycle][input]` into both simulators (word-wide into the
/// compiled one, lane bits into 64 interpreters) and asserts every signal
/// of every lane matches on every cycle.
fn assert_lanes_match(netlist: &Netlist, words: &[Vec<u64>]) {
    let inputs = primary_inputs(netlist);
    let mut bits = BitSimulator::new(netlist).expect("compiles");
    let mut interps: Vec<Simulator> = (0..LANES)
        .map(|_| Simulator::new(netlist).expect("elaborates"))
        .collect();
    for (cycle, frame) in words.iter().enumerate() {
        for (&input, &word) in inputs.iter().zip(frame) {
            bits.set_input_word(input, word);
        }
        for (lane, interp) in interps.iter_mut().enumerate() {
            interp.set_inputs(
                inputs
                    .iter()
                    .zip(frame)
                    .map(|(&input, &word)| (input, (word >> lane) & 1 == 1)),
            );
        }
        for (id, signal) in netlist.iter() {
            let word = bits.value_word(id);
            for (lane, interp) in interps.iter().enumerate() {
                assert_eq!(
                    (word >> lane) & 1 == 1,
                    interp.value(id),
                    "cycle {cycle}, lane {lane}, signal '{}'",
                    signal.name
                );
            }
        }
        bits.step();
        for interp in &mut interps {
            interp.step();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random netlists, random 64-lane stimulus, five cycles: the compiled
    /// words must be bit-identical to 64 independent interpreter runs on
    /// every signal of every cycle.
    #[test]
    fn random_netlists_are_bit_identical_across_all_lanes(
        inputs in 2usize..=4,
        gates in collection::vec((0u8..6, any::<u64>(), any::<u64>(), any::<u64>()), 3..=12),
        register_init in any::<bool>(),
        stimulus in collection::vec(collection::vec(any::<u64>(), 4), 5),
    ) {
        let netlist = build_design(inputs, &gates, register_init);
        let words: Vec<Vec<u64>> = stimulus
            .iter()
            .map(|frame| frame[..inputs].to_vec())
            .collect();
        assert_lanes_match(&netlist, &words);
    }
}

/// Random stimulus words for `netlist`, deterministic in `seed`.
fn random_words(netlist: &Netlist, cycles: usize, seed: u64) -> Vec<Vec<u64>> {
    let inputs = primary_inputs(netlist).len();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cycles)
        .map(|_| (0..inputs).map(|_| rng.next_u64()).collect())
        .collect()
}

/// The full synthesized-interlock matrix: the correct combinational and
/// registered controllers plus every bug-injected variant must simulate
/// bit-identically in all 64 lanes — the compiled engine reproduces the
/// bugs exactly as the oracle sees them, neither masking nor inventing.
#[test]
fn interlock_variant_matrix_is_bit_identical() {
    let spec = ExampleArch::new().functional_spec();
    let mut designs: Vec<Netlist> = vec![
        synthesize_interlock(&spec).netlist().clone(),
        synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        )
        .netlist()
        .clone(),
    ];
    for variant in [
        BrokenVariant::IgnoreScoreboard,
        BrokenVariant::IgnoreCompletionGrant,
        BrokenVariant::BadResetValues { cycles: 2 },
    ] {
        designs.push(
            synthesize_broken_interlock(&spec, variant)
                .netlist()
                .clone(),
        );
    }
    for (i, netlist) in designs.iter().enumerate() {
        let words = random_words(netlist, 8, 0xD1FF ^ i as u64);
        assert_lanes_match(netlist, &words);
    }
}

/// Lane extraction round-trip: record one lane's bits out of a word-driven
/// run, replay them through a fresh interpreter, and require the same
/// values the lane showed — the exact discipline the checker's pre-pass
/// uses to turn a violating lane into a trustworthy counterexample trace.
#[test]
fn extracted_lane_traces_replay_through_the_interpreter() {
    let spec = ExampleArch::new().functional_spec();
    let netlist = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard)
        .netlist()
        .clone();
    let inputs = primary_inputs(&netlist);
    let words = random_words(&netlist, 10, 0x7AC3);

    // Word-driven run, recording every lane's view of every output.
    let mut bits = BitSimulator::new(&netlist).expect("compiles");
    let mut observed: Vec<Vec<u64>> = Vec::new(); // per cycle, per signal
    let signals: Vec<SignalId> = netlist.iter().map(|(id, _)| id).collect();
    for frame in &words {
        for (&input, &word) in inputs.iter().zip(frame) {
            bits.set_input_word(input, word);
        }
        observed.push(signals.iter().map(|&id| bits.value_word(id)).collect());
        bits.step();
    }

    // Extract a handful of lanes and replay each as a scalar trace.
    for lane in [0usize, 17, 63] {
        let mut interp = Simulator::new(&netlist).expect("elaborates");
        for (cycle, frame) in words.iter().enumerate() {
            interp.set_inputs(
                inputs
                    .iter()
                    .zip(frame)
                    .map(|(&input, &word)| (input, (word >> lane) & 1 == 1)),
            );
            for (slot, &id) in signals.iter().enumerate() {
                assert_eq!(
                    (observed[cycle][slot] >> lane) & 1 == 1,
                    interp.value(id),
                    "lane {lane}, cycle {cycle}, signal '{}'",
                    netlist.signal(id).name
                );
            }
            interp.step();
        }
    }
}

/// Per-lane reset must leave a masked lane exactly where a fresh scalar
/// simulator starts, while unmasked lanes keep their trajectory.
#[test]
fn per_lane_reset_matches_a_fresh_interpreter() {
    let spec = ExampleArch::new().functional_spec();
    let netlist = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    )
    .netlist()
    .clone();
    let inputs = primary_inputs(&netlist);
    let words = random_words(&netlist, 4, 0x5EAF);

    let mut bits = BitSimulator::new(&netlist).expect("compiles");
    for frame in &words {
        for (&input, &word) in inputs.iter().zip(frame) {
            bits.set_input_word(input, word);
        }
        bits.step();
    }
    // Retire lane 5: back to reset state with cleared inputs.
    bits.reset_lanes(1 << 5);
    let fresh = Simulator::new(&netlist).expect("elaborates");
    for (id, signal) in netlist.iter() {
        assert_eq!(
            bits.value_lane(id, 5),
            fresh.value(id),
            "lane 5 after reset_lanes, signal '{}'",
            signal.name
        );
    }
}
