//! Compiled bit-parallel netlist simulation: 64 scenarios per instruction.
//!
//! The interpreted [`ipcl_rtl::Simulator`] walks the gate graph once per
//! evaluated scenario — fine as a differential oracle, far too slow as a
//! fuzzing front end. This crate compiles an elaborated [`Netlist`] into a
//! *levelized straight-line program* ([`Program`]): one instruction per
//! gate, emitted in topological order, operating on packed `u64` words
//! where bit `i` of every word is scenario `i`'s value of that signal. One
//! pass over the instruction stream therefore advances **64 independent
//! scenarios** — the classic emulation-engine move of compiling a circuit
//! into an instruction stream, with the SIMD width of an ordinary machine
//! word.
//!
//! [`BitSimulator`] wraps a program with the two-phase step semantics of
//! the interpreter (combinational settle, simultaneous double-buffered
//! register update), per-lane reset ([`BitSimulator::reset_lanes`]),
//! per-lane input injection and per-lane output extraction, so a sweep
//! driver can retire and restart scenarios lane by lane.
//!
//! **Oracle discipline.** The interpreter stays authoritative: every
//! consumer of bit-parallel verdicts (the checker's falsification
//! pre-pass, the serve batch fuzzer) extracts the violating lane into a
//! standard counterexample and replays it gate-by-gate through
//! [`ipcl_rtl::Simulator`] before reporting anything. The differential
//! test suite (`tests/differential.rs`) additionally asserts bit-identical
//! per-cycle values across all 64 lanes on random netlists and the full
//! bug-injection matrix.
//!
//! # Example
//!
//! ```
//! use ipcl_bitsim::BitSimulator;
//! use ipcl_rtl::Netlist;
//!
//! let mut netlist = Netlist::new("toggler");
//! let toggle = netlist.register("toggle", false);
//! let inverted = netlist.not_gate("next_toggle", toggle);
//! netlist.connect_register(toggle, inverted)?;
//!
//! let mut sim = BitSimulator::new(&netlist)?;
//! assert_eq!(sim.value_word(toggle), 0);        // all 64 lanes low
//! sim.step();
//! assert_eq!(sim.value_word(toggle), u64::MAX); // all 64 lanes high
//! # Ok::<(), ipcl_rtl::RtlError>(())
//! ```

pub mod program;
pub mod sim;
pub mod words;

pub use program::{broadcast, Instr, Op, Program, RegSlot, LANES};
pub use sim::BitSimulator;
pub use words::eval_expr_word;
