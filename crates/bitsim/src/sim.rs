//! The 64-lane simulator executing a compiled [`Program`].

use ipcl_rtl::{Netlist, RtlError, SignalId, SignalKind};

use crate::program::{Program, LANES};

/// A bit-parallel cycle-accurate simulator: 64 independent scenarios of one
/// [`Netlist`], one per lane of every `u64` word.
///
/// Step semantics match [`ipcl_rtl::Simulator`] lane for lane:
///
/// 1. combinational wires settle given the current input and register
///    words (one execution of the compiled program),
/// 2. every register samples its next-state word simultaneously
///    (double-buffered),
/// 3. the cycle counter advances, and the network settles for the new
///    state.
///
/// Input words keep their value until changed. Unlike the interpreter,
/// driving inputs is *deferred*: [`BitSimulator::set_input_word`] marks the
/// network stale and the next [`BitSimulator::settle`] / read / step pays
/// for exactly one program execution however many inputs changed.
#[derive(Clone, Debug)]
pub struct BitSimulator {
    netlist: Netlist,
    program: Program,
    values: Vec<u64>,
    sampled: Vec<u64>,
    cycle: u64,
    stale: bool,
}

impl BitSimulator {
    /// Compiles `netlist` and resets all 64 lanes.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from [`Netlist::elaborate`] (unconnected
    /// registers, combinational cycles).
    pub fn new(netlist: &Netlist) -> Result<BitSimulator, RtlError> {
        let program = Program::compile(netlist)?;
        let values = vec![0u64; program.slots()];
        let sampled = vec![0u64; program.regs().len()];
        let mut sim = BitSimulator {
            netlist: netlist.clone(),
            program,
            values,
            sampled,
            cycle: 0,
            stale: false,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The number of completed cycles since construction or the last full
    /// [`BitSimulator::reset`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Applies the synchronous reset to **all** lanes: registers take their
    /// init values, inputs clear to zero, the network settles and the cycle
    /// counter returns to zero.
    pub fn reset(&mut self) {
        self.reset_lanes(u64::MAX);
        self.cycle = 0;
    }

    /// Applies the synchronous reset to the lanes selected by `mask`,
    /// leaving the other lanes' state untouched — the per-lane restart a
    /// fuzzing driver uses to retire a finished scenario and start a fresh
    /// one in its lane without disturbing its 63 neighbours.
    ///
    /// The global cycle counter is *not* changed (lane-local time is the
    /// driver's bookkeeping); [`BitSimulator::reset`] is the full-machine
    /// reset that also rewinds it.
    pub fn reset_lanes(&mut self, mask: u64) {
        for reg in self.program.regs() {
            let slot = reg.slot as usize;
            self.values[slot] = (self.values[slot] & !mask) | (reg.init & mask);
        }
        for &input in self.program.inputs() {
            self.values[input as usize] &= !mask;
        }
        self.settle();
    }

    /// Drives a primary input in all 64 lanes at once: bit `i` of `word`
    /// becomes lane `i`'s value. The change is visible after the next
    /// [`BitSimulator::settle`] (or read / [`BitSimulator::step`], which
    /// settle on demand).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary input of the netlist.
    pub fn set_input_word(&mut self, input: SignalId, word: u64) {
        assert!(
            matches!(self.netlist.signal(input).kind, SignalKind::Input),
            "signal '{}' is not a primary input",
            self.netlist.signal(input).name
        );
        self.values[input.index()] = word;
        self.stale = true;
    }

    /// Drives a primary input in one lane, leaving the other lanes alone.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary input or `lane >= 64`.
    pub fn set_input_lane(&mut self, input: SignalId, lane: usize, value: bool) {
        assert!(lane < LANES, "lane {lane} out of range");
        let word = self.input_word(input, lane, value);
        self.set_input_word(input, word);
    }

    fn input_word(&self, input: SignalId, lane: usize, value: bool) -> u64 {
        let current = self.values[input.index()];
        if value {
            current | (1 << lane)
        } else {
            current & !(1 << lane)
        }
    }

    /// Re-executes the compiled program if any input changed since the last
    /// settle. Reads and [`BitSimulator::step`] call this implicitly; it is
    /// public so drivers can place the (single) settle explicitly after a
    /// batch of input writes.
    pub fn settle(&mut self) {
        self.program.execute(&mut self.values);
        self.stale = false;
    }

    fn settle_if_stale(&mut self) {
        if self.stale {
            self.settle();
        }
    }

    /// Current word of any signal: bit `i` is lane `i`'s value.
    pub fn value_word(&mut self, signal: SignalId) -> u64 {
        self.settle_if_stale();
        self.values[signal.index()]
    }

    /// Current value of a signal in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn value_lane(&mut self, signal: SignalId, lane: usize) -> bool {
        assert!(lane < LANES, "lane {lane} out of range");
        (self.value_word(signal) >> lane) & 1 == 1
    }

    /// Current word of a signal looked up by name.
    pub fn value_word_by_name(&mut self, name: &str) -> Option<u64> {
        self.netlist.find(name).map(|id| self.value_word(id))
    }

    /// Advances one clock cycle in all 64 lanes: settle (if stale),
    /// simultaneous register update, settle for the new state.
    pub fn step(&mut self) {
        self.settle_if_stale();
        // Sample every register's next word before updating any register —
        // the double buffer that realises the two-phase semantics.
        for (buffer, reg) in self.sampled.iter_mut().zip(self.program.regs()) {
            *buffer = self.values[reg.next as usize];
        }
        for (buffer, reg) in self.sampled.iter().zip(self.program.regs()) {
            self.values[reg.slot as usize] = *buffer;
        }
        self.cycle += 1;
        self.settle();
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::broadcast;
    use ipcl_rtl::Simulator;

    #[test]
    fn lanes_are_independent() {
        // A 3-stage shift chain: drive a different pattern into each lane
        // and watch the words march through undisturbed.
        let mut n = Netlist::new("chain");
        let input = n.input("in");
        let s1 = n.register("s1", false);
        let s2 = n.register("s2", false);
        n.connect_register(s1, input).unwrap();
        n.connect_register(s2, s1).unwrap();
        let mut sim = BitSimulator::new(&n).unwrap();
        sim.set_input_word(input, 0xDEAD_BEEF_0123_4567);
        sim.step();
        sim.set_input_word(input, 0);
        sim.step();
        assert_eq!(sim.value_word(s2), 0xDEAD_BEEF_0123_4567);
        assert_eq!(sim.value_word(s1), 0);
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn broadcast_matches_the_interpreter_on_a_counter() {
        let mut n = Netlist::new("counter2");
        let bit0 = n.register("bit0", false);
        let bit1 = n.register("bit1", false);
        let next0 = n.not_gate("next0", bit0);
        let next1 = n.xor_gate("next1", bit1, bit0);
        n.connect_register(bit0, next0).unwrap();
        n.connect_register(bit1, next1).unwrap();
        let mut bits = BitSimulator::new(&n).unwrap();
        let mut interp = Simulator::new(&n).unwrap();
        for _ in 0..6 {
            assert_eq!(bits.value_word(bit0), broadcast(interp.value(bit0)));
            assert_eq!(bits.value_word(bit1), broadcast(interp.value(bit1)));
            bits.step();
            interp.step();
        }
    }

    #[test]
    fn per_lane_reset_restarts_only_masked_lanes() {
        let mut n = Netlist::new("toggler");
        let toggle = n.register("toggle", false);
        let inverted = n.not_gate("next", toggle);
        n.connect_register(toggle, inverted).unwrap();
        let mut sim = BitSimulator::new(&n).unwrap();
        sim.step();
        assert_eq!(sim.value_word(toggle), u64::MAX);
        // Reset the even lanes only: they return to 0 while the odd lanes
        // keep toggling.
        let evens = 0x5555_5555_5555_5555;
        sim.reset_lanes(evens);
        assert_eq!(sim.value_word(toggle), !evens);
        sim.step();
        assert_eq!(sim.value_word(toggle), evens);
    }

    #[test]
    fn per_lane_input_injection() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and_gate("and", [a, b]);
        let mut sim = BitSimulator::new(&n).unwrap();
        sim.set_input_word(a, u64::MAX);
        sim.set_input_lane(b, 3, true);
        sim.set_input_lane(b, 17, true);
        assert_eq!(sim.value_word(and), (1 << 3) | (1 << 17));
        assert!(sim.value_lane(and, 3));
        assert!(!sim.value_lane(and, 4));
        sim.set_input_lane(b, 3, false);
        assert_eq!(sim.value_word_by_name("and"), Some(1 << 17));
        assert_eq!(sim.value_word_by_name("missing"), None);
    }

    #[test]
    fn deferred_settle_is_one_execution_per_batch() {
        // Observable contract: reads after a batch of writes see the fully
        // settled network, exactly as the interpreter's eager settles.
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let ab = n.and_gate("ab", [a, b]);
        let abc = n.or_gate("abc", [ab, c]);
        let mut sim = BitSimulator::new(&n).unwrap();
        sim.set_input_word(a, 0b01);
        sim.set_input_word(b, 0b11);
        sim.set_input_word(c, 0b10);
        assert_eq!(sim.value_word(abc), 0b11);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn driving_a_wire_panics() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let w = n.not_gate("w", a);
        let mut sim = BitSimulator::new(&n).unwrap();
        sim.set_input_word(w, 1);
    }
}
