//! Compilation of a [`Netlist`] into a levelized straight-line program.
//!
//! [`Program::compile`] walks the topological wire order produced by
//! [`Netlist::elaborate`] and emits exactly one instruction per gate. An
//! instruction operates on packed `u64` *words* — bit `i` of every word is
//! lane `i`'s value of that signal — so a single pass over the instruction
//! stream advances 64 independent scenarios at once. All the per-gate
//! dispatch the interpreter pays at every evaluation (signal-kind matches,
//! operand-vector walks, name lookups) is paid once here, at compile time;
//! execution is a tight loop over flat arrays of pre-resolved slot indices.

use ipcl_rtl::{Gate, Netlist, RtlError, SignalId, SignalKind};

/// Number of independent scenarios one program execution advances: the
/// lanes of a `u64` word.
pub const LANES: usize = 64;

/// A word with the same boolean value in every lane.
#[inline]
pub fn broadcast(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// One compiled gate. Operand fields are value-array slots (signal
/// indices); variadic gates reference a range of the program's operand
/// pool. AND/OR gates with 0–2 operands are strength-reduced at compile
/// time to constants, buffers or the two-operand forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Constant driver (pre-broadcast to all lanes).
    Const(u64),
    /// Buffer (identity).
    Buf(u32),
    /// Inverter.
    Not(u32),
    /// Two-input AND.
    And2(u32, u32),
    /// Two-input OR.
    Or2(u32, u32),
    /// N-ary AND over `operands[start..start + len]`.
    AndN { start: u32, len: u32 },
    /// N-ary OR over `operands[start..start + len]`.
    OrN { start: u32, len: u32 },
    /// Two-input XOR.
    Xor(u32, u32),
    /// Multiplexer: per lane, `sel ? high : low`.
    Mux { sel: u32, high: u32, low: u32 },
}

/// One instruction: evaluate [`Instr::op`] and store the word into
/// [`Instr::dst`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instr {
    /// Destination value-array slot.
    pub dst: u32,
    /// The operation.
    pub op: Op,
}

/// A register's compiled double-buffer wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegSlot {
    /// Value-array slot of the register output.
    pub slot: u32,
    /// Value-array slot of the sampled next-state signal.
    pub next: u32,
    /// Reset value, broadcast to all lanes.
    pub init: u64,
}

/// A compiled netlist: the levelized instruction stream plus the register
/// and input tables the simulator needs for the two-phase step.
#[derive(Clone, Debug)]
pub struct Program {
    instrs: Vec<Instr>,
    operands: Vec<u32>,
    regs: Vec<RegSlot>,
    inputs: Vec<u32>,
    slots: usize,
}

impl Program {
    /// Compiles `netlist` into straight-line levelized code.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from [`Netlist::elaborate`] (unconnected
    /// registers, combinational cycles).
    pub fn compile(netlist: &Netlist) -> Result<Program, RtlError> {
        let eval_order = netlist.elaborate()?;
        let mut instrs = Vec::with_capacity(eval_order.len());
        let mut operands = Vec::new();
        for id in eval_order {
            let SignalKind::Wire(gate) = &netlist.signal(id).kind else {
                continue;
            };
            let dst = id.index() as u32;
            let op = match gate {
                Gate::Const(b) => Op::Const(broadcast(*b)),
                Gate::Buf(a) => Op::Buf(a.index() as u32),
                Gate::Not(a) => Op::Not(a.index() as u32),
                Gate::And(ops) => variadic(ops, &mut operands, true),
                Gate::Or(ops) => variadic(ops, &mut operands, false),
                Gate::Xor(a, b) => Op::Xor(a.index() as u32, b.index() as u32),
                Gate::Mux { sel, high, low } => Op::Mux {
                    sel: sel.index() as u32,
                    high: high.index() as u32,
                    low: low.index() as u32,
                },
            };
            instrs.push(Instr { dst, op });
        }
        let mut regs = Vec::new();
        let mut inputs = Vec::new();
        for (id, signal) in netlist.iter() {
            match &signal.kind {
                SignalKind::Register { init, next } => regs.push(RegSlot {
                    slot: id.index() as u32,
                    next: next.expect("elaborate checked connections").index() as u32,
                    init: broadcast(*init),
                }),
                SignalKind::Input => inputs.push(id.index() as u32),
                SignalKind::Wire(_) => {}
            }
        }
        Ok(Program {
            instrs,
            operands,
            regs,
            inputs,
            slots: netlist.len(),
        })
    }

    /// Number of value-array slots (one per netlist signal).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The compiled instruction stream, in evaluation order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The register table.
    pub fn regs(&self) -> &[RegSlot] {
        &self.regs
    }

    /// Value-array slots of the primary inputs.
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Executes the instruction stream over `values` (the combinational
    /// settle): after this call every wire slot holds its gate's function
    /// of the current input and register words, in all 64 lanes at once.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than [`Program::slots`].
    pub fn execute(&self, values: &mut [u64]) {
        assert!(values.len() >= self.slots, "value array too short");
        for instr in &self.instrs {
            let word = match instr.op {
                Op::Const(word) => word,
                Op::Buf(a) => values[a as usize],
                Op::Not(a) => !values[a as usize],
                Op::And2(a, b) => values[a as usize] & values[b as usize],
                Op::Or2(a, b) => values[a as usize] | values[b as usize],
                Op::AndN { start, len } => self.operands[start as usize..(start + len) as usize]
                    .iter()
                    .fold(u64::MAX, |acc, &s| acc & values[s as usize]),
                Op::OrN { start, len } => self.operands[start as usize..(start + len) as usize]
                    .iter()
                    .fold(0u64, |acc, &s| acc | values[s as usize]),
                Op::Xor(a, b) => values[a as usize] ^ values[b as usize],
                Op::Mux { sel, high, low } => {
                    let sel = values[sel as usize];
                    (sel & values[high as usize]) | (!sel & values[low as usize])
                }
            };
            values[instr.dst as usize] = word;
        }
    }
}

/// Strength-reduces an N-ary AND/OR at compile time: empty gates become
/// their identity constant, single operands a buffer, pairs the two-input
/// form; only genuinely variadic gates go through the operand pool.
fn variadic(ops: &[SignalId], pool: &mut Vec<u32>, is_and: bool) -> Op {
    match ops {
        [] => Op::Const(broadcast(is_and)),
        [a] => Op::Buf(a.index() as u32),
        [a, b] => {
            let (a, b) = (a.index() as u32, b.index() as u32);
            if is_and {
                Op::And2(a, b)
            } else {
                Op::Or2(a, b)
            }
        }
        many => {
            let start = pool.len() as u32;
            let len = many.len() as u32;
            pool.extend(many.iter().map(|s| s.index() as u32));
            if is_and {
                Op::AndN { start, len }
            } else {
                Op::OrN { start, len }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_strength_reduces_small_variadics() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let empty_and = n.and_gate("t", []);
        let empty_or = n.or_gate("f", []);
        let single = n.and_gate("single", [a]);
        let pair = n.or_gate("pair", [a, b]);
        let triple = n.and_gate("triple", [a, b, c]);
        let program = Program::compile(&n).unwrap();
        let op_of = |id: SignalId| {
            program
                .instrs()
                .iter()
                .find(|i| i.dst == id.index() as u32)
                .expect("one instruction per wire")
                .op
        };
        assert_eq!(op_of(empty_and), Op::Const(u64::MAX));
        assert_eq!(op_of(empty_or), Op::Const(0));
        assert_eq!(op_of(single), Op::Buf(a.index() as u32));
        assert_eq!(op_of(pair), Op::Or2(a.index() as u32, b.index() as u32));
        assert!(matches!(op_of(triple), Op::AndN { len: 3, .. }));
    }

    #[test]
    fn compile_rejects_unelaboratable_netlists() {
        let mut n = Netlist::new("m");
        let _ = n.register("r", false);
        assert!(matches!(
            Program::compile(&n),
            Err(RtlError::UnconnectedRegister(_))
        ));
    }

    #[test]
    fn execute_is_levelized() {
        // not(and(a, b)) requires the AND word before the NOT word.
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and_gate("and", [a, b]);
        let not = n.not_gate("not", and);
        let program = Program::compile(&n).unwrap();
        let mut values = vec![0u64; program.slots()];
        values[a.index()] = 0b1100;
        values[b.index()] = 0b1010;
        program.execute(&mut values);
        assert_eq!(values[and.index()], 0b1000);
        assert_eq!(values[not.index()], !0b1000u64);
    }
}
