//! Bit-parallel evaluation of boolean expressions over `u64` words.
//!
//! The sweep drivers (the checker's bit-parallel falsification pre-pass,
//! the serve batch fuzzer) evaluate specification expressions — stall
//! conditions, sequential properties — against simulator words: every
//! variable is looked up as a 64-lane word and the connectives apply
//! bitwise, so one evaluation decides the expression in all 64 scenarios.

use ipcl_expr::{Expr, VarId};

use crate::program::broadcast;

/// Evaluates `expr` over 64 lanes at once: `lookup` supplies each
/// variable's word, and bit `i` of the result is the expression's value
/// under lane `i`'s valuation — bit-for-bit what 64 calls of
/// [`ipcl_expr::Expr::eval_with`] would produce.
pub fn eval_expr_word<F: Fn(VarId) -> u64 + Copy>(expr: &Expr, lookup: F) -> u64 {
    match expr {
        Expr::Const(b) => broadcast(*b),
        Expr::Var(var) => lookup(*var),
        Expr::Not(e) => !eval_expr_word(e, lookup),
        Expr::And(ops) => ops
            .iter()
            .fold(u64::MAX, |acc, e| acc & eval_expr_word(e, lookup)),
        Expr::Or(ops) => ops
            .iter()
            .fold(0u64, |acc, e| acc | eval_expr_word(e, lookup)),
        Expr::Implies(lhs, rhs) => !eval_expr_word(lhs, lookup) | eval_expr_word(rhs, lookup),
        Expr::Iff(lhs, rhs) => !(eval_expr_word(lhs, lookup) ^ eval_expr_word(rhs, lookup)),
        Expr::Xor(lhs, rhs) => eval_expr_word(lhs, lookup) ^ eval_expr_word(rhs, lookup),
        Expr::Ite(cond, then, els) => {
            let cond = eval_expr_word(cond, lookup);
            (cond & eval_expr_word(then, lookup)) | (!cond & eval_expr_word(els, lookup))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::VarPool;

    #[test]
    fn word_eval_matches_scalar_eval_lane_by_lane() {
        let mut pool = VarPool::new();
        let a = pool.var("a");
        let b = pool.var("b");
        let c = pool.var("c");
        let exprs = [
            Expr::implies(
                Expr::and([Expr::var(a), Expr::var(b)]),
                Expr::not(Expr::var(c)),
            ),
            Expr::iff(Expr::var(a), Expr::or([Expr::var(b), Expr::var(c)])),
            Expr::xor(
                Expr::var(a),
                Expr::ite(Expr::var(b), Expr::var(c), Expr::TRUE),
            ),
            Expr::and([]),
            Expr::or([]),
        ];
        let words = [
            (a, 0xF0F0_1234_5678_9ABC_u64),
            (b, 0xCC33_AA55_00FF_1357),
            (c, 0x0123_4567_89AB_CDEF),
        ];
        let word_of = |v: VarId| {
            words
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, x)| *x)
                .unwrap_or(0)
        };
        for expr in &exprs {
            let word = eval_expr_word(expr, word_of);
            for lane in 0..64 {
                let scalar = expr.eval_with(|v| (word_of(v) >> lane) & 1 == 1);
                assert_eq!(
                    (word >> lane) & 1 == 1,
                    scalar,
                    "lane {lane} of {expr:?} diverged"
                );
            }
        }
    }
}
