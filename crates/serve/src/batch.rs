//! Batch submission: amortising one encoding across properties that share
//! a design.
//!
//! A `submit_batch` request carries many jobs. Jobs over the same problem
//! structure — grouped by the structural digest of the netlist pinned on
//! the *union* of the group's property variables, so grouping follows the
//! shared cone of influence rather than textual identity — are attacked
//! together with a single reset-rooted [`FrameEncoder`] and one incremental
//! SAT solver: every property contributes one assumption literal per frame,
//! and the transition-relation clauses (the bulk of the CNF) are encoded
//! once instead of once per job. This bounded sweep settles the cheap
//! outcomes:
//!
//! * **cache hits** are served exactly as on the single-job path
//!   (revalidated, never trusted);
//! * **shallowly falsifiable properties** are caught even before the
//!   solver: a compiled 64-lane fuzz sweep (`ipcl-bitsim`) drives 64
//!   random scenarios per step through the shared netlist and evaluates
//!   every surviving property word-wide — each violating lane is extracted
//!   into a trace and replayed against *its own job's* netlist before
//!   being served, so the fuzz stage can save SAT queries but never
//!   corrupt a verdict;
//! * **falsifiable properties** the fuzz missed get their counterexample
//!   from the shared unrolling — decoded, replay-checked and cached like
//!   any engine result;
//! * everything else (the properties that need a real proof) is handed to
//!   the worker pool as ordinary queued jobs.
//!
//! The sweep runs on the submitting connection's thread, bounded by the
//! server's `batch_depth`, so a batch of mostly-buggy or mostly-cached
//! properties answers without ever occupying a worker.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ipcl_bitsim::{eval_expr_word, BitSimulator, LANES};
use ipcl_bmc::{Counterexample, FrameEncoder, SequentialProperty, SolverSync};
use ipcl_expr::VarId;
use ipcl_rtl::{structural_digest, InitialState, SignalId, SignalKind};
use ipcl_sat::{SatResult, Solver, SolverConfig};
use ipcl_trace::{MetricSink, Tracer, Value};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::cache::{cache_key, revalidate, ProofCache};
use crate::pool::process_job;
use crate::protocol::{JobOutcome, JobRequest, Verdict};

/// The split a batch pre-solve produces: per input index, either a finished
/// outcome or a leftover for the queue.
pub struct BatchResolution {
    /// `(input index, outcome)` for jobs settled by cache or the shared
    /// sweep.
    pub resolved: Vec<(usize, JobOutcome)>,
    /// Input indices that still need a full engine run.
    pub unresolved: Vec<usize>,
}

/// Pre-solves `jobs` as described in the module docs. `depth` bounds the
/// shared falsification sweep (frames beyond each property's first
/// instance); `0` only serves cache hits.
pub fn presolve_batch(
    jobs: &[Arc<JobRequest>],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
) -> BatchResolution {
    let mut resolved = Vec::new();
    let mut unresolved = Vec::new();

    // Group indices by shared cone: same netlist structure under the
    // union-interface digest. Properties of one group can share an
    // unrolling; the group representative's spec provides the encoding
    // vocabulary (identical digests from differently-built payloads are
    // caught by the per-job property resolution below).
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        let interface: Vec<String> = {
            let pool = job.spec.pool();
            let mut vars = BTreeSet::new();
            for stage in job.spec.stages() {
                vars.insert(stage.moe);
                for rule in &stage.rules {
                    rule.condition.collect_vars(&mut vars);
                }
            }
            vars.into_iter().map(|v| pool.name_or_fallback(v)).collect()
        };
        let digest = structural_digest(&job.netlist, &interface);
        match groups.iter_mut().find(|(key, _)| *key == digest) {
            Some((_, members)) => members.push(index),
            None => groups.push((digest, vec![index])),
        }
    }

    for (_, members) in groups {
        presolve_group(
            jobs,
            &members,
            depth,
            cache,
            tracer,
            &mut resolved,
            &mut unresolved,
        );
    }
    tracer.event(
        "serve.batch_presolved",
        &[
            ("jobs", Value::U64(jobs.len() as u64)),
            ("resolved", Value::U64(resolved.len() as u64)),
        ],
    );
    resolved.sort_by_key(|(index, _)| *index);
    unresolved.sort_unstable();
    BatchResolution {
        resolved,
        unresolved,
    }
}

fn presolve_group(
    jobs: &[Arc<JobRequest>],
    members: &[usize],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
    resolved: &mut Vec<(usize, JobOutcome)>,
    unresolved: &mut Vec<usize>,
) {
    let representative = &jobs[members[0]];

    // Pass 1: cache hits (and malformed property selectors, settled as
    // errors immediately).
    let mut sweep: Vec<(usize, SequentialProperty)> = Vec::new();
    for &index in members {
        let job = &jobs[index];
        let property = match job.resolve_property() {
            Ok(property) => property,
            Err(message) => {
                resolved.push((index, JobOutcome::error("", message)));
                continue;
            }
        };
        let key = cache_key(&job.spec, &job.netlist, &property);
        if let Some(stored) = cache.load(&key) {
            if stored.property == property.name
                && revalidate(&stored, &job.spec, &job.netlist, &property)
            {
                cache.record_hit();
                tracer.counter("serve.cache.hits", 1);
                let mut served = stored;
                served.cached = true;
                resolved.push((index, served));
                continue;
            }
            cache.record_revalidation_failure();
        }
        sweep.push((index, property));
    }

    // Pass 2: the compiled 64-lane fuzz sweep — 64 random scenarios per
    // step, word-wide property evaluation, lane traces replay-verified
    // against each member's own job. Whatever it settles never reaches the
    // solver.
    let mut settled = vec![false; sweep.len()];
    if depth > 0 && !sweep.is_empty() {
        fuzz_group(
            jobs,
            representative,
            &sweep,
            &mut settled,
            depth,
            cache,
            tracer,
            resolved,
        );
    }

    // Pass 3: the shared bounded falsification sweep over one encoder and
    // one incremental solver. Encoded against the representative's spec and
    // netlist — members share the structural digest, and each trace is
    // replay-verified against its own job before being served, so a
    // colliding-but-different member can cost a wasted query, never a wrong
    // verdict.
    if depth > 0 && !sweep.is_empty() {
        if let Ok(mut enc) = FrameEncoder::new(&representative.netlist, InitialState::Reset, 0) {
            let moe_vars: BTreeSet<_> = representative.spec.moe_vars().into_iter().collect();
            let mut solver = Solver::with_config(0, SolverConfig::default());
            let mut sync = SolverSync::default();
            for frame in 0..depth {
                enc.ensure_frames(frame + 1);
                for (slot, (index, property)) in sweep.iter().enumerate() {
                    if settled[slot] || frame < property.latency.first_instance() {
                        continue;
                    }
                    let bad = enc
                        .encode_instance(&representative.spec, &moe_vars, property, frame)
                        .negated();
                    sync.sync(&enc, &mut solver);
                    if let SatResult::Sat(model) = solver.solve_under_assumptions(&[bad]) {
                        let frames = enc.decode_trace(&representative.spec, &model, frame + 1);
                        let counterexample = Counterexample {
                            property: property.name.clone(),
                            frames,
                            violation_frame: frame,
                        };
                        let job = &jobs[*index];
                        let reproduced = counterexample
                            .replay(&job.spec, &job.netlist, property)
                            .map(|replay| replay.violation_reproduced)
                            .unwrap_or(false);
                        if reproduced {
                            let outcome = JobOutcome {
                                property: property.name.clone(),
                                verdict: Verdict::Falsified,
                                detail: format!("trace_frames={}", counterexample.length()),
                                cached: false,
                                certificate: None,
                                counterexample: Some(counterexample),
                            };
                            cache.record_miss();
                            tracer.counter("serve.cache.misses", 1);
                            cache.store(&cache_key(&job.spec, &job.netlist, property), &outcome);
                            resolved.push((*index, outcome));
                            settled[slot] = true;
                        }
                    }
                }
            }
        }
    }
    for (slot, (index, _)) in sweep.iter().enumerate() {
        if !settled[slot] {
            unresolved.push(*index);
        }
    }
}

/// Deterministic seed of the batch fuzz sweep (the stage is a pure
/// accelerator, so reproducible runs matter more than stimulus variety).
const BATCH_FUZZ_SEED: u64 = 0xB175_1B3C;

/// The bit-parallel shallow-falsification stage of a group pre-solve:
/// drives `depth` steps of 64 independent random environment scenarios
/// through a compiled simulator of the group representative's netlist and
/// evaluates every unsettled property word-wide each frame (environment
/// sampled at the property's latency offset, `moe` signals live — exactly
/// the [`Counterexample::replay`] discipline). A violating lane's input
/// history becomes a candidate trace; it is served only if it replays
/// against the member's own job, and marked settled in `settled`.
#[allow(clippy::too_many_arguments)]
fn fuzz_group(
    jobs: &[Arc<JobRequest>],
    representative: &Arc<JobRequest>,
    sweep: &[(usize, SequentialProperty)],
    settled: &mut [bool],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
    resolved: &mut Vec<(usize, JobOutcome)>,
) {
    let Ok(mut sim) = BitSimulator::new(&representative.netlist) else {
        return;
    };
    let mut rng = StdRng::seed_from_u64(BATCH_FUZZ_SEED);
    let pool = representative.spec.pool();
    let moe_vars: BTreeSet<VarId> = representative.spec.moe_vars().into_iter().collect();
    // Pre-resolve the environment inputs the netlist implements and the
    // signals behind the moe variables (any kind: replay reads them with
    // `value_by_name`, whatever drives them).
    let driven: Vec<(VarId, Option<SignalId>)> = representative
        .spec
        .env_vars()
        .into_iter()
        .map(|var| {
            let signal = representative
                .netlist
                .find(&pool.name_or_fallback(var))
                .filter(|&s| matches!(representative.netlist.signal(s).kind, SignalKind::Input));
            (var, signal)
        })
        .collect();
    let moe_signals: BTreeMap<VarId, SignalId> = moe_vars
        .iter()
        .filter_map(|&var| {
            representative
                .netlist
                .find(&pool.name_or_fallback(var))
                .map(|signal| (var, signal))
        })
        .collect();

    let mut history: Vec<BTreeMap<VarId, u64>> = Vec::with_capacity(depth);
    let mut fuzz_settled = 0u64;
    for frame in 0..depth {
        let mut env = BTreeMap::new();
        for &(var, signal) in &driven {
            let word = rng.next_u64();
            env.insert(var, word);
            if let Some(signal) = signal {
                sim.set_input_word(signal, word);
            }
        }
        history.push(env);
        // One settle serves every moe read of this frame.
        let moe_words: BTreeMap<VarId, u64> = moe_signals
            .iter()
            .map(|(&var, &signal)| (var, sim.value_word(signal)))
            .collect();

        for (slot, (index, property)) in sweep.iter().enumerate() {
            if settled[slot] || frame < property.latency.first_instance() {
                continue;
            }
            let env_frame = frame.saturating_sub(property.latency.offset());
            let lookup = |v: VarId| {
                if moe_vars.contains(&v) {
                    moe_words.get(&v).copied().unwrap_or(0)
                } else {
                    history[env_frame].get(&v).copied().unwrap_or(0)
                }
            };
            let bad = !eval_expr_word(&property.ok, lookup);
            if bad == 0 {
                continue;
            }
            let lane = bad.trailing_zeros() as usize;
            let frames: Vec<_> = history[..=frame]
                .iter()
                .map(|env| {
                    env.iter()
                        .map(|(&var, &word)| (pool.name_or_fallback(var), (word >> lane) & 1 == 1))
                        .collect()
                })
                .collect();
            let counterexample = Counterexample {
                property: property.name.clone(),
                frames,
                violation_frame: frame,
            };
            let job = &jobs[*index];
            let reproduced = counterexample
                .replay(&job.spec, &job.netlist, property)
                .map(|replay| replay.violation_reproduced)
                .unwrap_or(false);
            if !reproduced {
                continue;
            }
            let outcome = JobOutcome {
                property: property.name.clone(),
                verdict: Verdict::Falsified,
                detail: format!("trace_frames={}", counterexample.length()),
                cached: false,
                certificate: None,
                counterexample: Some(counterexample),
            };
            cache.record_miss();
            tracer.counter("serve.cache.misses", 1);
            cache.store(&cache_key(&job.spec, &job.netlist, property), &outcome);
            resolved.push((*index, outcome));
            settled[slot] = true;
            fuzz_settled += 1;
        }
        sim.step();
    }
    if fuzz_settled > 0 || tracer.is_enabled() {
        tracer.event(
            "serve.batch_fuzzed",
            &[
                ("scenarios", Value::U64((depth * LANES) as u64)),
                ("settled", Value::U64(fuzz_settled)),
            ],
        );
    }
}

/// Convenience used by tests and the smoke check: pre-solve, then run the
/// leftovers inline (no queue involved). Returns outcomes in input order.
pub fn solve_batch_inline(
    jobs: &[Arc<JobRequest>],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
) -> Vec<JobOutcome> {
    let resolution = presolve_batch(jobs, depth, cache, tracer);
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    for (index, outcome) in resolution.resolved {
        outcomes[index] = Some(outcome);
    }
    let cancel = AtomicBool::new(false);
    for index in resolution.unresolved {
        outcomes[index] = Some(process_job(&jobs[index], &cancel, cache, tracer));
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("all settled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PropertyRequest;
    use ipcl_bmc::PropertyKind;
    use ipcl_checker::ProofStrategy;
    use ipcl_core::example::ExampleArch;
    use ipcl_pipesim::BrokenVariant;
    use ipcl_synth::synthesize_broken_interlock;

    fn broken_batch() -> Vec<Arc<JobRequest>> {
        let spec = ExampleArch::new().functional_spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
        (0..spec.stages().len())
            .map(|stage_index| {
                Arc::new(JobRequest {
                    spec: spec.clone(),
                    netlist: broken.netlist().clone(),
                    property: PropertyRequest {
                        stage_index,
                        kind: PropertyKind::Functional,
                        latency: None,
                    },
                    strategy: ProofStrategy::Pdr,
                    threads: 1,
                })
            })
            .collect()
    }

    #[test]
    fn shared_sweep_settles_falsifiable_properties() {
        let jobs = broken_batch();
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let resolution = presolve_batch(&jobs, 6, &cache, &tracer);
        assert!(
            !resolution.resolved.is_empty(),
            "the scoreboard break must falsify some stage within the sweep"
        );
        for (_, outcome) in &resolution.resolved {
            assert_eq!(outcome.verdict, Verdict::Falsified);
            assert!(outcome.counterexample.is_some());
        }
        assert_eq!(
            resolution.resolved.len() + resolution.unresolved.len(),
            jobs.len()
        );
    }

    #[test]
    fn fuzz_stage_settles_falsifiable_jobs_before_the_solver() {
        let jobs = broken_batch();
        let cache = ProofCache::new(None);
        let tracer = Tracer::new(ipcl_trace::TraceConfig::enabled());
        let resolution = presolve_batch(&jobs, 6, &cache, &tracer);
        assert!(!resolution.resolved.is_empty());
        let snapshot = tracer.snapshot().expect("tracing enabled");
        let fuzzed = snapshot
            .events
            .iter()
            .find(|e| e.kind == "serve.batch_fuzzed")
            .expect("fuzz stage ran");
        let settled = fuzzed
            .fields
            .iter()
            .find(|(k, _)| k == "settled")
            .map(|(_, v)| v.clone());
        assert!(
            matches!(settled, Some(Value::U64(n)) if n > 0),
            "the 64-lane fuzz must catch the scoreboard break: {settled:?}"
        );
        // Fuzz-served traces pass the same replay bar as solver traces.
        for (_, outcome) in &resolution.resolved {
            assert_eq!(outcome.verdict, Verdict::Falsified);
            assert!(outcome.counterexample.is_some());
        }
    }

    #[test]
    fn batch_sweep_agrees_with_the_single_job_path() {
        let jobs = broken_batch();
        let tracer = Tracer::disabled();
        // Batch verdicts…
        let batch_cache = ProofCache::new(None);
        let batch = solve_batch_inline(&jobs, 6, &batch_cache, &tracer);
        // …must match direct per-job engine runs (fresh cache: all cold).
        let direct_cache = ProofCache::new(None);
        let cancel = AtomicBool::new(false);
        for (job, batch_outcome) in jobs.iter().zip(&batch) {
            let direct = process_job(job, &cancel, &direct_cache, &tracer);
            assert_eq!(batch_outcome.verdict, direct.verdict, "{}", direct.property);
        }
    }

    #[test]
    fn second_batch_is_all_hits() {
        let jobs = broken_batch();
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let first = solve_batch_inline(&jobs, 6, &cache, &tracer);
        let second = solve_batch_inline(&jobs, 6, &cache, &tracer);
        for (cold, warm) in first.iter().zip(&second) {
            assert_eq!(cold.verdict, warm.verdict);
            assert!(warm.cached, "{}: second round must hit", warm.property);
        }
    }
}
