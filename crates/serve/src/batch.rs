//! Batch submission: amortising one encoding across properties that share
//! a design.
//!
//! A `submit_batch` request carries many jobs. Jobs over the same problem
//! structure — grouped by the structural digest of the netlist pinned on
//! the *union* of the group's property variables, so grouping follows the
//! shared cone of influence rather than textual identity — are attacked
//! together with a single reset-rooted [`FrameEncoder`] and one incremental
//! SAT solver: every property contributes one assumption literal per frame,
//! and the transition-relation clauses (the bulk of the CNF) are encoded
//! once instead of once per job. This bounded sweep settles the cheap
//! outcomes:
//!
//! * **cache hits** are served exactly as on the single-job path
//!   (revalidated, never trusted);
//! * **falsifiable properties** get their counterexample from the shared
//!   unrolling — decoded, replay-checked and cached like any engine result;
//! * everything else (the properties that need a real proof) is handed to
//!   the worker pool as ordinary queued jobs.
//!
//! The sweep runs on the submitting connection's thread, bounded by the
//! server's `batch_depth`, so a batch of mostly-buggy or mostly-cached
//! properties answers without ever occupying a worker.

use std::collections::BTreeSet;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use ipcl_bmc::{Counterexample, FrameEncoder, SequentialProperty, SolverSync};
use ipcl_rtl::{structural_digest, InitialState};
use ipcl_sat::{SatResult, Solver, SolverConfig};
use ipcl_trace::{MetricSink, Tracer, Value};

use crate::cache::{cache_key, revalidate, ProofCache};
use crate::pool::process_job;
use crate::protocol::{JobOutcome, JobRequest, Verdict};

/// The split a batch pre-solve produces: per input index, either a finished
/// outcome or a leftover for the queue.
pub struct BatchResolution {
    /// `(input index, outcome)` for jobs settled by cache or the shared
    /// sweep.
    pub resolved: Vec<(usize, JobOutcome)>,
    /// Input indices that still need a full engine run.
    pub unresolved: Vec<usize>,
}

/// Pre-solves `jobs` as described in the module docs. `depth` bounds the
/// shared falsification sweep (frames beyond each property's first
/// instance); `0` only serves cache hits.
pub fn presolve_batch(
    jobs: &[Arc<JobRequest>],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
) -> BatchResolution {
    let mut resolved = Vec::new();
    let mut unresolved = Vec::new();

    // Group indices by shared cone: same netlist structure under the
    // union-interface digest. Properties of one group can share an
    // unrolling; the group representative's spec provides the encoding
    // vocabulary (identical digests from differently-built payloads are
    // caught by the per-job property resolution below).
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        let interface: Vec<String> = {
            let pool = job.spec.pool();
            let mut vars = BTreeSet::new();
            for stage in job.spec.stages() {
                vars.insert(stage.moe);
                for rule in &stage.rules {
                    rule.condition.collect_vars(&mut vars);
                }
            }
            vars.into_iter().map(|v| pool.name_or_fallback(v)).collect()
        };
        let digest = structural_digest(&job.netlist, &interface);
        match groups.iter_mut().find(|(key, _)| *key == digest) {
            Some((_, members)) => members.push(index),
            None => groups.push((digest, vec![index])),
        }
    }

    for (_, members) in groups {
        presolve_group(
            jobs,
            &members,
            depth,
            cache,
            tracer,
            &mut resolved,
            &mut unresolved,
        );
    }
    tracer.event(
        "serve.batch_presolved",
        &[
            ("jobs", Value::U64(jobs.len() as u64)),
            ("resolved", Value::U64(resolved.len() as u64)),
        ],
    );
    resolved.sort_by_key(|(index, _)| *index);
    unresolved.sort_unstable();
    BatchResolution {
        resolved,
        unresolved,
    }
}

fn presolve_group(
    jobs: &[Arc<JobRequest>],
    members: &[usize],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
    resolved: &mut Vec<(usize, JobOutcome)>,
    unresolved: &mut Vec<usize>,
) {
    let representative = &jobs[members[0]];

    // Pass 1: cache hits (and malformed property selectors, settled as
    // errors immediately).
    let mut sweep: Vec<(usize, SequentialProperty)> = Vec::new();
    for &index in members {
        let job = &jobs[index];
        let property = match job.resolve_property() {
            Ok(property) => property,
            Err(message) => {
                resolved.push((index, JobOutcome::error("", message)));
                continue;
            }
        };
        let key = cache_key(&job.spec, &job.netlist, &property);
        if let Some(stored) = cache.load(&key) {
            if stored.property == property.name
                && revalidate(&stored, &job.spec, &job.netlist, &property)
            {
                cache.record_hit();
                tracer.counter("serve.cache.hits", 1);
                let mut served = stored;
                served.cached = true;
                resolved.push((index, served));
                continue;
            }
            cache.record_revalidation_failure();
        }
        sweep.push((index, property));
    }

    // Pass 2: the shared bounded falsification sweep over one encoder and
    // one incremental solver. Encoded against the representative's spec and
    // netlist — members share the structural digest, and each trace is
    // replay-verified against its own job before being served, so a
    // colliding-but-different member can cost a wasted query, never a wrong
    // verdict.
    if depth > 0 && !sweep.is_empty() {
        let mut settled = vec![false; sweep.len()];
        if let Ok(mut enc) = FrameEncoder::new(&representative.netlist, InitialState::Reset, 0) {
            let moe_vars: BTreeSet<_> = representative.spec.moe_vars().into_iter().collect();
            let mut solver = Solver::with_config(0, SolverConfig::default());
            let mut sync = SolverSync::default();
            for frame in 0..depth {
                enc.ensure_frames(frame + 1);
                for (slot, (index, property)) in sweep.iter().enumerate() {
                    if settled[slot] || frame < property.latency.first_instance() {
                        continue;
                    }
                    let bad = enc
                        .encode_instance(&representative.spec, &moe_vars, property, frame)
                        .negated();
                    sync.sync(&enc, &mut solver);
                    if let SatResult::Sat(model) = solver.solve_under_assumptions(&[bad]) {
                        let frames = enc.decode_trace(&representative.spec, &model, frame + 1);
                        let counterexample = Counterexample {
                            property: property.name.clone(),
                            frames,
                            violation_frame: frame,
                        };
                        let job = &jobs[*index];
                        let reproduced = counterexample
                            .replay(&job.spec, &job.netlist, property)
                            .map(|replay| replay.violation_reproduced)
                            .unwrap_or(false);
                        if reproduced {
                            let outcome = JobOutcome {
                                property: property.name.clone(),
                                verdict: Verdict::Falsified,
                                detail: format!("trace_frames={}", counterexample.length()),
                                cached: false,
                                certificate: None,
                                counterexample: Some(counterexample),
                            };
                            cache.record_miss();
                            tracer.counter("serve.cache.misses", 1);
                            cache.store(&cache_key(&job.spec, &job.netlist, property), &outcome);
                            resolved.push((*index, outcome));
                            settled[slot] = true;
                        }
                    }
                }
            }
        }
        for (slot, (index, _)) in sweep.iter().enumerate() {
            if !settled[slot] {
                unresolved.push(*index);
            }
        }
    } else {
        unresolved.extend(sweep.iter().map(|(index, _)| *index));
    }
}

/// Convenience used by tests and the smoke check: pre-solve, then run the
/// leftovers inline (no queue involved). Returns outcomes in input order.
pub fn solve_batch_inline(
    jobs: &[Arc<JobRequest>],
    depth: usize,
    cache: &ProofCache,
    tracer: &Tracer,
) -> Vec<JobOutcome> {
    let resolution = presolve_batch(jobs, depth, cache, tracer);
    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    for (index, outcome) in resolution.resolved {
        outcomes[index] = Some(outcome);
    }
    let cancel = AtomicBool::new(false);
    for index in resolution.unresolved {
        outcomes[index] = Some(process_job(&jobs[index], &cancel, cache, tracer));
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("all settled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PropertyRequest;
    use ipcl_bmc::PropertyKind;
    use ipcl_checker::ProofStrategy;
    use ipcl_core::example::ExampleArch;
    use ipcl_pipesim::BrokenVariant;
    use ipcl_synth::synthesize_broken_interlock;

    fn broken_batch() -> Vec<Arc<JobRequest>> {
        let spec = ExampleArch::new().functional_spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
        (0..spec.stages().len())
            .map(|stage_index| {
                Arc::new(JobRequest {
                    spec: spec.clone(),
                    netlist: broken.netlist().clone(),
                    property: PropertyRequest {
                        stage_index,
                        kind: PropertyKind::Functional,
                        latency: None,
                    },
                    strategy: ProofStrategy::Pdr,
                    threads: 1,
                })
            })
            .collect()
    }

    #[test]
    fn shared_sweep_settles_falsifiable_properties() {
        let jobs = broken_batch();
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let resolution = presolve_batch(&jobs, 6, &cache, &tracer);
        assert!(
            !resolution.resolved.is_empty(),
            "the scoreboard break must falsify some stage within the sweep"
        );
        for (_, outcome) in &resolution.resolved {
            assert_eq!(outcome.verdict, Verdict::Falsified);
            assert!(outcome.counterexample.is_some());
        }
        assert_eq!(
            resolution.resolved.len() + resolution.unresolved.len(),
            jobs.len()
        );
    }

    #[test]
    fn batch_sweep_agrees_with_the_single_job_path() {
        let jobs = broken_batch();
        let tracer = Tracer::disabled();
        // Batch verdicts…
        let batch_cache = ProofCache::new(None);
        let batch = solve_batch_inline(&jobs, 6, &batch_cache, &tracer);
        // …must match direct per-job engine runs (fresh cache: all cold).
        let direct_cache = ProofCache::new(None);
        let cancel = AtomicBool::new(false);
        for (job, batch_outcome) in jobs.iter().zip(&batch) {
            let direct = process_job(job, &cancel, &direct_cache, &tracer);
            assert_eq!(batch_outcome.verdict, direct.verdict, "{}", direct.property);
        }
    }

    #[test]
    fn second_batch_is_all_hits() {
        let jobs = broken_batch();
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let first = solve_batch_inline(&jobs, 6, &cache, &tracer);
        let second = solve_batch_inline(&jobs, 6, &cache, &tracer);
        for (cold, warm) in first.iter().zip(&second) {
            assert_eq!(cold.verdict, warm.verdict);
            assert!(warm.cached, "{}: second round must hit", warm.property);
        }
    }
}
