//! The TCP server: accept loop, per-connection protocol handling, and
//! graceful shutdown.
//!
//! Transport is plain `std::net` — one line of JSON per request, one line
//! per response, handled by a thread per connection (the worker pool, not
//! the connection count, bounds solver concurrency). Connection reads use
//! a short timeout so handlers notice server shutdown promptly; the accept
//! loop is unblocked at shutdown by a loopback self-connection.
//!
//! Request vocabulary (`{"cmd": ...}`):
//!
//! * `submit` — enqueue one job, answer `{"ok": true, "id": N}`;
//! * `submit_batch` — pre-solve shared-cone jobs on this connection
//!   ([`crate::batch`]), enqueue the rest, answer ids plus the pre-solved
//!   count;
//! * `status` — job state and, when done, the result;
//! * `wait` — block until the job finishes, answer the result;
//! * `cancel` — flag a job's cancellation token;
//! * `stats` — queue and cache counters;
//! * `shutdown` — acknowledge, then begin graceful shutdown: cancel
//!   in-flight jobs cooperatively, drain and join workers, join
//!   connections, release the listener.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ipcl_trace::{Tracer, Value};
use ipcl_tracetool::json::{write_json_string, Json};

use crate::batch::presolve_batch;
use crate::cache::{CacheLimits, ProofCache};
use crate::pool::WorkerPool;
use crate::protocol::JobRequest;
use crate::queue::{JobQueue, JobState};

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"` (`:0` picks a free port).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Proof-cache persistence directory (`None`: memory only).
    pub cache_dir: Option<PathBuf>,
    /// LRU size bounds of the proof cache (default: unbounded).
    pub cache_limits: CacheLimits,
    /// Frame bound of the shared batch falsification sweep.
    pub batch_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            cache_dir: None,
            cache_limits: CacheLimits::default(),
            batch_depth: 5,
        }
    }
}

/// A running verification server. Dropping without calling
/// [`Server::shutdown`] leaks the background threads; the binary and tests
/// always shut down explicitly.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<JobQueue>,
    cache: Arc<ProofCache>,
    shutdown: Arc<AtomicBool>,
    accept_handle: JoinHandle<()>,
    pool: WorkerPool,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tracer: Tracer,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig, tracer: Tracer) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(JobQueue::new());
        let cache = Arc::new(ProofCache::with_limits(
            config.cache_dir.clone(),
            config.cache_limits,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let pool = WorkerPool::spawn(
            config.workers,
            Arc::clone(&queue),
            Arc::clone(&cache),
            tracer.clone(),
        );

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let cache = Arc::clone(&cache);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let tracer = tracer.clone();
            let batch_depth = config.batch_depth;
            std::thread::Builder::new()
                .name("ipcl-serve-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let queue = Arc::clone(&queue);
                        let cache = Arc::clone(&cache);
                        let shutdown = Arc::clone(&shutdown);
                        let tracer = tracer.clone();
                        let handle = std::thread::Builder::new()
                            .name("ipcl-serve-conn".to_owned())
                            .spawn(move || {
                                handle_connection(
                                    stream,
                                    &queue,
                                    &cache,
                                    &shutdown,
                                    batch_depth,
                                    &tracer,
                                );
                            })
                            .expect("spawn connection thread");
                        connections.lock().expect("connections lock").push(handle);
                    }
                })
                .expect("spawn accept thread")
        };

        tracer.event(
            "serve.listening",
            &[("workers", Value::U64(config.workers as u64))],
        );
        Ok(Server {
            addr,
            queue,
            cache,
            shutdown,
            accept_handle,
            pool,
            connections,
            tracer,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared job queue (for in-process submission in tests and the
    /// load generator).
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }

    /// The shared proof cache.
    pub fn cache(&self) -> &Arc<ProofCache> {
        &self.cache
    }

    /// Whether a client asked the server to shut down (the binary's serve
    /// loop polls this).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: cancels in-flight jobs (cooperatively, at the
    /// next SAT-query boundary), drains and joins the workers, joins every
    /// connection handler, and releases the listener.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.shutdown();
        // Unblock the accept loop with a loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_handle.join();
        self.pool.join();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.connections.lock().expect("connections lock"));
        for handle in handles {
            let _ = handle.join();
        }
        self.tracer.event("serve.stopped", &[]);
    }
}

fn handle_connection(
    stream: TcpStream,
    queue: &JobQueue,
    cache: &ProofCache,
    shutdown: &AtomicBool,
    batch_depth: usize,
    tracer: &Tracer,
) {
    // Short read timeouts keep the handler responsive to shutdown; no
    // Nagle — responses are single lines that must leave immediately.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut response = respond(line.trim(), queue, cache, shutdown, batch_depth, tracer);
        response.push('\n');
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if shutdown.load(Ordering::Relaxed) {
            // The shutdown acknowledgement has been sent; stop serving.
            return;
        }
    }
}

fn error_response(message: &str) -> String {
    let mut out = String::from("{\"ok\": false, \"error\": ");
    write_json_string(&mut out, message);
    out.push('}');
    out
}

fn respond(
    line: &str,
    queue: &JobQueue,
    cache: &ProofCache,
    shutdown: &AtomicBool,
    batch_depth: usize,
    tracer: &Tracer,
) -> String {
    let request = match Json::parse(line) {
        Ok(request) => request,
        Err(e) => return error_response(&format!("bad request: {e}")),
    };
    match request.get("cmd").and_then(Json::as_str) {
        Some("submit") => {
            let Some(job) = request.get("job") else {
                return error_response("submit misses 'job'");
            };
            match JobRequest::from_json(job) {
                Ok(job) => {
                    let id = queue.submit(Arc::new(job));
                    tracer.event("serve.job_submitted", &[("id", Value::U64(id))]);
                    format!("{{\"ok\": true, \"id\": {id}}}")
                }
                Err(message) => error_response(&message),
            }
        }
        Some("submit_batch") => {
            let Some(jobs) = request.get("jobs").and_then(Json::as_array) else {
                return error_response("submit_batch misses 'jobs'");
            };
            let mut parsed = Vec::with_capacity(jobs.len());
            for (i, job) in jobs.iter().enumerate() {
                match JobRequest::from_json(job) {
                    Ok(job) => parsed.push(Arc::new(job)),
                    Err(message) => return error_response(&format!("job {i}: {message}")),
                }
            }
            let resolution = presolve_batch(&parsed, batch_depth, cache, tracer);
            let presolved = resolution.resolved.len();
            let mut ids = vec![0u64; parsed.len()];
            for (index, outcome) in resolution.resolved {
                ids[index] = queue.submit_resolved(Arc::clone(&parsed[index]), outcome);
            }
            for index in resolution.unresolved {
                ids[index] = queue.submit(Arc::clone(&parsed[index]));
            }
            let rendered: Vec<String> = ids.iter().map(u64::to_string).collect();
            format!(
                "{{\"ok\": true, \"ids\": [{}], \"presolved\": {presolved}}}",
                rendered.join(", ")
            )
        }
        Some("status") => match request.get("id").and_then(Json::as_u64) {
            Some(id) => match queue.status(id) {
                Some((state, outcome)) => {
                    let mut out = format!("{{\"ok\": true, \"state\": \"{}\"", state.name());
                    if let (JobState::Done, Some(outcome)) = (state, outcome) {
                        out.push_str(", \"result\": ");
                        out.push_str(&outcome.to_json_string());
                    }
                    out.push('}');
                    out
                }
                None => error_response("unknown job id"),
            },
            None => error_response("status misses 'id'"),
        },
        Some("wait") => match request.get("id").and_then(Json::as_u64) {
            Some(id) => match queue.wait(id) {
                Some(outcome) => {
                    format!("{{\"ok\": true, \"result\": {}}}", outcome.to_json_string())
                }
                None => error_response("unknown job id (or server shut down mid-job)"),
            },
            None => error_response("wait misses 'id'"),
        },
        Some("cancel") => match request.get("id").and_then(Json::as_u64) {
            Some(id) => format!("{{\"ok\": true, \"canceled\": {}}}", queue.cancel(id)),
            None => error_response("cancel misses 'id'"),
        },
        Some("stats") => {
            let queue_stats = queue.stats();
            let cache_stats = cache.stats();
            format!(
                "{{\"ok\": true, \"queued\": {}, \"running\": {}, \"done\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"revalidation_failures\": {}, \
                 \"cache_evictions\": {}, \"cache_entries\": {}, \"cache_bytes\": {}}}",
                queue_stats.queued,
                queue_stats.running,
                queue_stats.done,
                cache_stats.hits,
                cache_stats.misses,
                cache_stats.revalidation_failures,
                cache_stats.evictions,
                cache.len(),
                cache.bytes()
            )
        }
        Some("shutdown") => {
            shutdown.store(true, Ordering::Relaxed);
            queue.shutdown();
            "{\"ok\": true, \"stopping\": true}".to_owned()
        }
        Some(other) => error_response(&format!("unknown cmd '{other}'")),
        None => error_response("request misses 'cmd'"),
    }
}
