//! `ipcl-serve` — the verification service binary.
//!
//! ```text
//! ipcl-serve serve   [--addr 127.0.0.1:7171] [--workers N]
//!                    [--cache-dir DIR] [--cache-max-entries N]
//!                    [--cache-max-bytes N] [--batch-depth K] [--trace]
//! ipcl-serve submit  --addr HOST:PORT --file JOB.json [--no-wait]
//! ipcl-serve status  --addr HOST:PORT --id N
//! ipcl-serve smoke-check [--cache-dir DIR]
//! ```
//!
//! `serve` runs until a client sends `{"cmd": "shutdown"}` (or the process
//! is killed). `submit` reads a job JSON file (the `"job"` payload format —
//! see `ipcl_serve::protocol`), submits it and by default waits for the
//! result. `smoke-check` is the self-contained end-to-end check CI runs:
//! in-process server, a miss/hit pair, a batch, verdict comparison against
//! direct checker invocations, graceful shutdown; exits non-zero on any
//! mismatch.

use std::sync::atomic::AtomicBool;
use std::time::Duration;

use ipcl_bmc::PropertyKind;
use ipcl_checker::ProofStrategy;
use ipcl_core::example::ExampleArch;
use ipcl_pipesim::BrokenVariant;
use ipcl_serve::cache::ProofCache;
use ipcl_serve::{process_job, Client, JobRequest, PropertyRequest, Server, ServerConfig, Verdict};
use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock_with, SynthesisOptions};
use ipcl_trace::{TraceConfig, Tracer};
use ipcl_tracetool::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("smoke-check") => cmd_smoke_check(&args[1..]),
        _ => {
            eprintln!("usage: ipcl-serve <serve|submit|status|smoke-check> [options]");
            2
        }
    };
    std::process::exit(code);
}

fn take_option(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn cmd_serve(args: &[String]) -> i32 {
    let config = ServerConfig {
        addr: take_option(args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_owned()),
        workers: take_option(args, "--workers")
            .and_then(|w| w.parse().ok())
            .unwrap_or(2),
        cache_dir: take_option(args, "--cache-dir").map(Into::into),
        cache_limits: ipcl_serve::cache::CacheLimits {
            max_entries: take_option(args, "--cache-max-entries").and_then(|n| n.parse().ok()),
            max_bytes: take_option(args, "--cache-max-bytes").and_then(|n| n.parse().ok()),
        },
        batch_depth: take_option(args, "--batch-depth")
            .and_then(|d| d.parse().ok())
            .unwrap_or(5),
    };
    let tracer = if has_flag(args, "--trace") {
        Tracer::new(TraceConfig::enabled())
    } else {
        Tracer::disabled()
    };
    let server = match Server::start(config, tracer) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ipcl-serve: bind failed: {e}");
            return 1;
        }
    };
    println!("ipcl-serve: listening on {}", server.local_addr());
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("ipcl-serve: shutdown requested, draining");
    server.shutdown();
    0
}

fn cmd_submit(args: &[String]) -> i32 {
    let Some(addr) = take_option(args, "--addr") else {
        eprintln!("ipcl-serve submit: --addr is required");
        return 2;
    };
    let Some(file) = take_option(args, "--file") else {
        eprintln!("ipcl-serve submit: --file is required");
        return 2;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ipcl-serve submit: read {file}: {e}");
            return 1;
        }
    };
    let job = match Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|json| JobRequest::from_json(&json))
    {
        Ok(job) => job,
        Err(e) => {
            eprintln!("ipcl-serve submit: bad job file: {e}");
            return 1;
        }
    };
    let result = (|| -> Result<i32, String> {
        let mut client = Client::connect(&addr)?;
        let id = client.submit(&job)?;
        println!("submitted job {id}");
        if has_flag(args, "--no-wait") {
            return Ok(0);
        }
        let outcome = client.wait(id)?;
        println!("{}", outcome.to_json_string());
        Ok(match outcome.verdict {
            Verdict::Proved | Verdict::Falsified => 0,
            _ => 1,
        })
    })();
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ipcl-serve submit: {e}");
            1
        }
    }
}

fn cmd_status(args: &[String]) -> i32 {
    let Some(addr) = take_option(args, "--addr") else {
        eprintln!("ipcl-serve status: --addr is required");
        return 2;
    };
    let Some(id) = take_option(args, "--id").and_then(|id| id.parse::<u64>().ok()) else {
        eprintln!("ipcl-serve status: --id N is required");
        return 2;
    };
    match Client::connect(&addr).and_then(|mut client| client.status(id)) {
        Ok((state, outcome)) => {
            match outcome {
                Some(outcome) => println!("{state}: {}", outcome.to_json_string()),
                None => println!("{state}"),
            }
            0
        }
        Err(e) => {
            eprintln!("ipcl-serve status: {e}");
            1
        }
    }
}

/// The CI smoke check: everything in-process, nothing trusted.
fn cmd_smoke_check(args: &[String]) -> i32 {
    let spec = ExampleArch::new().functional_spec();
    let correct = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    )
    .netlist()
    .clone();
    let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard)
        .netlist()
        .clone();

    let job = |netlist: &ipcl_rtl::Netlist, stage_index: usize, kind: PropertyKind| JobRequest {
        spec: spec.clone(),
        netlist: netlist.clone(),
        property: PropertyRequest {
            stage_index,
            kind,
            latency: None,
        },
        // Deterministic engine so served payloads are bit-comparable
        // against direct invocations.
        strategy: ProofStrategy::Pdr,
        threads: 1,
    };

    // Direct (serverless) reference runs with the same options.
    let reference = |j: &JobRequest| {
        let cache = ProofCache::new(None);
        process_job(j, &AtomicBool::new(false), &cache, &Tracer::disabled())
    };

    let mut failures = 0u32;
    let mut check = |what: &str, ok: bool| {
        if ok {
            println!("ok   {what}");
        } else {
            eprintln!("FAIL {what}");
            failures += 1;
        }
    };

    let config = ServerConfig {
        cache_dir: take_option(args, "--cache-dir").map(Into::into),
        ..ServerConfig::default()
    };
    let server = match Server::start(config, Tracer::disabled()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("smoke-check: server start failed: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().to_string();

    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(&addr)?;

        // Miss/hit pair on a proved property: verdict and certificate must
        // match the direct checker bit for bit; the second ask must be a
        // cache hit serving the identical payload.
        let proved_job = job(&correct, 0, PropertyKind::Functional);
        let direct = reference(&proved_job);
        let cold_id = client.submit(&proved_job)?;
        let cold = client.wait(cold_id)?;
        let warm_id = client.submit(&proved_job)?;
        let warm = client.wait(warm_id)?;
        check(
            "cold verdict matches direct checker",
            cold.verdict == direct.verdict && cold.verdict == Verdict::Proved,
        );
        check("cold run is not served from cache", !cold.cached);
        check(
            "cold certificate is bit-identical to direct checker",
            cold.certificate.as_ref().map(|c| c.to_json_string())
                == direct.certificate.as_ref().map(|c| c.to_json_string()),
        );
        check("warm run is served from cache", warm.cached);
        let mut warm_as_cold = warm.clone();
        warm_as_cold.cached = false;
        check(
            "warm payload is bit-identical to the cold result",
            warm_as_cold.to_json_string() == cold.to_json_string(),
        );

        // Falsified property: trace must match and replay.
        let mut falsified_stage = None;
        for stage_index in 0..spec.stages().len() {
            let candidate = job(&broken, stage_index, PropertyKind::Functional);
            if reference(&candidate).verdict == Verdict::Falsified {
                falsified_stage = Some(stage_index);
                break;
            }
        }
        let stage_index = falsified_stage.ok_or("no falsifiable stage in broken variant")?;
        let falsified_job = job(&broken, stage_index, PropertyKind::Functional);
        let direct_falsified = reference(&falsified_job);
        let falsified_id = client.submit(&falsified_job)?;
        let served_falsified = client.wait(falsified_id)?;
        check(
            "falsified verdict matches direct checker",
            served_falsified.verdict == Verdict::Falsified,
        );
        check(
            "falsified trace is bit-identical to direct checker",
            served_falsified
                .counterexample
                .as_ref()
                .map(|c| c.to_json_string())
                == direct_falsified
                    .counterexample
                    .as_ref()
                    .map(|c| c.to_json_string()),
        );

        // Batch: mixed jobs over both designs; verdicts must match direct
        // runs and the already-cached ones must be presolved.
        let batch: Vec<JobRequest> = (0..spec.stages().len())
            .map(|i| job(&broken, i, PropertyKind::Functional))
            .chain([job(&correct, 0, PropertyKind::Functional)])
            .collect();
        let (ids, presolved) = client.submit_batch(&batch)?;
        check("batch answers one id per job", ids.len() == batch.len());
        check("batch presolves cached/falsifiable jobs", presolved > 0);
        for (j, id) in batch.iter().zip(&ids) {
            let served = client.wait(*id)?;
            let direct = reference(j);
            check(
                "batch verdict matches direct checker",
                served.verdict == direct.verdict,
            );
        }

        // Graceful shutdown: acknowledged, then the server drains.
        client.shutdown()?;
        Ok(())
    })();
    if let Err(e) = result {
        eprintln!("FAIL smoke-check aborted: {e}");
        failures += 1;
    }
    server.shutdown();
    println!(
        "smoke-check: {}",
        if failures == 0 {
            "all checks passed".to_owned()
        } else {
            format!("{failures} checks FAILED")
        }
    );
    if failures == 0 {
        0
    } else {
        1
    }
}
