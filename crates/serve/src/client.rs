//! A thin blocking client for the line-delimited JSON protocol.
//!
//! Used by the binary's `submit` / `status` modes, the CI smoke check and
//! the `exp_serve_load` load generator. One request per call: write a line,
//! read a line, parse. Responses with `"ok": false` surface as `Err` with
//! the server's message.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use ipcl_tracetool::json::Json;

use crate::protocol::{JobOutcome, JobRequest};

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (`"host:port"`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures as strings (the protocol layer deals
    /// in messages, not `io::Error` taxonomies).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // Request lines span many TCP segments (a job carries its whole
        // netlist); Nagle + delayed ACK would add a flat ~200ms per
        // round-trip.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(
            writer
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Client { writer, reader })
    }

    /// Sends one request line and returns the parsed response. `Err` for
    /// transport failures, malformed responses and `"ok": false` answers.
    pub fn request(&mut self, line: &str) -> Result<Json, String> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer
            .write_all(framed.as_bytes())
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        if response.is_empty() {
            return Err("server closed the connection".to_owned());
        }
        let json = Json::parse(response.trim()).map_err(|e| format!("bad response: {e}"))?;
        match json.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(json),
            _ => Err(json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed")
                .to_owned()),
        }
    }

    /// Submits one job; returns its id.
    pub fn submit(&mut self, job: &JobRequest) -> Result<u64, String> {
        let line = format!("{{\"cmd\": \"submit\", \"job\": {}}}", job.to_json_string());
        self.request(&line)?
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "submit response misses 'id'".to_owned())
    }

    /// Submits a batch; returns `(ids, presolved count)`.
    pub fn submit_batch(&mut self, jobs: &[JobRequest]) -> Result<(Vec<u64>, u64), String> {
        let rendered: Vec<String> = jobs.iter().map(JobRequest::to_json_string).collect();
        let line = format!(
            "{{\"cmd\": \"submit_batch\", \"jobs\": [{}]}}",
            rendered.join(", ")
        );
        let response = self.request(&line)?;
        let ids = response
            .get("ids")
            .and_then(Json::as_array)
            .ok_or("batch response misses 'ids'")?
            .iter()
            .map(|id| id.as_u64().ok_or_else(|| "bad id".to_owned()))
            .collect::<Result<Vec<u64>, String>>()?;
        let presolved = response
            .get("presolved")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        Ok((ids, presolved))
    }

    /// Blocks until job `id` finishes; returns its outcome.
    pub fn wait(&mut self, id: u64) -> Result<JobOutcome, String> {
        let response = self.request(&format!("{{\"cmd\": \"wait\", \"id\": {id}}}"))?;
        JobOutcome::from_json(
            response
                .get("result")
                .ok_or("wait response misses 'result'")?,
        )
    }

    /// The job's state name and, when done, its outcome.
    pub fn status(&mut self, id: u64) -> Result<(String, Option<JobOutcome>), String> {
        let response = self.request(&format!("{{\"cmd\": \"status\", \"id\": {id}}}"))?;
        let state = response
            .get("state")
            .and_then(Json::as_str)
            .ok_or("status response misses 'state'")?
            .to_owned();
        let outcome = response
            .get("result")
            .map(JobOutcome::from_json)
            .transpose()?;
        Ok((state, outcome))
    }

    /// Requests cancellation of job `id`.
    pub fn cancel(&mut self, id: u64) -> Result<bool, String> {
        let response = self.request(&format!("{{\"cmd\": \"cancel\", \"id\": {id}}}"))?;
        Ok(response
            .get("canceled")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// The server's queue/cache statistics object.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request("{\"cmd\": \"stats\"}")
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"cmd\": \"shutdown\"}").map(|_| ())
    }
}
