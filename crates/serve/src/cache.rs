//! The revalidating proof cache.
//!
//! The cache key is a *semantic* fingerprint of the job: the canonical
//! structural digest of the netlist ([`ipcl_rtl::structural_digest`],
//! interface-pinned on the property's variables) combined with the property
//! itself (name, kind, `ok` expression text, latency). Structurally
//! identical implementations — renamed internal signals, reordered
//! declarations, different module names — therefore share entries, while
//! any semantic mutation (a dropped gate, a flipped reset value) lands in a
//! different slot.
//!
//! The digest decides where to *look*, never what to *trust*: every hit is
//! re-validated against the submitted problem before it is served — a
//! proved entry must pass [`Certificate::validate`]'s independent
//! initiation/consecution/safety SAT checks, a falsified entry must replay
//! its trace through the cycle-accurate simulator and reproduce the
//! violation. An entry that fails revalidation (hash collision, stale
//! store, renamed registers outside the interface) is treated as a miss and
//! overwritten by the fresh result, so a corrupted cache can cost time but
//! never soundness.
//!
//! Entries live in memory and, when a cache directory is configured, as
//! one `<key>.json` file per entry (the [`JobOutcome`] wire format), so a
//! restarted server keeps its warm proofs.
//!
//! Growth is bounded: [`CacheLimits`] caps the entry count and/or the total
//! stored bytes, and the cache evicts least-recently-used entries (memory
//! *and* their disk files) to stay under both caps. Evictions are counted
//! in [`CacheStats::evictions`] and surfaced through the worker heartbeat
//! and the server's `stats` response, so an undersized cache is visible
//! before it becomes a throughput problem.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ipcl_bmc::SequentialProperty;
use ipcl_core::FunctionalSpec;
use ipcl_rtl::{sha256_hex, structural_digest, Netlist};
use ipcl_tracetool::json::Json;

use crate::protocol::{JobOutcome, Verdict};

/// Computes the cache key of `(netlist, property)`.
///
/// The netlist digest pins the property's variables as the interface, so
/// the digest covers exactly the logic cone the property can observe; the
/// property's own identity (name, `ok` text, latency sampling) is folded
/// in afterwards. The key is a hex SHA-256 string, usable as a filename.
pub fn cache_key(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
) -> String {
    let pool = spec.pool();
    let interface: Vec<String> = property
        .ok
        .vars()
        .into_iter()
        .map(|v| pool.name_or_fallback(v))
        .collect();
    let digest = structural_digest(netlist, &interface);
    let mut preimage = String::from("ipcl-serve-cache-v1\n");
    preimage.push_str(&digest);
    preimage.push('\n');
    preimage.push_str(&property.name);
    preimage.push('\n');
    preimage.push_str(property.kind.name());
    preimage.push('\n');
    preimage.push_str(&property.ok.display(pool).to_string());
    preimage.push('\n');
    preimage.push_str(&format!("latency_offset={}", property.latency.offset()));
    sha256_hex(preimage.as_bytes())
}

/// Re-checks a stored outcome against the *submitted* problem. Only
/// definitive verdicts are servable from cache; inconclusive entries are
/// never stored in the first place.
pub fn revalidate(
    outcome: &JobOutcome,
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
) -> bool {
    match outcome.verdict {
        Verdict::Proved => match &outcome.certificate {
            Some(certificate) => certificate
                .validate(spec, netlist, property)
                .map(|check| check.ok())
                .unwrap_or(false),
            // A proof with no certificate (k-induction) cannot be
            // independently re-established here, so it is not servable.
            None => false,
        },
        Verdict::Falsified => match &outcome.counterexample {
            Some(counterexample) => counterexample
                .replay(spec, netlist, property)
                .map(|replay| replay.violation_reproduced)
                .unwrap_or(false),
            None => false,
        },
        _ => false,
    }
}

/// Running totals of the cache (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (after revalidation).
    pub hits: u64,
    /// Lookups that ran the proof engine.
    pub misses: u64,
    /// Entries found but rejected by revalidation (counted as misses too).
    pub revalidation_failures: u64,
    /// Entries dropped by the LRU size bound ([`CacheLimits`]).
    pub evictions: u64,
}

/// Size bounds of a [`ProofCache`]. `None` in either slot means unbounded
/// in that dimension; the default is fully unbounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum number of in-memory entries.
    pub max_entries: Option<usize>,
    /// Maximum total size of the stored entry texts, in bytes. An entry
    /// larger than the whole budget is never retained.
    pub max_bytes: Option<usize>,
}

impl CacheLimits {
    /// Whether a cache of `entries` entries totalling `bytes` bytes is
    /// within both bounds.
    fn admits(&self, entries: usize, bytes: usize) -> bool {
        self.max_entries.is_none_or(|max| entries <= max)
            && self.max_bytes.is_none_or(|max| bytes <= max)
    }
}

/// One resident entry: the stored JSON plus its last-touch stamp.
struct Entry {
    text: String,
    stamp: u64,
}

/// The mutex-guarded resident state: entries, their total byte size, and
/// the logical clock handing out recency stamps.
#[derive(Default)]
struct Store {
    entries: HashMap<String, Entry>,
    bytes: usize,
    clock: u64,
}

/// The shared proof cache. See the module docs.
pub struct ProofCache {
    dir: Option<PathBuf>,
    limits: CacheLimits,
    store: Mutex<Store>,
    hits: AtomicU64,
    misses: AtomicU64,
    revalidation_failures: AtomicU64,
    evictions: AtomicU64,
}

impl ProofCache {
    /// An unbounded in-memory cache, optionally persisted under `dir`
    /// (created if missing; creation failure silently degrades to
    /// memory-only).
    pub fn new(dir: Option<PathBuf>) -> ProofCache {
        ProofCache::with_limits(dir, CacheLimits::default())
    }

    /// As [`ProofCache::new`], with LRU size bounds. Eviction applies to
    /// the persisted files too: a server restarted onto an over-full cache
    /// directory trims it back under the caps as entries are touched.
    pub fn with_limits(dir: Option<PathBuf>, limits: CacheLimits) -> ProofCache {
        let dir = dir.filter(|d| fs::create_dir_all(d).is_ok());
        ProofCache {
            dir,
            limits,
            store: Mutex::new(Store::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            revalidation_failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The raw stored entry for `key`, if any (memory first, then disk).
    /// This is *not* yet a hit: the caller must revalidate. Touching an
    /// entry refreshes its LRU recency.
    pub fn load(&self, key: &str) -> Option<JobOutcome> {
        let text = {
            let mut store = self.store.lock().expect("cache lock");
            store.clock += 1;
            let stamp = store.clock;
            match store.entries.get_mut(key) {
                Some(entry) => {
                    entry.stamp = stamp;
                    Some(entry.text.clone())
                }
                None => None,
            }
        }
        .or_else(|| {
            let path = self.dir.as_ref()?.join(format!("{key}.json"));
            let text = fs::read_to_string(path).ok()?;
            let mut store = self.store.lock().expect("cache lock");
            self.insert_locked(&mut store, key, text.clone());
            Some(text)
        })?;
        let json = Json::parse(&text).ok()?;
        JobOutcome::from_json(&json).ok()
    }

    /// Stores `outcome` under `key` (memory and, when configured, disk).
    /// Only definitive verdicts are worth storing; others are ignored.
    pub fn store(&self, key: &str, outcome: &JobOutcome) {
        if !matches!(outcome.verdict, Verdict::Proved | Verdict::Falsified) {
            return;
        }
        // Stored entries never carry the served-from-cache flag.
        let mut canonical = outcome.clone();
        canonical.cached = false;
        let text = canonical.to_json_string();
        if let Some(dir) = &self.dir {
            // Write-then-rename so readers never see a torn entry.
            let final_path = dir.join(format!("{key}.json"));
            let tmp_path = dir.join(format!("{key}.tmp"));
            if fs::write(&tmp_path, &text).is_ok() {
                let _ = fs::rename(&tmp_path, &final_path);
            }
        }
        let mut store = self.store.lock().expect("cache lock");
        self.insert_locked(&mut store, key, text);
    }

    /// Inserts under the lock with a fresh recency stamp, then evicts
    /// least-recently-used entries (and their disk files) until both
    /// [`CacheLimits`] hold. The just-inserted entry carries the newest
    /// stamp, so it is evicted only if it alone exceeds the byte budget.
    fn insert_locked(&self, store: &mut Store, key: &str, text: String) {
        store.clock += 1;
        let stamp = store.clock;
        let added = text.len();
        if let Some(previous) = store.entries.insert(key.to_owned(), Entry { text, stamp }) {
            store.bytes -= previous.text.len();
        }
        store.bytes += added;
        while !self.limits.admits(store.entries.len(), store.bytes) {
            let Some(victim) = store
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let entry = store.entries.remove(&victim).expect("victim resident");
            store.bytes -= entry.text.len();
            if let Some(dir) = &self.dir {
                let _ = fs::remove_file(dir.join(format!("{victim}.json")));
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a served hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss (no entry, or entry rejected).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an entry rejected by revalidation.
    pub fn record_revalidation_failure(&self) {
        self.revalidation_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            revalidation_failures: self.revalidation_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The configured size bounds.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.store.lock().expect("cache lock").entries.len()
    }

    /// Total size of the resident entry texts, in bytes.
    pub fn bytes(&self) -> usize {
        self.store.lock().expect("cache lock").bytes
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_bmc::{Latency, PropertyKind};
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

    fn problem() -> (FunctionalSpec, Netlist, SequentialProperty) {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Functional, Latency::Registered);
        (spec, synthesized.netlist().clone(), property)
    }

    #[test]
    fn key_is_stable_and_property_sensitive() {
        let (spec, netlist, property) = problem();
        let key = cache_key(&spec, &netlist, &property);
        assert_eq!(key, cache_key(&spec, &netlist, &property));
        assert_eq!(key.len(), 64);
        let other =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Registered);
        assert_ne!(key, cache_key(&spec, &netlist, &other));
        let other_latency = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        assert_ne!(key, cache_key(&spec, &netlist, &other_latency));
    }

    #[test]
    fn only_definitive_outcomes_are_stored() {
        let cache = ProofCache::new(None);
        let unknown = JobOutcome {
            property: "p".to_owned(),
            verdict: Verdict::Unknown,
            detail: String::new(),
            cached: false,
            certificate: None,
            counterexample: None,
        };
        cache.store("k", &unknown);
        assert!(cache.load("k").is_none());
        assert!(cache.is_empty());
    }

    fn falsified(detail: &str) -> JobOutcome {
        JobOutcome {
            property: "p".to_owned(),
            verdict: Verdict::Falsified,
            detail: detail.to_owned(),
            cached: false,
            certificate: None,
            counterexample: Some(ipcl_bmc::Counterexample {
                property: "p".to_owned(),
                violation_frame: 0,
                frames: vec![std::collections::BTreeMap::new()],
            }),
        }
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let cache = ProofCache::with_limits(
            None,
            CacheLimits {
                max_entries: Some(2),
                max_bytes: None,
            },
        );
        cache.store("a", &falsified("a"));
        cache.store("b", &falsified("b"));
        // Touch `a` so `b` becomes the coldest entry.
        assert!(cache.load("a").is_some());
        cache.store("c", &falsified("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.load("a").is_some());
        assert!(cache.load("b").is_none(), "coldest entry must go");
        assert!(cache.load("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_and_tracks_sizes() {
        let entry_bytes = falsified("x").to_json_string().len();
        let cache = ProofCache::with_limits(
            None,
            CacheLimits {
                max_entries: None,
                max_bytes: Some(2 * entry_bytes),
            },
        );
        cache.store("a", &falsified("x"));
        cache.store("b", &falsified("x"));
        assert_eq!(cache.bytes(), 2 * entry_bytes);
        cache.store("c", &falsified("x"));
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= 2 * entry_bytes);
        assert_eq!(cache.stats().evictions, 1);
        // Re-storing an existing key replaces, not duplicates, its bytes.
        cache.store("c", &falsified("x"));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_removes_the_disk_file_too() {
        let dir = std::env::temp_dir().join(format!(
            "ipcl-serve-cache-evict-test-{}",
            std::process::id()
        ));
        let cache = ProofCache::with_limits(
            Some(dir.clone()),
            CacheLimits {
                max_entries: Some(1),
                max_bytes: None,
            },
        );
        cache.store("old", &falsified("old"));
        cache.store("new", &falsified("new"));
        assert!(!dir.join("old.json").exists(), "evicted file must be gone");
        assert!(dir.join("new.json").exists());
        // The evicted entry is gone for a fresh cache over the same dir too.
        let reopened = ProofCache::new(Some(dir.clone()));
        assert!(reopened.load("old").is_none());
        assert!(reopened.load("new").is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ProofCache::new(None);
        for i in 0..100 {
            cache.store(&format!("k{i}"), &falsified("x"));
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn disk_entries_survive_a_fresh_cache() {
        let dir =
            std::env::temp_dir().join(format!("ipcl-serve-cache-test-{}", std::process::id()));
        let cache = ProofCache::new(Some(dir.clone()));
        let outcome = JobOutcome {
            property: "p".to_owned(),
            verdict: Verdict::Falsified,
            detail: "trace_frames=1".to_owned(),
            cached: true, // must be stripped in storage
            certificate: None,
            counterexample: Some(ipcl_bmc::Counterexample {
                property: "p".to_owned(),
                violation_frame: 0,
                frames: vec![std::collections::BTreeMap::new()],
            }),
        };
        cache.store("deadbeef", &outcome);
        let reopened = ProofCache::new(Some(dir.clone()));
        let loaded = reopened.load("deadbeef").expect("persisted entry");
        assert_eq!(loaded.verdict, Verdict::Falsified);
        assert!(!loaded.cached);
        let _ = fs::remove_dir_all(dir);
    }
}
