//! The revalidating proof cache.
//!
//! The cache key is a *semantic* fingerprint of the job: the canonical
//! structural digest of the netlist ([`ipcl_rtl::structural_digest`],
//! interface-pinned on the property's variables) combined with the property
//! itself (name, kind, `ok` expression text, latency). Structurally
//! identical implementations — renamed internal signals, reordered
//! declarations, different module names — therefore share entries, while
//! any semantic mutation (a dropped gate, a flipped reset value) lands in a
//! different slot.
//!
//! The digest decides where to *look*, never what to *trust*: every hit is
//! re-validated against the submitted problem before it is served — a
//! proved entry must pass [`Certificate::validate`]'s independent
//! initiation/consecution/safety SAT checks, a falsified entry must replay
//! its trace through the cycle-accurate simulator and reproduce the
//! violation. An entry that fails revalidation (hash collision, stale
//! store, renamed registers outside the interface) is treated as a miss and
//! overwritten by the fresh result, so a corrupted cache can cost time but
//! never soundness.
//!
//! Entries live in memory and, when a cache directory is configured, as
//! one `<key>.json` file per entry (the [`JobOutcome`] wire format), so a
//! restarted server keeps its warm proofs.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ipcl_bmc::SequentialProperty;
use ipcl_core::FunctionalSpec;
use ipcl_rtl::{sha256_hex, structural_digest, Netlist};
use ipcl_tracetool::json::Json;

use crate::protocol::{JobOutcome, Verdict};

/// Computes the cache key of `(netlist, property)`.
///
/// The netlist digest pins the property's variables as the interface, so
/// the digest covers exactly the logic cone the property can observe; the
/// property's own identity (name, `ok` text, latency sampling) is folded
/// in afterwards. The key is a hex SHA-256 string, usable as a filename.
pub fn cache_key(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
) -> String {
    let pool = spec.pool();
    let interface: Vec<String> = property
        .ok
        .vars()
        .into_iter()
        .map(|v| pool.name_or_fallback(v))
        .collect();
    let digest = structural_digest(netlist, &interface);
    let mut preimage = String::from("ipcl-serve-cache-v1\n");
    preimage.push_str(&digest);
    preimage.push('\n');
    preimage.push_str(&property.name);
    preimage.push('\n');
    preimage.push_str(property.kind.name());
    preimage.push('\n');
    preimage.push_str(&property.ok.display(pool).to_string());
    preimage.push('\n');
    preimage.push_str(&format!("latency_offset={}", property.latency.offset()));
    sha256_hex(preimage.as_bytes())
}

/// Re-checks a stored outcome against the *submitted* problem. Only
/// definitive verdicts are servable from cache; inconclusive entries are
/// never stored in the first place.
pub fn revalidate(
    outcome: &JobOutcome,
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
) -> bool {
    match outcome.verdict {
        Verdict::Proved => match &outcome.certificate {
            Some(certificate) => certificate
                .validate(spec, netlist, property)
                .map(|check| check.ok())
                .unwrap_or(false),
            // A proof with no certificate (k-induction) cannot be
            // independently re-established here, so it is not servable.
            None => false,
        },
        Verdict::Falsified => match &outcome.counterexample {
            Some(counterexample) => counterexample
                .replay(spec, netlist, property)
                .map(|replay| replay.violation_reproduced)
                .unwrap_or(false),
            None => false,
        },
        _ => false,
    }
}

/// Running totals of the cache (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (after revalidation).
    pub hits: u64,
    /// Lookups that ran the proof engine.
    pub misses: u64,
    /// Entries found but rejected by revalidation (counted as misses too).
    pub revalidation_failures: u64,
}

/// The shared proof cache. See the module docs.
pub struct ProofCache {
    dir: Option<PathBuf>,
    entries: Mutex<HashMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    revalidation_failures: AtomicU64,
}

impl ProofCache {
    /// An in-memory cache, optionally persisted under `dir` (created if
    /// missing; creation failure silently degrades to memory-only).
    pub fn new(dir: Option<PathBuf>) -> ProofCache {
        let dir = dir.filter(|d| fs::create_dir_all(d).is_ok());
        ProofCache {
            dir,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            revalidation_failures: AtomicU64::new(0),
        }
    }

    /// The raw stored entry for `key`, if any (memory first, then disk).
    /// This is *not* yet a hit: the caller must revalidate.
    pub fn load(&self, key: &str) -> Option<JobOutcome> {
        let text = {
            let entries = self.entries.lock().expect("cache lock");
            entries.get(key).cloned()
        }
        .or_else(|| {
            let path = self.dir.as_ref()?.join(format!("{key}.json"));
            let text = fs::read_to_string(path).ok()?;
            self.entries
                .lock()
                .expect("cache lock")
                .insert(key.to_owned(), text.clone());
            Some(text)
        })?;
        let json = Json::parse(&text).ok()?;
        JobOutcome::from_json(&json).ok()
    }

    /// Stores `outcome` under `key` (memory and, when configured, disk).
    /// Only definitive verdicts are worth storing; others are ignored.
    pub fn store(&self, key: &str, outcome: &JobOutcome) {
        if !matches!(outcome.verdict, Verdict::Proved | Verdict::Falsified) {
            return;
        }
        // Stored entries never carry the served-from-cache flag.
        let mut canonical = outcome.clone();
        canonical.cached = false;
        let text = canonical.to_json_string();
        if let Some(dir) = &self.dir {
            // Write-then-rename so readers never see a torn entry.
            let final_path = dir.join(format!("{key}.json"));
            let tmp_path = dir.join(format!("{key}.tmp"));
            if fs::write(&tmp_path, &text).is_ok() {
                let _ = fs::rename(&tmp_path, &final_path);
            }
        }
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key.to_owned(), text);
    }

    /// Records a served hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss (no entry, or entry rejected).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an entry rejected by revalidation.
    pub fn record_revalidation_failure(&self) {
        self.revalidation_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            revalidation_failures: self.revalidation_failures.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_bmc::{Latency, PropertyKind};
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

    fn problem() -> (FunctionalSpec, Netlist, SequentialProperty) {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Functional, Latency::Registered);
        (spec, synthesized.netlist().clone(), property)
    }

    #[test]
    fn key_is_stable_and_property_sensitive() {
        let (spec, netlist, property) = problem();
        let key = cache_key(&spec, &netlist, &property);
        assert_eq!(key, cache_key(&spec, &netlist, &property));
        assert_eq!(key.len(), 64);
        let other =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Registered);
        assert_ne!(key, cache_key(&spec, &netlist, &other));
        let other_latency = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        assert_ne!(key, cache_key(&spec, &netlist, &other_latency));
    }

    #[test]
    fn only_definitive_outcomes_are_stored() {
        let cache = ProofCache::new(None);
        let unknown = JobOutcome {
            property: "p".to_owned(),
            verdict: Verdict::Unknown,
            detail: String::new(),
            cached: false,
            certificate: None,
            counterexample: None,
        };
        cache.store("k", &unknown);
        assert!(cache.load("k").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn disk_entries_survive_a_fresh_cache() {
        let dir =
            std::env::temp_dir().join(format!("ipcl-serve-cache-test-{}", std::process::id()));
        let cache = ProofCache::new(Some(dir.clone()));
        let outcome = JobOutcome {
            property: "p".to_owned(),
            verdict: Verdict::Falsified,
            detail: "trace_frames=1".to_owned(),
            cached: true, // must be stripped in storage
            certificate: None,
            counterexample: Some(ipcl_bmc::Counterexample {
                property: "p".to_owned(),
                violation_frame: 0,
                frames: vec![std::collections::BTreeMap::new()],
            }),
        };
        cache.store("deadbeef", &outcome);
        let reopened = ProofCache::new(Some(dir.clone()));
        let loaded = reopened.load("deadbeef").expect("persisted entry");
        assert_eq!(loaded.verdict, Verdict::Falsified);
        assert!(!loaded.cached);
        let _ = fs::remove_dir_all(dir);
    }
}
