//! Verification-as-a-service for interlocked pipeline control logic.
//!
//! The solve stack decides one property at a time; real regression flows
//! ask the *same* questions about *almost the same* designs, thousands of
//! times a day. This crate turns the checker into a long-lived service
//! built for that shape of load:
//!
//! * [`server`] — a TCP job-queue server (line-delimited JSON over
//!   `std::net`, no external runtime) with a bounded worker pool running
//!   the portfolio checker; [`protocol`] defines the wire format, in which
//!   a job carries its whole problem (spec, netlist, property selector),
//!   keeping the server stateless across connections;
//! * [`cache`] — a persistent result cache keyed by a canonical
//!   *structural* hash of `(netlist, property)`
//!   ([`ipcl_rtl::structural_digest`]): renamed or reordered but
//!   structurally identical designs share entries, and **every hit is
//!   re-validated before it is served** — proofs through the independent
//!   certificate checker ([`ipcl_pdr::Certificate::validate`]),
//!   falsifications by replaying the stored trace through the simulator —
//!   so the digest only ever decides where to look, never what to trust;
//! * [`batch`] — a batch endpoint that groups submitted properties by
//!   shared cone of influence and settles the cheap verdicts (cache hits,
//!   bounded falsifications) on one shared encoding before anything
//!   reaches the worker pool;
//! * [`queue`] / [`pool`] — the job table with per-job cancellation tokens
//!   wired into the engines' cooperative-cancellation machinery, so client
//!   cancels and graceful shutdown interrupt in-flight solves at SAT-query
//!   boundaries;
//! * [`client`] — the thin blocking client the `ipcl-serve` binary's
//!   `submit` / `status` modes and the `exp_serve_load` benchmark use.
//!
//! # Example
//!
//! ```
//! use ipcl_serve::{Client, JobRequest, PropertyRequest, Server, ServerConfig, Verdict};
//! use ipcl_checker::ProofStrategy;
//! use ipcl_bmc::PropertyKind;
//! use ipcl_core::example::ExampleArch;
//! use ipcl_synth::synthesize_interlock;
//! use ipcl_trace::Tracer;
//!
//! let server = Server::start(ServerConfig::default(), Tracer::disabled()).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//!
//! let spec = ExampleArch::new().functional_spec();
//! let netlist = synthesize_interlock(&spec).netlist().clone();
//! let job = JobRequest {
//!     spec, netlist,
//!     property: PropertyRequest {
//!         stage_index: 0, kind: PropertyKind::Functional, latency: None,
//!     },
//!     strategy: ProofStrategy::Pdr, threads: 1,
//! };
//! let id = client.submit(&job).unwrap();
//! let outcome = client.wait(id).unwrap();
//! assert_eq!(outcome.verdict, Verdict::Proved);
//! assert!(!outcome.cached, "first ask solves");
//!
//! let warm_id = client.submit(&job).unwrap();
//! let warm = client.wait(warm_id).unwrap();
//! assert!(warm.cached, "second ask is a (re-validated) cache hit");
//! server.shutdown();
//! ```

pub mod batch;
pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod server;

pub use batch::{presolve_batch, solve_batch_inline, BatchResolution};
pub use cache::{cache_key, revalidate, CacheLimits, CacheStats, ProofCache};
pub use client::Client;
pub use pool::{process_job, WorkerPool};
pub use protocol::{JobOutcome, JobRequest, PropertyRequest, Verdict};
pub use queue::{JobQueue, JobState, QueueStats};
pub use server::{Server, ServerConfig};
