//! The bounded worker pool: claims jobs, consults the proof cache, runs the
//! proof engines, and reports server heartbeats.
//!
//! Each worker loops on [`JobQueue::claim`]. A claimed job is first looked
//! up in the [`ProofCache`]; an entry that survives revalidation (see the
//! cache docs) is served directly — the hit path never touches a proof
//! engine. On a miss the worker runs
//! [`ipcl_checker::check_property_job`] with the job's cancellation token,
//! so client `cancel` requests and server shutdown interrupt the solve at
//! the next SAT-query boundary, then stores any definitive verdict back
//! into the cache.
//!
//! Observability: workers emit rate-limited `heartbeat` events with
//! `engine: "serve"` (queue depth, running/done counts, cache hit/miss
//! totals — rendered by `ipcl-tracetool watch` as a server progress line),
//! per-job `serve.job_*` events, and the `serve.cache.*` counters /
//! `serve.queue_depth` gauge through the unified metric sink.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;

use ipcl_checker::check_property_job;
use ipcl_trace::{set_worker, Heartbeat, MetricSink, Tracer, Value};

use crate::cache::{cache_key, revalidate, ProofCache};
use crate::protocol::{JobOutcome, JobRequest};
use crate::queue::JobQueue;

/// A pool of `n` solver workers draining `queue`.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn spawn(
        workers: usize,
        queue: Arc<JobQueue>,
        cache: Arc<ProofCache>,
        tracer: Tracer,
    ) -> WorkerPool {
        let handles = (0..workers.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let tracer = tracer.clone();
                std::thread::Builder::new()
                    .name(format!("ipcl-serve-worker-{worker}"))
                    .spawn(move || {
                        set_worker(Some(worker as u64));
                        let mut heartbeat = Heartbeat::every_ms(200);
                        while let Some((id, request, cancel)) = queue.claim() {
                            beat(&tracer, &mut heartbeat, &queue, &cache);
                            let outcome = process_job(&request, &cancel, &cache, &tracer);
                            tracer.event(
                                "serve.job_done",
                                &[
                                    ("id", Value::U64(id)),
                                    ("verdict", Value::from(outcome.verdict.name())),
                                    ("cached", Value::Bool(outcome.cached)),
                                ],
                            );
                            queue.finish(id, outcome);
                            beat(&tracer, &mut heartbeat, &queue, &cache);
                        }
                        set_worker(None);
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Joins every worker (they drain once the queue shuts down).
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn beat(tracer: &Tracer, heartbeat: &mut Heartbeat, queue: &JobQueue, cache: &ProofCache) {
    let stats = queue.stats();
    tracer.gauge("serve.queue_depth", stats.queued as f64);
    if !heartbeat.due(tracer) {
        return;
    }
    let cache_stats = cache.stats();
    tracer.event(
        "heartbeat",
        &[
            ("engine", Value::from("serve")),
            ("queued", Value::U64(stats.queued)),
            ("running", Value::U64(stats.running)),
            ("done", Value::U64(stats.done)),
            ("hits", Value::U64(cache_stats.hits)),
            ("misses", Value::U64(cache_stats.misses)),
            ("evictions", Value::U64(cache_stats.evictions)),
            ("entries", Value::U64(cache.len() as u64)),
        ],
    );
}

/// Decides one job: cache hit (revalidated) or a fresh engine run. Public
/// so the batch pre-solver and in-process tests share the exact code path
/// the workers use.
pub fn process_job(
    request: &JobRequest,
    cancel: &AtomicBool,
    cache: &ProofCache,
    tracer: &Tracer,
) -> JobOutcome {
    let property = match request.resolve_property() {
        Ok(property) => property,
        Err(message) => return JobOutcome::error("", message),
    };
    let key = cache_key(&request.spec, &request.netlist, &property);

    if let Some(stored) = cache.load(&key) {
        if stored.property == property.name
            && revalidate(&stored, &request.spec, &request.netlist, &property)
        {
            cache.record_hit();
            tracer.counter("serve.cache.hits", 1);
            tracer.event(
                "serve.cache_hit",
                &[("verdict", Value::from(stored.verdict.name()))],
            );
            let mut served = stored;
            served.cached = true;
            return served;
        }
        cache.record_revalidation_failure();
        tracer.counter("serve.cache.revalidation_failures", 1);
        tracer.event("serve.cache_revalidation_failed", &[]);
    }
    cache.record_miss();
    tracer.counter("serve.cache.misses", 1);

    let options = request.options();
    let outcome = match check_property_job(
        &request.spec,
        &request.netlist,
        &property,
        &options,
        Some(cancel),
        tracer,
    ) {
        Ok((result, certificate)) => JobOutcome::from_result(
            &result,
            certificate,
            cancel.load(std::sync::atomic::Ordering::Relaxed),
        ),
        Err(error) => JobOutcome::error(&property.name, error.to_string()),
    };
    cache.store(&key, &outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{PropertyRequest, Verdict};
    use ipcl_bmc::PropertyKind;
    use ipcl_checker::ProofStrategy;
    use ipcl_core::example::ExampleArch;
    use ipcl_pipesim::BrokenVariant;
    use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock_with, SynthesisOptions};

    fn correct_job(stage_index: usize) -> JobRequest {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        JobRequest {
            spec,
            netlist: synthesized.netlist().clone(),
            property: PropertyRequest {
                stage_index,
                kind: PropertyKind::Functional,
                latency: None,
            },
            strategy: ProofStrategy::Pdr,
            threads: 1,
        }
    }

    #[test]
    fn miss_then_hit_with_identical_payload() {
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let cancel = AtomicBool::new(false);
        let job = correct_job(0);
        let cold = process_job(&job, &cancel, &cache, &tracer);
        assert_eq!(cold.verdict, Verdict::Proved);
        assert!(!cold.cached);
        let warm = process_job(&job, &cancel, &cache, &tracer);
        assert_eq!(warm.verdict, Verdict::Proved);
        assert!(warm.cached, "second submission must hit the cache");
        // Bit-identical payloads modulo the cached flag.
        let mut warm_as_cold = warm.clone();
        warm_as_cold.cached = false;
        assert_eq!(warm_as_cold.to_json_string(), cold.to_json_string());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn falsified_jobs_cache_and_replay() {
        let spec = ExampleArch::new().functional_spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
        // Find a stage the break falsifies.
        let cache = ProofCache::new(None);
        let tracer = Tracer::disabled();
        let cancel = AtomicBool::new(false);
        let mut hit_checked = false;
        for stage_index in 0..spec.stages().len() {
            let job = JobRequest {
                spec: spec.clone(),
                netlist: broken.netlist().clone(),
                property: PropertyRequest {
                    stage_index,
                    kind: PropertyKind::Functional,
                    latency: None,
                },
                strategy: ProofStrategy::Pdr,
                threads: 1,
            };
            let cold = process_job(&job, &cancel, &cache, &tracer);
            if cold.verdict != Verdict::Falsified {
                continue;
            }
            let warm = process_job(&job, &cancel, &cache, &tracer);
            assert_eq!(warm.verdict, Verdict::Falsified);
            assert!(warm.cached);
            assert_eq!(
                warm.counterexample.as_ref().unwrap().to_json_string(),
                cold.counterexample.as_ref().unwrap().to_json_string()
            );
            hit_checked = true;
            break;
        }
        assert!(hit_checked, "the broken variant must falsify some stage");
    }

    #[test]
    fn pool_drains_queue_and_joins_at_shutdown() {
        let queue = Arc::new(JobQueue::new());
        let cache = Arc::new(ProofCache::new(None));
        let pool = WorkerPool::spawn(
            2,
            Arc::clone(&queue),
            Arc::clone(&cache),
            Tracer::disabled(),
        );
        let ids: Vec<u64> = (0..3)
            .map(|i| queue.submit(Arc::new(correct_job(i))))
            .collect();
        for id in ids {
            assert_eq!(queue.wait(id).unwrap().verdict, Verdict::Proved);
        }
        queue.shutdown();
        pool.join();
    }
}
