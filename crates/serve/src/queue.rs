//! The bounded job queue shared by connection handlers and the worker pool.
//!
//! One mutex-guarded state table plus two condition variables: `work` wakes
//! idle workers when a job arrives (or at shutdown), `done` wakes `wait`ers
//! when a job finishes. Every job carries its own cancellation token — the
//! same `AtomicBool` the proof engines poll between SAT queries
//! (`check_property_job`'s cooperative-cancellation plumbing) — so both a
//! client `cancel` and a server shutdown stop in-flight solves at the next
//! query boundary rather than at the end of the job.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::protocol::{JobOutcome, JobRequest, Verdict};

/// Lifecycle state of a job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Submitted, not yet claimed by a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; the outcome is available.
    Done,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

struct JobRecord {
    request: Arc<JobRequest>,
    state: JobState,
    cancel: Arc<AtomicBool>,
    outcome: Option<JobOutcome>,
}

#[derive(Default)]
struct QueueState {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    shutdown: bool,
}

/// Counts of jobs per lifecycle state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs submitted but not yet claimed.
    pub queued: u64,
    /// Jobs currently being solved.
    pub running: u64,
    /// Jobs finished.
    pub done: u64,
}

/// The shared job queue. See the module docs.
#[derive(Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    work: Condvar,
    done: Condvar,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Enqueues a job; returns its id. After shutdown the job is recorded
    /// as immediately cancelled instead of queued.
    pub fn submit(&self, request: Arc<JobRequest>) -> u64 {
        let mut state = self.state.lock().expect("queue lock");
        let id = state.next_id;
        state.next_id += 1;
        if state.shutdown {
            let property = request
                .resolve_property()
                .map(|p| p.name)
                .unwrap_or_default();
            state.jobs.insert(
                id,
                JobRecord {
                    request,
                    state: JobState::Done,
                    cancel: Arc::new(AtomicBool::new(true)),
                    outcome: Some(canceled_outcome(&property, "server shutting down")),
                },
            );
        } else {
            state.jobs.insert(
                id,
                JobRecord {
                    request,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    outcome: None,
                },
            );
            state.pending.push_back(id);
            self.work.notify_one();
        }
        id
    }

    /// Records an already-finished job (the batch pre-solver's fast path);
    /// returns its id.
    pub fn submit_resolved(&self, request: Arc<JobRequest>, outcome: JobOutcome) -> u64 {
        let mut state = self.state.lock().expect("queue lock");
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobRecord {
                request,
                state: JobState::Done,
                cancel: Arc::new(AtomicBool::new(false)),
                outcome: Some(outcome),
            },
        );
        self.done.notify_all();
        id
    }

    /// Blocks until a job is available and claims it, or returns `None` at
    /// shutdown. A job cancelled while still queued is finished on the spot
    /// (with a [`Verdict::Canceled`] outcome) rather than handed out.
    pub fn claim(&self) -> Option<(u64, Arc<JobRequest>, Arc<AtomicBool>)> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            while let Some(id) = state.pending.pop_front() {
                let record = state.jobs.get_mut(&id).expect("pending job exists");
                if record.cancel.load(Ordering::Relaxed) {
                    record.state = JobState::Done;
                    let property = record
                        .request
                        .resolve_property()
                        .map(|p| p.name)
                        .unwrap_or_default();
                    record.outcome = Some(canceled_outcome(&property, "canceled while queued"));
                    self.done.notify_all();
                    continue;
                }
                record.state = JobState::Running;
                return Some((id, Arc::clone(&record.request), Arc::clone(&record.cancel)));
            }
            if state.shutdown {
                return None;
            }
            state = self.work.wait(state).expect("queue lock");
        }
    }

    /// Records the outcome of a claimed job and wakes `wait`ers.
    pub fn finish(&self, id: u64, outcome: JobOutcome) {
        let mut state = self.state.lock().expect("queue lock");
        if let Some(record) = state.jobs.get_mut(&id) {
            record.state = JobState::Done;
            record.outcome = Some(outcome);
        }
        self.done.notify_all();
    }

    /// Requests cancellation of a job. Returns `false` for unknown ids and
    /// for jobs that already finished.
    pub fn cancel(&self, id: u64) -> bool {
        let state = self.state.lock().expect("queue lock");
        match state.jobs.get(&id) {
            Some(record) if record.state != JobState::Done => {
                record.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The state and (when done) outcome of a job.
    pub fn status(&self, id: u64) -> Option<(JobState, Option<JobOutcome>)> {
        let state = self.state.lock().expect("queue lock");
        state
            .jobs
            .get(&id)
            .map(|record| (record.state, record.outcome.clone()))
    }

    /// Blocks until the job finishes and returns its outcome. `None` for
    /// unknown ids or when the queue shuts down before the job finishes
    /// (shutdown cancels and finishes every job, so this is rare).
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(record) if record.state == JobState::Done => return record.outcome.clone(),
                Some(_) if state.shutdown => return None,
                Some(_) => state = self.done.wait(state).expect("queue lock"),
            }
        }
    }

    /// Initiates shutdown: flags every unfinished job's cancellation token,
    /// finishes still-queued jobs as cancelled, and wakes every waiter.
    /// Workers drain out of [`JobQueue::claim`] with `None`.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.shutdown = true;
        let pending: Vec<u64> = state.pending.drain(..).collect();
        for id in pending {
            if let Some(record) = state.jobs.get_mut(&id) {
                record.cancel.store(true, Ordering::Relaxed);
                record.state = JobState::Done;
                let property = record
                    .request
                    .resolve_property()
                    .map(|p| p.name)
                    .unwrap_or_default();
                record.outcome = Some(canceled_outcome(&property, "server shutting down"));
            }
        }
        for record in state.jobs.values() {
            if record.state != JobState::Done {
                record.cancel.store(true, Ordering::Relaxed);
            }
        }
        self.work.notify_all();
        self.done.notify_all();
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().expect("queue lock").shutdown
    }

    /// Per-state job counts.
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("queue lock");
        let mut stats = QueueStats::default();
        for record in state.jobs.values() {
            match record.state {
                JobState::Queued => stats.queued += 1,
                JobState::Running => stats.running += 1,
                JobState::Done => stats.done += 1,
            }
        }
        stats
    }
}

fn canceled_outcome(property: &str, detail: &str) -> JobOutcome {
    JobOutcome {
        property: property.to_owned(),
        verdict: Verdict::Canceled,
        detail: detail.to_owned(),
        cached: false,
        certificate: None,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PropertyRequest;
    use ipcl_bmc::PropertyKind;
    use ipcl_checker::ProofStrategy;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::synthesize_interlock;

    fn request() -> Arc<JobRequest> {
        let spec = ExampleArch::new().functional_spec();
        let netlist = synthesize_interlock(&spec).netlist().clone();
        Arc::new(JobRequest {
            spec,
            netlist,
            property: PropertyRequest {
                stage_index: 0,
                kind: PropertyKind::Functional,
                latency: None,
            },
            strategy: ProofStrategy::Pdr,
            threads: 1,
        })
    }

    #[test]
    fn submit_claim_finish_wait() {
        let queue = JobQueue::new();
        let id = queue.submit(request());
        assert_eq!(queue.status(id).unwrap().0, JobState::Queued);
        let (claimed, _, cancel) = queue.claim().unwrap();
        assert_eq!(claimed, id);
        assert!(!cancel.load(Ordering::Relaxed));
        assert_eq!(queue.status(id).unwrap().0, JobState::Running);
        queue.finish(id, canceled_outcome("p", "test"));
        let outcome = queue.wait(id).unwrap();
        assert_eq!(outcome.verdict, Verdict::Canceled);
        assert_eq!(queue.stats().done, 1);
    }

    #[test]
    fn cancel_before_claim_short_circuits() {
        let queue = JobQueue::new();
        let id = queue.submit(request());
        assert!(queue.cancel(id));
        let other = queue.submit(request());
        // The cancelled job is finished inline; the claim returns the next.
        let (claimed, _, _) = queue.claim().unwrap();
        assert_eq!(claimed, other);
        assert_eq!(queue.wait(id).unwrap().verdict, Verdict::Canceled);
        assert!(!queue.cancel(id), "already done");
        assert!(!queue.cancel(999), "unknown id");
    }

    #[test]
    fn shutdown_drains_workers_and_cancels_queued_jobs() {
        let queue = Arc::new(JobQueue::new());
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.claim())
        };
        let queued = queue.submit(request());
        let (id, _, cancel) = {
            // Let the worker or this thread claim; either way one job runs.
            match worker.join().unwrap() {
                Some(claim) => claim,
                None => panic!("worker drained before shutdown"),
            }
        };
        assert_eq!(id, queued);
        let unclaimed = queue.submit(request());
        queue.shutdown();
        assert!(cancel.load(Ordering::Relaxed), "running job flagged");
        assert_eq!(queue.wait(unclaimed).unwrap().verdict, Verdict::Canceled);
        assert!(queue.claim().is_none(), "workers drain at shutdown");
        let late = queue.submit(request());
        assert_eq!(queue.wait(late).unwrap().verdict, Verdict::Canceled);
    }
}
