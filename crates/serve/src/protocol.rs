//! The line-delimited JSON wire protocol of the verification service.
//!
//! Every request and response is one JSON object on one line. A job ships
//! the *whole problem* — functional specification, netlist and a property
//! selector — so the server is stateless across connections and the result
//! cache can key on the problem's structure alone:
//!
//! ```json
//! {"cmd": "submit", "job": {
//!    "spec": {"stages": [{"pipe": "long", "stage": 4,
//!                          "rules": [{"label": "bus", "condition": "c.gnt"}]}]},
//!    "netlist": {"name": "m",
//!                "signals": [{"name": "a", "kind": "input"}, ...],
//!                "outputs": [3]},
//!    "property": {"stage_index": 0, "kind": "performance", "latency": "auto"},
//!    "strategy": "portfolio", "threads": 1}}
//! ```
//!
//! Stall-rule conditions travel as text in the `ipcl-expr` surface syntax
//! (the printed form round-trips through `parse_expr`); netlist signals
//! travel in declaration order and reference each other by index, which the
//! builder API reproduces exactly — including the auto-suffixing of
//! duplicate names, since serialised names are already unique.
//!
//! The same module holds the storage format of the proof cache: a
//! [`JobOutcome`] embeds the certificate / counterexample JSON emitted by
//! [`Certificate::to_json_string`] and
//! [`ipcl_bmc::Counterexample::to_json_string`], and [`JobOutcome::from_json`]
//! is the matching parser.

use std::collections::BTreeMap;

use ipcl_bmc::{BmcOutcome, BmcResult, Counterexample, Latency, PropertyKind, SequentialProperty};
use ipcl_checker::{ProofStrategy, SequentialOptions};
use ipcl_core::model::StageRef;
use ipcl_core::{FunctionalSpec, FunctionalSpecBuilder};
use ipcl_pdr::{Certificate, StateLiteral};
use ipcl_rtl::{Gate, Netlist, SignalId, SignalKind};
use ipcl_tracetool::json::{write_json_string, Json};

/// Which property of the specification a job asks about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropertyRequest {
    /// Index into [`FunctionalSpec::stages`].
    pub stage_index: usize,
    /// Spec direction.
    pub kind: PropertyKind,
    /// Sampling discipline; `None` auto-detects from the netlist
    /// ([`Latency::detect`]).
    pub latency: Option<Latency>,
}

/// One verification job: the complete problem plus engine knobs.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The functional specification.
    pub spec: FunctionalSpec,
    /// The implementation under check.
    pub netlist: Netlist,
    /// Which property to decide.
    pub property: PropertyRequest,
    /// Proof engine. Note that only [`ProofStrategy::Pdr`] with
    /// `threads == 1` yields certificates that are deterministic across
    /// submissions (a portfolio race's winner is timing-dependent).
    pub strategy: ProofStrategy,
    /// Worker threads of the proof engine (see
    /// [`SequentialOptions::threads`]).
    pub threads: usize,
}

impl JobRequest {
    /// Resolves the property selector against the spec and netlist.
    ///
    /// # Errors
    ///
    /// When the stage index is out of range.
    pub fn resolve_property(&self) -> Result<SequentialProperty, String> {
        if self.property.stage_index >= self.spec.stages().len() {
            return Err(format!(
                "stage_index {} out of range ({} stages)",
                self.property.stage_index,
                self.spec.stages().len()
            ));
        }
        let latency = self
            .property
            .latency
            .unwrap_or_else(|| Latency::detect(&self.spec, &self.netlist));
        Ok(SequentialProperty::for_stage(
            &self.spec,
            self.property.stage_index,
            self.property.kind,
            latency,
        ))
    }

    /// The checker options implied by the job's engine knobs.
    pub fn options(&self) -> SequentialOptions {
        SequentialOptions {
            strategy: self.strategy,
            threads: self.threads.max(1),
            ..Default::default()
        }
    }

    /// Serialises the job as one JSON object (the `"job"` payload of a
    /// `submit` request).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"spec\": ");
        write_spec_json(&mut out, &self.spec);
        out.push_str(", \"netlist\": ");
        write_netlist_json(&mut out, &self.netlist);
        out.push_str(&format!(
            ", \"property\": {{\"stage_index\": {}, \"kind\": \"{}\", \"latency\": \"{}\"}}",
            self.property.stage_index,
            self.property.kind.name(),
            match self.property.latency {
                None => "auto",
                Some(Latency::Combinational) => "combinational",
                Some(Latency::Registered) => "registered",
            }
        ));
        out.push_str(&format!(
            ", \"strategy\": \"{}\", \"threads\": {}}}",
            strategy_name(self.strategy),
            self.threads
        ));
        out
    }

    /// Parses the `"job"` payload of a `submit` request.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn from_json(json: &Json) -> Result<JobRequest, String> {
        let spec = parse_spec(json.get("spec").ok_or("job misses 'spec'")?)?;
        let netlist = parse_netlist(json.get("netlist").ok_or("job misses 'netlist'")?)?;
        let property = json.get("property").ok_or("job misses 'property'")?;
        let stage_index = property
            .get("stage_index")
            .and_then(Json::as_u64)
            .ok_or("property misses 'stage_index'")? as usize;
        let kind = match property.get("kind").and_then(Json::as_str) {
            Some("functional") => PropertyKind::Functional,
            Some("performance") => PropertyKind::Performance,
            Some("combined") => PropertyKind::Combined,
            other => return Err(format!("bad property kind {other:?}")),
        };
        let latency = match property.get("latency").and_then(Json::as_str) {
            None | Some("auto") => None,
            Some("combinational") => Some(Latency::Combinational),
            Some("registered") => Some(Latency::Registered),
            Some(other) => return Err(format!("bad latency '{other}'")),
        };
        let strategy = match json.get("strategy").and_then(Json::as_str) {
            None | Some("portfolio") => ProofStrategy::Portfolio,
            Some("pdr") => ProofStrategy::Pdr,
            Some("kinduction") => ProofStrategy::KInduction,
            Some(other) => return Err(format!("bad strategy '{other}'")),
        };
        let threads = json.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize;
        Ok(JobRequest {
            spec,
            netlist,
            property: PropertyRequest {
                stage_index,
                kind,
                latency,
            },
            strategy,
            threads,
        })
    }
}

fn strategy_name(strategy: ProofStrategy) -> &'static str {
    match strategy {
        ProofStrategy::KInduction => "kinduction",
        ProofStrategy::Pdr => "pdr",
        ProofStrategy::Portfolio => "portfolio",
    }
}

/// Appends the spec as `{"stages": [...]}` with rule conditions in the
/// textual syntax.
pub fn write_spec_json(out: &mut String, spec: &FunctionalSpec) {
    out.push_str("{\"stages\": [");
    for (i, stage) in spec.stages().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"pipe\": ");
        write_json_string(out, &stage.stage.pipe);
        out.push_str(&format!(", \"stage\": {}, \"rules\": [", stage.stage.stage));
        for (j, rule) in stage.rules.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"label\": ");
            write_json_string(out, &rule.label);
            out.push_str(", \"condition\": ");
            write_json_string(out, &rule.condition.display(spec.pool()).to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Parses a spec serialised by [`write_spec_json`]: stages are declared
/// first (so cross-stage `.moe` references resolve), then the rules.
pub fn parse_spec(json: &Json) -> Result<FunctionalSpec, String> {
    let stages = json
        .get("stages")
        .and_then(Json::as_array)
        .ok_or("spec misses 'stages'")?;
    let mut builder = FunctionalSpecBuilder::new();
    let mut refs = Vec::with_capacity(stages.len());
    for stage in stages {
        let pipe = stage
            .get("pipe")
            .and_then(Json::as_str)
            .ok_or("stage misses 'pipe'")?;
        let index = stage
            .get("stage")
            .and_then(Json::as_u64)
            .ok_or("stage misses 'stage'")? as u32;
        let stage_ref = StageRef::new(pipe, index);
        builder
            .declare_stage(stage_ref.clone())
            .map_err(|e| e.to_string())?;
        refs.push(stage_ref);
    }
    for (stage, stage_ref) in stages.iter().zip(&refs) {
        let rules = stage
            .get("rules")
            .and_then(Json::as_array)
            .ok_or("stage misses 'rules'")?;
        for rule in rules {
            let label = rule
                .get("label")
                .and_then(Json::as_str)
                .ok_or("rule misses 'label'")?;
            let condition = rule
                .get("condition")
                .and_then(Json::as_str)
                .ok_or("rule misses 'condition'")?;
            builder
                .stall_rule_text(stage_ref, label, condition)
                .map_err(|e| e.to_string())?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Appends the netlist as `{"name", "signals": [...], "outputs": [...]}`
/// with signals in declaration order referencing each other by index.
pub fn write_netlist_json(out: &mut String, netlist: &Netlist) {
    out.push_str("{\"name\": ");
    write_json_string(out, netlist.name());
    out.push_str(", \"signals\": [");
    for (id, signal) in netlist.iter() {
        if id.index() > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        write_json_string(out, &signal.name);
        match &signal.kind {
            SignalKind::Input => out.push_str(", \"kind\": \"input\"}"),
            SignalKind::Register { init, next } => {
                out.push_str(&format!(", \"kind\": \"register\", \"init\": {init}"));
                match next {
                    Some(next) => out.push_str(&format!(", \"next\": {}}}", next.index())),
                    None => out.push_str(", \"next\": null}"),
                }
            }
            SignalKind::Wire(gate) => {
                out.push_str(", \"kind\": \"wire\", ");
                match gate {
                    Gate::Const(v) => out.push_str(&format!("\"op\": \"const\", \"value\": {v}}}")),
                    Gate::Buf(a) => {
                        out.push_str(&format!("\"op\": \"buf\", \"a\": {}}}", a.index()))
                    }
                    Gate::Not(a) => {
                        out.push_str(&format!("\"op\": \"not\", \"a\": {}}}", a.index()))
                    }
                    Gate::And(ops) => {
                        out.push_str("\"op\": \"and\", \"args\": [");
                        push_indices(out, ops);
                        out.push_str("]}");
                    }
                    Gate::Or(ops) => {
                        out.push_str("\"op\": \"or\", \"args\": [");
                        push_indices(out, ops);
                        out.push_str("]}");
                    }
                    Gate::Xor(a, b) => out.push_str(&format!(
                        "\"op\": \"xor\", \"a\": {}, \"b\": {}}}",
                        a.index(),
                        b.index()
                    )),
                    Gate::Mux { sel, high, low } => out.push_str(&format!(
                        "\"op\": \"mux\", \"sel\": {}, \"high\": {}, \"low\": {}}}",
                        sel.index(),
                        high.index(),
                        low.index()
                    )),
                }
            }
        }
    }
    out.push_str("], \"outputs\": [");
    for (i, output) in netlist.outputs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&output.index().to_string());
    }
    out.push_str("]}");
}

fn push_indices(out: &mut String, ids: &[SignalId]) {
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&id.index().to_string());
    }
}

/// Parses a netlist serialised by [`write_netlist_json`], rebuilding it
/// through the builder API (signal ids are private). Combinational gates
/// may only reference earlier signals — which every builder-constructed
/// netlist satisfies, since gate inputs are ids that existed at wire
/// creation; register `next` edges connect in a second pass and may point
/// anywhere.
pub fn parse_netlist(json: &Json) -> Result<Netlist, String> {
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or("netlist misses 'name'")?;
    let signals = json
        .get("signals")
        .and_then(Json::as_array)
        .ok_or("netlist misses 'signals'")?;
    let mut netlist = Netlist::new(name);
    let mut ids: Vec<SignalId> = Vec::with_capacity(signals.len());
    // (register position, next index) edges to connect after all signals
    // exist.
    let mut register_edges: Vec<(usize, usize)> = Vec::new();
    for (position, signal) in signals.iter().enumerate() {
        let name = signal
            .get("name")
            .and_then(Json::as_str)
            .ok_or("signal misses 'name'")?;
        // Earlier-only references for combinational gates.
        let backward = |field: &Json| -> Result<SignalId, String> {
            let index = field
                .as_u64()
                .ok_or_else(|| format!("signal '{name}': non-integer operand"))?
                as usize;
            if index >= position {
                return Err(format!(
                    "signal '{name}': forward gate reference to index {index}"
                ));
            }
            Ok(ids[index])
        };
        let operand = |key: &str| -> Result<SignalId, String> {
            backward(
                signal
                    .get(key)
                    .ok_or_else(|| format!("signal '{name}': missing '{key}'"))?,
            )
        };
        let id = match signal.get("kind").and_then(Json::as_str) {
            Some("input") => netlist.input(name),
            Some("register") => {
                let init = signal
                    .get("init")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| format!("register '{name}': missing 'init'"))?;
                match signal.get("next") {
                    None | Some(Json::Null) => {}
                    Some(next) => {
                        let index = next
                            .as_u64()
                            .ok_or_else(|| format!("register '{name}': non-integer 'next'"))?
                            as usize;
                        if index >= signals.len() {
                            return Err(format!("register '{name}': next index out of range"));
                        }
                        register_edges.push((position, index));
                    }
                }
                netlist.register(name, init)
            }
            Some("wire") => {
                let gate = match signal.get("op").and_then(Json::as_str) {
                    Some("const") => Gate::Const(
                        signal
                            .get("value")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| format!("const '{name}': missing 'value'"))?,
                    ),
                    Some("buf") => Gate::Buf(operand("a")?),
                    Some("not") => Gate::Not(operand("a")?),
                    Some("and") | Some("or") => {
                        let args = signal
                            .get("args")
                            .and_then(Json::as_array)
                            .ok_or_else(|| format!("gate '{name}': missing 'args'"))?;
                        let ops = args
                            .iter()
                            .map(backward)
                            .collect::<Result<Vec<SignalId>, String>>()?;
                        if signal.get("op").and_then(Json::as_str) == Some("and") {
                            Gate::And(ops)
                        } else {
                            Gate::Or(ops)
                        }
                    }
                    Some("xor") => Gate::Xor(operand("a")?, operand("b")?),
                    Some("mux") => Gate::Mux {
                        sel: operand("sel")?,
                        high: operand("high")?,
                        low: operand("low")?,
                    },
                    other => return Err(format!("wire '{name}': bad op {other:?}")),
                };
                netlist.wire(name, gate)
            }
            other => return Err(format!("signal '{name}': bad kind {other:?}")),
        };
        if netlist.signal(id).name != name {
            // add_signal auto-suffixed, i.e. the serialised names were not
            // unique — the source was not a builder-produced netlist.
            return Err(format!("duplicate signal name '{name}'"));
        }
        ids.push(id);
    }
    for (register, next) in register_edges {
        netlist
            .connect_register(ids[register], ids[next])
            .map_err(|e| e.to_string())?;
    }
    if let Some(outputs) = json.get("outputs").and_then(Json::as_array) {
        for output in outputs {
            let index = output.as_u64().ok_or("non-integer output index")? as usize;
            if index >= ids.len() {
                return Err(format!("output index {index} out of range"));
            }
            netlist.mark_output(ids[index]);
        }
    }
    Ok(netlist)
}

/// The verdict of a finished job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The property holds on every cycle (certificate / induction proof).
    Proved,
    /// The property fails; the outcome carries a replayable trace.
    Falsified,
    /// No verdict within the engine's bounds.
    Unknown,
    /// The job was cancelled before a verdict.
    Canceled,
    /// The job could not run (bad netlist, missing signals, …).
    Error,
}

impl Verdict {
    /// Wire name of the verdict.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Falsified => "falsified",
            Verdict::Unknown => "unknown",
            Verdict::Canceled => "canceled",
            Verdict::Error => "error",
        }
    }

    fn parse(name: &str) -> Result<Verdict, String> {
        match name {
            "proved" => Ok(Verdict::Proved),
            "falsified" => Ok(Verdict::Falsified),
            "unknown" => Ok(Verdict::Unknown),
            "canceled" => Ok(Verdict::Canceled),
            "error" => Ok(Verdict::Error),
            other => Err(format!("bad verdict '{other}'")),
        }
    }
}

/// The result of one job, as served to clients and as stored in the proof
/// cache (with `cached: false`; the flag is flipped when an entry is served
/// from the cache).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Name of the checked property.
    pub property: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Engine detail (`"depth=3"`, `"depth_checked=10"`, an error message).
    pub detail: String,
    /// Whether this result was served from the proof cache.
    pub cached: bool,
    /// The inductive invariant, when proved by PDR.
    pub certificate: Option<Certificate>,
    /// The falsifying trace, when falsified.
    pub counterexample: Option<Counterexample>,
}

impl JobOutcome {
    /// An [`Verdict::Error`] outcome with a message.
    pub fn error(property: &str, message: String) -> JobOutcome {
        JobOutcome {
            property: property.to_owned(),
            verdict: Verdict::Error,
            detail: message,
            cached: false,
            certificate: None,
            counterexample: None,
        }
    }

    /// Folds a checker result (and the certificate `check_property_job`
    /// returns alongside) into an outcome. `canceled` downgrades an
    /// inconclusive verdict — a cancelled run that still *finished* with a
    /// proof or a trace keeps its verdict.
    pub fn from_result(
        result: &BmcResult,
        certificate: Option<Certificate>,
        canceled: bool,
    ) -> JobOutcome {
        let (verdict, detail, counterexample) = match &result.outcome {
            BmcOutcome::Falsified(cex) => (
                Verdict::Falsified,
                format!("trace_frames={}", cex.length()),
                Some(cex.clone()),
            ),
            BmcOutcome::Proved { induction_depth } => {
                (Verdict::Proved, format!("depth={induction_depth}"), None)
            }
            BmcOutcome::Unknown { depth_checked } => (
                if canceled {
                    Verdict::Canceled
                } else {
                    Verdict::Unknown
                },
                format!("depth_checked={depth_checked}"),
                None,
            ),
        };
        JobOutcome {
            property: result.property.name.clone(),
            verdict,
            detail,
            cached: false,
            certificate: if verdict == Verdict::Proved {
                certificate
            } else {
                None
            },
            counterexample,
        }
    }

    /// Serialises the outcome as one JSON object.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"property\": ");
        write_json_string(&mut out, &self.property);
        out.push_str(&format!(", \"verdict\": \"{}\"", self.verdict.name()));
        out.push_str(", \"detail\": ");
        write_json_string(&mut out, &self.detail);
        out.push_str(&format!(", \"cached\": {}", self.cached));
        if let Some(certificate) = &self.certificate {
            out.push_str(", \"certificate\": ");
            out.push_str(&certificate.to_json_string());
        }
        if let Some(counterexample) = &self.counterexample {
            out.push_str(", \"counterexample\": ");
            out.push_str(&counterexample.to_json_string());
        }
        out.push('}');
        out
    }

    /// Parses an outcome serialised by [`JobOutcome::to_json_string`].
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn from_json(json: &Json) -> Result<JobOutcome, String> {
        let property = json
            .get("property")
            .and_then(Json::as_str)
            .ok_or("outcome misses 'property'")?
            .to_owned();
        let verdict = Verdict::parse(
            json.get("verdict")
                .and_then(Json::as_str)
                .ok_or("outcome misses 'verdict'")?,
        )?;
        let detail = json
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        let cached = json.get("cached").and_then(Json::as_bool).unwrap_or(false);
        let certificate = json.get("certificate").map(parse_certificate).transpose()?;
        let counterexample = json
            .get("counterexample")
            .map(parse_counterexample)
            .transpose()?;
        Ok(JobOutcome {
            property,
            verdict,
            detail,
            cached,
            certificate,
            counterexample,
        })
    }
}

/// Parses the JSON emitted by [`Certificate::to_json_string`].
pub fn parse_certificate(json: &Json) -> Result<Certificate, String> {
    let property = json
        .get("property")
        .and_then(Json::as_str)
        .ok_or("certificate misses 'property'")?
        .to_owned();
    let mut clauses = Vec::new();
    for clause in json
        .get("clauses")
        .and_then(Json::as_array)
        .ok_or("certificate misses 'clauses'")?
    {
        let lits = clause.as_array().ok_or("certificate clause not an array")?;
        let mut parsed = Vec::with_capacity(lits.len());
        for lit in lits {
            parsed.push(StateLiteral {
                register: lit
                    .get("register")
                    .and_then(Json::as_str)
                    .ok_or("literal misses 'register'")?
                    .to_owned(),
                positive: lit
                    .get("positive")
                    .and_then(Json::as_bool)
                    .ok_or("literal misses 'positive'")?,
            });
        }
        clauses.push(parsed);
    }
    Ok(Certificate { property, clauses })
}

/// Parses the JSON emitted by [`ipcl_bmc::Counterexample::to_json_string`].
pub fn parse_counterexample(json: &Json) -> Result<Counterexample, String> {
    let property = json
        .get("property")
        .and_then(Json::as_str)
        .ok_or("counterexample misses 'property'")?
        .to_owned();
    let violation_frame = json
        .get("violation_frame")
        .and_then(Json::as_u64)
        .ok_or("counterexample misses 'violation_frame'")? as usize;
    let mut frames = Vec::new();
    for frame in json
        .get("frames")
        .and_then(Json::as_array)
        .ok_or("counterexample misses 'frames'")?
    {
        let members = frame.as_object().ok_or("trace frame not an object")?;
        let mut values = BTreeMap::new();
        for (name, value) in members {
            values.insert(
                name.clone(),
                value
                    .as_bool()
                    .ok_or_else(|| format!("non-boolean trace value for '{name}'"))?,
            );
        }
        frames.push(values);
    }
    Ok(Counterexample {
        property,
        violation_frame,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

    fn roundtrip_job() -> JobRequest {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        JobRequest {
            spec,
            netlist: synthesized.netlist().clone(),
            property: PropertyRequest {
                stage_index: 2,
                kind: PropertyKind::Performance,
                latency: None,
            },
            strategy: ProofStrategy::Pdr,
            threads: 1,
        }
    }

    #[test]
    fn job_roundtrips_through_json() {
        let job = roundtrip_job();
        let text = job.to_json_string();
        let parsed = JobRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
        // The rebuilt netlist is structurally identical (same signals in the
        // same order with the same names).
        assert_eq!(parsed.netlist, job.netlist);
        assert_eq!(parsed.property, job.property);
        assert_eq!(parsed.strategy, job.strategy);
        // And the spec produces the same property expression.
        let original = job.resolve_property().unwrap();
        let reparsed = parsed.resolve_property().unwrap();
        assert_eq!(original.name, reparsed.name);
        assert_eq!(original.latency, reparsed.latency);
        assert_eq!(
            original.ok.display(job.spec.pool()).to_string(),
            reparsed.ok.display(parsed.spec.pool()).to_string()
        );
    }

    #[test]
    fn outcome_roundtrips_with_certificate_and_trace() {
        let outcome = JobOutcome {
            property: "long.4/functional".to_owned(),
            verdict: Verdict::Proved,
            detail: "depth=3".to_owned(),
            cached: false,
            certificate: Some(Certificate {
                property: "long.4/functional".to_owned(),
                clauses: vec![vec![StateLiteral {
                    register: "wait[0]".to_owned(),
                    positive: false,
                }]],
            }),
            counterexample: Some(Counterexample {
                property: "long.4/functional".to_owned(),
                violation_frame: 1,
                frames: vec![
                    BTreeMap::from([("a".to_owned(), true)]),
                    BTreeMap::from([("a".to_owned(), false)]),
                ],
            }),
        };
        let text = outcome.to_json_string();
        let parsed = JobOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.property, outcome.property);
        assert_eq!(parsed.verdict, outcome.verdict);
        assert_eq!(parsed.detail, outcome.detail);
        assert_eq!(parsed.certificate, outcome.certificate);
        assert_eq!(parsed.counterexample, outcome.counterexample);
        // Serialisation is deterministic: a reparse emits the same bytes.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn malformed_jobs_are_rejected_with_context() {
        let bad = Json::parse(r#"{"spec": {"stages": []}}"#).unwrap();
        assert!(JobRequest::from_json(&bad).unwrap_err().contains("netlist"));
        let bad = Json::parse(
            r#"{"spec": {"stages": []},
                "netlist": {"name": "m", "signals": [{"name": "w", "kind": "wire",
                            "op": "buf", "a": 0}], "outputs": []},
                "property": {"stage_index": 0, "kind": "functional"}}"#,
        )
        .unwrap();
        assert!(JobRequest::from_json(&bad)
            .unwrap_err()
            .contains("forward gate reference"));
    }
}
