//! End-to-end service tests over real TCP: certificates served from the
//! cache must re-validate against the submitted payload, falsification
//! hits must replay through the simulator, the cache must survive a server
//! restart, and cancellation/stats/shutdown must behave.

use std::path::PathBuf;

use ipcl_bmc::PropertyKind;
use ipcl_checker::ProofStrategy;
use ipcl_core::example::ExampleArch;
use ipcl_pipesim::BrokenVariant;
use ipcl_serve::{Client, JobRequest, PropertyRequest, Server, ServerConfig, Verdict};
use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock_with, SynthesisOptions};
use ipcl_trace::Tracer;
use ipcl_tracetool::json::Json;

fn correct_job(stage_index: usize) -> JobRequest {
    let spec = ExampleArch::new().functional_spec();
    let netlist = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    )
    .netlist()
    .clone();
    JobRequest {
        spec,
        netlist,
        property: PropertyRequest {
            stage_index,
            kind: PropertyKind::Functional,
            latency: None,
        },
        strategy: ProofStrategy::Pdr,
        threads: 1,
    }
}

fn broken_job(stage_index: usize) -> JobRequest {
    let spec = ExampleArch::new().functional_spec();
    let netlist = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard)
        .netlist()
        .clone();
    JobRequest {
        spec,
        netlist,
        property: PropertyRequest {
            stage_index,
            kind: PropertyKind::Functional,
            latency: None,
        },
        strategy: ProofStrategy::Pdr,
        threads: 1,
    }
}

fn temp_cache_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipcl-serve-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_hit_certificate_revalidates_and_survives_restart() {
    let cache_dir = temp_cache_dir("restart");
    let job = correct_job(0);

    // First server instance: solve cold, then hit.
    let server = Server::start(
        ServerConfig {
            cache_dir: Some(cache_dir.clone()),
            ..ServerConfig::default()
        },
        Tracer::disabled(),
    )
    .expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let cold_id = client.submit(&job).expect("submit");
    let cold = client.wait(cold_id).expect("wait");
    assert_eq!(cold.verdict, Verdict::Proved);
    assert!(!cold.cached);
    server.shutdown();

    // Second server instance on the same cache directory: the very first
    // ask must be a disk hit, and the served certificate must still pass
    // the independent checker against the payload we submitted.
    let server = Server::start(
        ServerConfig {
            cache_dir: Some(cache_dir.clone()),
            ..ServerConfig::default()
        },
        Tracer::disabled(),
    )
    .expect("rebind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("reconnect");
    let warm_id = client.submit(&job).expect("submit");
    let warm = client.wait(warm_id).expect("wait");
    assert_eq!(warm.verdict, Verdict::Proved);
    assert!(warm.cached, "fresh server, persisted cache: must hit");
    let property = job.resolve_property().expect("stage resolves");
    let check = warm
        .certificate
        .as_ref()
        .expect("proved outcomes carry their certificate")
        .validate(&job.spec, &job.netlist, &property)
        .expect("validation runs");
    assert!(check.ok(), "served certificate fails independent checking");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn served_falsification_hit_replays_through_the_simulator() {
    let server = Server::start(ServerConfig::default(), Tracer::disabled()).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");

    // Find a falsifiable stage, solve it cold, then hit it warm.
    let mut served = None;
    for stage_index in 0..ExampleArch::new().functional_spec().stages().len() {
        let job = broken_job(stage_index);
        let cold_id = client.submit(&job).expect("submit");
        let cold = client.wait(cold_id).expect("wait");
        if cold.verdict == Verdict::Falsified {
            let warm_id = client.submit(&job).expect("submit");
            let warm = client.wait(warm_id).expect("wait");
            served = Some((job, warm));
            break;
        }
    }
    let (job, warm) = served.expect("IgnoreScoreboard must falsify some stage");
    assert_eq!(warm.verdict, Verdict::Falsified);
    assert!(warm.cached, "second ask must hit");
    let property = job.resolve_property().expect("stage resolves");
    let replay = warm
        .counterexample
        .as_ref()
        .expect("falsified outcomes carry their trace")
        .replay(&job.spec, &job.netlist, &property)
        .expect("replay runs");
    assert!(
        replay.violation_reproduced,
        "served trace does not reproduce the violation"
    );
    server.shutdown();
}

#[test]
fn cancel_stats_and_unknown_ids_behave_over_the_wire() {
    let server = Server::start(ServerConfig::default(), Tracer::disabled()).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");

    // Unknown ids are errors, not hangs.
    assert!(client.wait(999).is_err());
    assert!(client.status(999).is_err());

    // A canceled job reports the canceled verdict (it may also finish
    // first on a fast machine — both are legal — but the RPC must accept).
    let id = client.submit(&correct_job(0)).expect("submit");
    let _ = client.cancel(id).expect("cancel rpc");
    let outcome = client.wait(id).expect("wait");
    assert!(
        matches!(outcome.verdict, Verdict::Canceled | Verdict::Proved),
        "canceled-or-completed, got {:?}",
        outcome.verdict
    );

    let stats = client.stats().expect("stats");
    for field in [
        "queued",
        "running",
        "done",
        "cache_hits",
        "cache_misses",
        "revalidation_failures",
        "cache_entries",
    ] {
        assert!(
            stats.get(field).and_then(Json::as_u64).is_some(),
            "stats misses '{field}'"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_json_errors_not_disconnects() {
    let server = Server::start(ServerConfig::default(), Tracer::disabled()).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    assert!(client.request("not json at all").is_err());
    assert!(client.request("{\"cmd\": \"frobnicate\"}").is_err());
    assert!(client.request("{\"no_cmd\": 1}").is_err());
    // The connection survives all three: a well-formed request still works.
    let stats = client
        .stats()
        .expect("connection must survive bad requests");
    assert!(stats.get("done").is_some());
    server.shutdown();
}
