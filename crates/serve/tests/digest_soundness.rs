//! Cache-key soundness: the structural digest must be blind to naming and
//! construction order (or structurally identical designs would miss) and
//! sharp to semantic mutations (or different designs would collide into
//! one cache entry — caught by re-validation, but every collision costs a
//! wasted solve).

use std::sync::atomic::AtomicBool;

use ipcl_bmc::PropertyKind;
use ipcl_checker::ProofStrategy;
use ipcl_core::example::ExampleArch;
use ipcl_pipesim::BrokenVariant;
use ipcl_rtl::{structural_digest, Netlist};
use ipcl_serve::{cache_key, process_job, JobRequest, ProofCache, PropertyRequest};
use ipcl_synth::{synthesize_broken_interlock, synthesize_interlock};
use ipcl_trace::Tracer;
use proptest::prelude::*;

/// One randomly drawn combinational gate: an op selector plus raw operand
/// picks, resolved modulo the number of already-built nodes.
type GateDraw = (u8, u64, u64, u64);

/// A generated design: `inputs` primary inputs feeding `gates`, a register
/// folding the last gate back in, and an `out` wire that ORs both.
struct Design {
    inputs: usize,
    gates: Vec<GateDraw>,
    register_init: bool,
}

impl Design {
    /// The dependency set of gate `j` in *logical node indices* (inputs
    /// occupy indices `0..inputs`, gate `j` is node `inputs + j`).
    fn gate_deps(&self, j: usize) -> Vec<usize> {
        let nodes_before = self.inputs + j;
        let (op, a, b, c) = self.gates[j];
        let pick = |raw: u64| (raw % nodes_before as u64) as usize;
        match op % 6 {
            0 | 1 => vec![pick(a)],               // buf / not
            2 | 3 => vec![pick(a), pick(b)],      // and / or
            4 => vec![pick(a), pick(b)],          // xor
            _ => vec![pick(a), pick(b), pick(c)], // mux
        }
    }

    /// Builds the netlist with gates constructed in `order` (a permutation
    /// of `0..gates.len()` that must respect dependencies) and internal
    /// signals named through `internal_name`. Interface names (`in*`,
    /// `out`) are fixed — the digest pins the cone on them.
    fn build(&self, order: &[usize], internal_name: &dyn Fn(usize) -> String) -> Netlist {
        let mut netlist = Netlist::new("generated");
        let mut nodes = vec![None; self.inputs + self.gates.len()];
        for (i, node) in nodes.iter_mut().enumerate().take(self.inputs) {
            *node = Some(netlist.input(&format!("in{i}")));
        }
        for &j in order {
            let deps: Vec<_> = self
                .gate_deps(j)
                .iter()
                .map(|&d| nodes[d].expect("order respects dependencies"))
                .collect();
            let name = internal_name(j);
            let (op, ..) = self.gates[j];
            let id = match op % 6 {
                0 => netlist.buf_gate(&name, deps[0]),
                1 => netlist.not_gate(&name, deps[0]),
                2 => netlist.and_gate(&name, deps.iter().copied()),
                3 => netlist.or_gate(&name, deps.iter().copied()),
                4 => netlist.xor_gate(&name, deps[0], deps[1]),
                _ => netlist.mux_gate(&name, deps[0], deps[1], deps[2]),
            };
            nodes[self.inputs + j] = Some(id);
        }
        let last = nodes[self.inputs + self.gates.len() - 1].expect("all gates built");
        let register = netlist.register(&internal_name(usize::MAX), self.register_init);
        netlist
            .connect_register(register, last)
            .expect("combinational next");
        let out = netlist.or_gate("out", [register, last]);
        netlist.mark_output(out);
        netlist
    }

    fn interface(&self) -> Vec<String> {
        let mut names: Vec<String> = (0..self.inputs).map(|i| format!("in{i}")).collect();
        names.push("out".to_owned());
        names
    }

    /// A dependency-respecting permutation different from `0..n` where the
    /// draw allows: adjacent independent gates are swapped per `swaps` bit.
    fn reorder(&self, swaps: &[bool]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.gates.len()).collect();
        for i in 0..order.len().saturating_sub(1) {
            if !swaps.get(i).copied().unwrap_or(false) {
                continue;
            }
            let earlier_node = self.inputs + order[i];
            if !self.gate_deps(order[i + 1]).contains(&earlier_node) {
                order.swap(i, i + 1);
            }
        }
        order
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Renaming every internal signal and re-building the gates in a
    /// different (dependency-respecting) order must not move the digest.
    #[test]
    fn digest_is_invariant_under_renaming_and_reordering(
        inputs in 2usize..=4,
        gates in collection::vec((0u8..6, any::<u64>(), any::<u64>(), any::<u64>()), 3..=10),
        register_init in any::<bool>(),
        swaps in collection::vec(any::<bool>(), 9),
    ) {
        let design = Design { inputs, gates, register_init };
        let canonical = design.build(
            &(0..design.gates.len()).collect::<Vec<_>>(),
            &|j| format!("g{j}"),
        );
        let disguised = design.build(
            &design.reorder(&swaps),
            &|j| format!("obfuscated_{j}_signal"),
        );
        let interface = design.interface();
        // Same structure, different names/order: digests must agree.
        prop_assert_eq!(
            structural_digest(&canonical, &interface),
            structural_digest(&disguised, &interface)
        );
    }

    /// Flipping the register's reset value is a one-bit semantic mutation
    /// inside the cone; the digest must move.
    #[test]
    fn digest_is_sensitive_to_reset_mutation(
        inputs in 2usize..=4,
        gates in collection::vec((0u8..6, any::<u64>(), any::<u64>(), any::<u64>()), 3..=10),
        register_init in any::<bool>(),
    ) {
        let design = Design { inputs, gates, register_init };
        let interface = design.interface();
        let order: Vec<usize> = (0..design.gates.len()).collect();
        let original = design.build(&order, &|j| format!("g{j}"));
        let mutated = Design { register_init: !design.register_init, ..design }
            .build(&order, &|j| format!("g{j}"));
        prop_assert!(
            structural_digest(&original, &interface)
                != structural_digest(&mutated, &interface),
            "flipped reset value must change the digest"
        );
    }
}

fn job_for(netlist: &Netlist) -> JobRequest {
    JobRequest {
        spec: ExampleArch::new().functional_spec(),
        netlist: netlist.clone(),
        property: PropertyRequest {
            stage_index: 0,
            kind: PropertyKind::Functional,
            latency: None,
        },
        strategy: ProofStrategy::Pdr,
        threads: 1,
    }
}

/// The cache key is pinned on the property's cone of influence, so a
/// mutation *outside* a property's cone may legitimately share that
/// property's key with the correct design. The soundness requirement is
/// directional: whenever two designs share a key for a property, their
/// verdicts for that property must be interchangeable — and wherever an
/// injected bug actually flips a verdict, the key must move.
#[test]
fn broken_variants_only_share_keys_where_verdicts_agree() {
    let spec = ExampleArch::new().functional_spec();
    let correct = synthesize_interlock(&spec).netlist().clone();
    let tracer = Tracer::disabled();
    let cancel = AtomicBool::new(false);
    let verdict_of = |netlist: &Netlist, stage_index: usize| {
        let mut job = job_for(netlist);
        job.property.stage_index = stage_index;
        let cache = ProofCache::new(None);
        let outcome = process_job(&job, &cancel, &cache, &tracer);
        let property = job.resolve_property().expect("stage resolves");
        (
            cache_key(&job.spec, &job.netlist, &property),
            outcome.verdict,
        )
    };
    let mut keys_split_somewhere = false;
    for variant in [
        BrokenVariant::IgnoreScoreboard,
        BrokenVariant::IgnoreCompletionGrant,
        BrokenVariant::BadResetValues { cycles: 2 },
    ] {
        let broken = synthesize_broken_interlock(&spec, variant)
            .netlist()
            .clone();
        for stage_index in 0..spec.stages().len() {
            let (correct_key, correct_verdict) = verdict_of(&correct, stage_index);
            let (broken_key, broken_verdict) = verdict_of(&broken, stage_index);
            if correct_key == broken_key {
                assert_eq!(
                    correct_verdict, broken_verdict,
                    "{variant:?} stage {stage_index}: shared key with diverging verdicts \
                     — the digest missed semantic logic inside the cone"
                );
            } else {
                keys_split_somewhere = true;
            }
            if correct_verdict != broken_verdict {
                assert_ne!(
                    correct_key, broken_key,
                    "{variant:?} stage {stage_index}: verdict flipped but key did not move"
                );
            }
        }
    }
    assert!(
        keys_split_somewhere,
        "no injected variant moved any cache key — the digest is blind to the mutations"
    );
}

/// The same structure submitted under a different module name and with the
/// same gates must share one key — that is the whole point of a structural
/// (rather than textual) cache.
#[test]
fn identical_structure_shares_one_cache_key() {
    let spec = ExampleArch::new().functional_spec();
    let netlist = synthesize_interlock(&spec).netlist().clone();
    let job_a = job_for(&netlist);
    let job_b = job_for(&netlist);
    let property = job_a.resolve_property().expect("stage 0 resolves");
    assert_eq!(
        cache_key(&job_a.spec, &job_a.netlist, &property),
        cache_key(&job_b.spec, &job_b.netlist, &property),
    );
}
