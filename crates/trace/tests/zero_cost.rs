//! A disabled tracer must be free on the hot path: no events, no
//! snapshots — and no heap allocations at all from the recording calls.
//! The allocation check uses a counting global allocator, so this test
//! lives in its own integration-test binary.

use ipcl_trace::{MetricSink, TraceConfig, Tracer, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A hot loop of spans, events, counters and gauges against a disabled
/// tracer must allocate nothing and record nothing.
#[test]
fn disabled_tracing_allocates_nothing_on_the_hot_path() {
    let tracer = Tracer::disabled();
    // Warm up once outside the measured window (thread-local init etc.).
    {
        let _span = tracer.span("warmup");
        tracer.event("warmup", &[("i", Value::U64(0))]);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _solve = tracer.span("sat.solve");
        tracer.event("solver_restart", &[("conflicts", Value::U64(i))]);
        tracer.counter("sat.propagations", i);
        tracer.gauge("depth", i as f64);
        let _inner = tracer.span("sat.propagate");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate on the hot path"
    );
    assert_eq!(tracer.event_count(), 0);
    assert!(tracer.snapshot().is_none());
}

/// Same loop with a config-disabled tracer built through `Tracer::new`
/// (the path the engines take when `TraceConfig::disabled()` rides in on
/// the options struct).
#[test]
fn config_disabled_tracer_is_also_allocation_free() {
    let tracer = Tracer::new(TraceConfig::disabled());
    {
        let _span = tracer.span("warmup");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let _span = tracer.span("bmc.check");
        tracer.event("bmc_depth", &[("depth", Value::U64(i))]);
        tracer.counter("bmc.solve_calls", 1);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0);
    assert_eq!(tracer.event_count(), 0);
}
