//! Rendering and re-parsing of trace artifacts.
//!
//! Three output shapes, all derived from a [`TraceSnapshot`]:
//!
//! * [`events_jsonl`] — the event log as JSON Lines (`trace.jsonl`), one
//!   flat object per event;
//! * [`profile_json`] — the span tree, counters and gauges as one JSON
//!   document (`profile.json`);
//! * [`render_profile`] — a human-readable profile summary (self/total
//!   time per span path, hot counters, gauges).
//!
//! The inverse direction — [`parse_jsonl`] and [`reconstruct_spans`] —
//! re-reads a JSONL dump and replays each thread's `span_enter`/`span_exit`
//! events through a stack machine, recovering the per-thread span nesting
//! post-hoc. This is what the round-trip acceptance test exercises across
//! the portfolio's racing engine threads.
//!
//! Everything here is hand-rolled: the workspace builds offline and the
//! in-tree `serde` stand-in is marker-traits only, so the crate carries its
//! own small JSON writer and (flat-object) parser.

use crate::{Event, TraceSnapshot, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

/// Escapes `s` into `out` as a JSON string literal (with quotes).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(v) => write_json_string(out, v),
    }
}

fn write_event_json(out: &mut String, event: &Event) {
    out.push('{');
    out.push_str("\"seq\":");
    let _ = write!(out, "{}", event.seq);
    out.push_str(",\"thread\":");
    let _ = write!(out, "{}", event.thread);
    out.push_str(",\"t_us\":");
    let _ = write!(out, "{}", event.t_us);
    out.push_str(",\"kind\":");
    write_json_string(out, &event.kind);
    for (name, value) in &event.fields {
        out.push(',');
        write_json_string(out, name);
        out.push(':');
        write_json_value(out, value);
    }
    out.push('}');
}

/// Renders the snapshot's event log as JSON Lines (the `trace.jsonl`
/// artifact): one flat JSON object per event, fields inlined next to the
/// `seq`/`thread`/`t_us`/`kind` envelope.
pub fn events_jsonl(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    for event in &snapshot.events {
        write_event_json(&mut out, event);
        out.push('\n');
    }
    out
}

/// Renders the snapshot's profile tree, counters and gauges as one JSON
/// document (the `profile.json` artifact).
pub fn profile_json(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"wall_us\": ");
    let _ = write!(out, "{}", snapshot.wall_us);
    out.push_str(",\n  \"root_span_us\": ");
    let _ = write!(out, "{}", snapshot.root_span_us());
    out.push_str(",\n  \"dropped_events\": ");
    let _ = write!(out, "{}", snapshot.dropped_events);
    out.push_str(",\n  \"spans\": [");
    for (i, span) in snapshot.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": [");
        for (j, seg) in span.path.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, seg);
        }
        let _ = write!(
            out,
            "], \"total_us\": {}, \"self_us\": {}, \"count\": {}}}",
            span.total_us,
            snapshot.self_us(&span.path),
            span.count
        );
    }
    out.push_str("\n  ],\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_json_string(&mut out, name);
        let _ = write!(out, ": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        write_json_string(&mut out, name);
        if value.is_finite() {
            let _ = write!(out, ": {value}");
        } else {
            out.push_str(": null");
        }
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Renders a human-readable profile summary: one line per span path with
/// total/self time and call count, then hot counters and gauges.
pub fn render_profile(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: wall {:.3} ms, span tree {:.3} ms across {} paths ({} events, {} dropped)",
        snapshot.wall_us as f64 / 1_000.0,
        snapshot.root_span_us() as f64 / 1_000.0,
        snapshot.spans.len(),
        snapshot.events.len(),
        snapshot.dropped_events
    );
    if !snapshot.spans.is_empty() {
        let _ = writeln!(
            out,
            "  {:<52} {:>12} {:>12} {:>8}",
            "span", "total ms", "self ms", "count"
        );
        for span in &snapshot.spans {
            let indent = "  ".repeat(span.path.len() - 1);
            let label = format!("{indent}{}", span.path.last().expect("non-empty path"));
            let _ = writeln!(
                out,
                "  {:<52} {:>12.3} {:>12.3} {:>8}",
                label,
                span.total_us as f64 / 1_000.0,
                snapshot.self_us(&span.path) as f64 / 1_000.0,
                span.count
            );
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        let mut counters: Vec<_> = snapshot.counters.iter().collect();
        counters.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (name, value) in counters {
            let _ = writeln!(out, "    {name:<50} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "  gauges:");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "    {name:<50} {value:>12.3}");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL parsing (flat objects, as produced by `events_jsonl`)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(line: &'a str) -> Self {
        Parser {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of {:?}",
                c as char,
                self.pos,
                String::from_utf8_lossy(self.bytes)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Re-sync on UTF-8 boundaries: collect the full code
                    // point starting at `b`.
                    let start = self.pos - 1;
                    let width = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(Cow::Owned(self.parse_string()?))),
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(_) => self.parse_number(),
            None => Err("unexpected end of line".to_owned()),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal {lit}"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected number at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| e.to_string())
    }
}

/// Parses one `trace.jsonl` line back into an [`Event`].
fn parse_event_line(line: &str) -> Result<Event, String> {
    let mut p = Parser::new(line);
    p.expect(b'{')?;
    let mut seq = None;
    let mut thread = None;
    let mut t_us = None;
    let mut kind = None;
    let mut fields = Vec::new();
    loop {
        if p.peek() == Some(b'}') {
            p.expect(b'}')?;
            break;
        }
        let name = p.parse_string()?;
        p.expect(b':')?;
        let value = p.parse_value()?;
        match (name.as_str(), &value) {
            ("seq", Value::U64(v)) => seq = Some(*v),
            ("thread", Value::U64(v)) => thread = Some(*v),
            ("t_us", Value::U64(v)) => t_us = Some(*v),
            ("kind", Value::Str(s)) => kind = Some(s.clone().into_owned()),
            _ => fields.push((Cow::Owned(name), value)),
        }
        match p.peek() {
            Some(b',') => p.expect(b',')?,
            Some(b'}') => {}
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(Event {
        seq: seq.ok_or("missing seq")?,
        thread: thread.ok_or("missing thread")?,
        t_us: t_us.ok_or("missing t_us")?,
        kind: Cow::Owned(kind.ok_or("missing kind")?),
        fields,
    })
}

/// Parses a `trace.jsonl` dump (as produced by [`events_jsonl`]) back into
/// events. Blank lines are skipped; any malformed line is an error.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(parse_event_line)
        .collect()
}

/// One completed span recovered from an event stream by
/// [`reconstruct_spans`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReconstructedSpan {
    /// The thread the span ran on.
    pub thread: u64,
    /// Span path from the thread's outermost open span down.
    pub path: Vec<String>,
    /// Duration reported by the `span_exit` event, microseconds.
    pub us: u64,
}

/// Replays `span_enter`/`span_exit` events through a per-thread stack
/// machine, recovering each thread's span nesting. Events may arrive
/// interleaved across threads (as they do under the portfolio's racing
/// engines); within a thread they are replayed in sequence-number order.
/// Fails on mismatched enter/exit pairs.
pub fn reconstruct_spans(events: &[Event]) -> Result<Vec<ReconstructedSpan>, String> {
    let mut by_thread: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for event in events {
        if event.kind == "span_enter" || event.kind == "span_exit" {
            by_thread.entry(event.thread).or_default().push(event);
        }
    }
    let mut spans = Vec::new();
    for (thread, mut events) in by_thread {
        events.sort_by_key(|e| e.seq);
        let mut stack: Vec<String> = Vec::new();
        for event in events {
            let Some(Value::Str(name)) = event.field("name") else {
                return Err(format!("span event without name: {event:?}"));
            };
            if event.kind == "span_enter" {
                stack.push(name.clone().into_owned());
            } else {
                let top = stack.pop().ok_or_else(|| {
                    format!("thread {thread}: span_exit '{name}' with empty stack")
                })?;
                if top != name.as_ref() {
                    return Err(format!(
                        "thread {thread}: span_exit '{name}' but top of stack is '{top}'"
                    ));
                }
                let mut path = stack.clone();
                path.push(top);
                let us = match event.field("us") {
                    Some(Value::U64(us)) => *us,
                    _ => return Err(format!("span_exit without us: {event:?}")),
                };
                spans.push(ReconstructedSpan { thread, path, us });
            }
        }
        if !stack.is_empty() {
            return Err(format!("thread {thread}: unclosed spans {stack:?}"));
        }
    }
    Ok(spans)
}

/// Writes `trace.jsonl` and `profile.json` under `dir` (creating it), and
/// returns the two paths.
pub fn write_artifacts(
    snapshot: &TraceSnapshot,
    dir: &std::path::Path,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let trace_path = dir.join("trace.jsonl");
    let profile_path = dir.join("profile.json");
    std::fs::write(&trace_path, events_jsonl(snapshot))?;
    std::fs::write(&profile_path, profile_json(snapshot))?;
    Ok((trace_path, profile_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricSink, TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let _outer = tracer.span("solve");
            tracer.event(
                "solver_restart",
                &[
                    ("conflicts", Value::U64(12)),
                    ("note", Value::Str("a \"q\"\n".into())),
                ],
            );
            let _inner = tracer.span("propagate");
            tracer.counter("sat.conflicts", 12);
            tracer.gauge("depth", 3.5);
        }
        tracer.snapshot().unwrap()
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let snapshot = sample_snapshot();
        let text = events_jsonl(&snapshot);
        let parsed = parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, snapshot.events);
    }

    #[test]
    fn reconstruct_recovers_nesting() {
        let snapshot = sample_snapshot();
        let events = parse_jsonl(&events_jsonl(&snapshot)).unwrap();
        let spans = reconstruct_spans(&events).expect("balanced spans");
        assert_eq!(spans.len(), 2);
        // Exits arrive innermost-first.
        assert_eq!(spans[0].path, ["solve", "propagate"]);
        assert_eq!(spans[1].path, ["solve"]);
        assert!(spans[1].us >= spans[0].us);
    }

    #[test]
    fn reconstruct_rejects_mismatched_exits() {
        let mut events = parse_jsonl(&events_jsonl(&sample_snapshot())).unwrap();
        // Drop one exit: the stack machine must notice.
        let exit_at = events
            .iter()
            .position(|e| e.kind == "span_exit")
            .expect("has an exit");
        events.remove(exit_at);
        assert!(reconstruct_spans(&events).is_err());
    }

    #[test]
    fn profile_json_and_summary_render() {
        let snapshot = sample_snapshot();
        let json = profile_json(&snapshot);
        assert!(json.contains("\"wall_us\""));
        assert!(json.contains("\"solve\", \"propagate\""));
        assert!(json.contains("\"sat.conflicts\": 12"));
        let human = render_profile(&snapshot);
        assert!(human.contains("solve"));
        assert!(human.contains("propagate"));
        assert!(human.contains("sat.conflicts"));
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let line =
            r#"{"seq":1,"thread":0,"t_us":5,"kind":"x","s":"a\t\"b\"é","n":-3,"f":1.5,"b":true}"#;
        let event = parse_event_line(line).unwrap();
        assert_eq!(event.field("s"), Some(&Value::Str("a\t\"b\"\u{e9}".into())));
        assert_eq!(event.field("n"), Some(&Value::I64(-3)));
        assert_eq!(event.field("f"), Some(&Value::F64(1.5)));
        assert_eq!(event.field("b"), Some(&Value::Bool(true)));
    }
}
