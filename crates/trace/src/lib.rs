//! Structured observability for the solve stack: spans, events, metrics.
//!
//! Every engine in the workspace — the CDCL solver, BMC/k-induction, PDR,
//! the portfolio racer and the sequential checker — accepts a [`Tracer`].
//! A tracer is a cheap cloneable handle (engines and racer threads share
//! one) recording three kinds of data:
//!
//! * **Spans** ([`Tracer::span`]): scoped wall-clock timers forming a
//!   hierarchical profile tree (`bmc.check → bmc.encode → sat.solve` …).
//!   Nesting is tracked per thread, so the portfolio's racing engines each
//!   grow their own subtree; exit times merge into one thread-safe profile
//!   keyed by span path.
//! * **Events** ([`Tracer::event`]): a bounded, append-only structured log
//!   (solver restarts, learned-clause reductions, PDR obligation push/pop,
//!   portfolio cancellation, replay verdicts). Every event carries a
//!   sequence number from one atomic counter — strictly monotone per
//!   thread (and globally unique) — plus a thread id and a microsecond
//!   timestamp, so interleaved engine activity can be reconstructed
//!   post-hoc from the JSONL dump (see [`report`]).
//! * **Metrics** ([`MetricSink`]): typed counters and gauges unifying the
//!   engines' ad-hoc stats structs (`SolverStats`, `BmcStats`, `PdrStats`)
//!   behind one trait, so a run's hot counters land in the same artifact
//!   as its profile.
//!
//! # Zero cost when disabled
//!
//! [`Tracer::disabled`] (the default everywhere) is a `None` behind the
//! handle: every recording call is one branch — no clock reads, no
//! allocation, no thread-local access, no locks. The solve hot paths stay
//! exactly as fast as before the instrumentation (asserted by the
//! `zero_cost` integration test with a counting allocator, and by the E12
//! overhead experiment).
//!
//! # Artifacts
//!
//! [`Tracer::snapshot`] freezes the collected data into a
//! [`TraceSnapshot`]; [`report`] renders it as a human-readable profile
//! summary and as machine-readable `trace.jsonl` / `profile.json`
//! artifacts, and parses the JSONL back for post-hoc reconstruction.

pub mod report;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Configuration of a [`Tracer`]. `Copy`, so it can ride along in the
/// engines' option structs (e.g. `SequentialOptions`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceConfig {
    /// Master switch. Off means [`Tracer::new`] returns the disabled
    /// (zero-cost) tracer regardless of the other fields.
    pub enabled: bool,
    /// Record structured events (the `trace.jsonl` stream).
    pub events: bool,
    /// Record span timings (the `profile.json` tree).
    pub profile: bool,
    /// Event-log bound: once reached, further events are counted as
    /// dropped instead of stored, so a pathological run cannot exhaust
    /// memory through its own diagnostics.
    pub max_events: usize,
}

impl TraceConfig {
    /// Everything off (the default of every engine).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            events: false,
            profile: false,
            max_events: 0,
        }
    }

    /// Events and profiling on, with the default event bound.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            events: true,
            profile: true,
            max_events: 1 << 16,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// A typed field value of an [`Event`]. Text is `Cow` so emission sites
/// with static strings pay no allocation.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Unsigned counter-like value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value (milliseconds, ratios, …).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (property names, verdicts, …).
    Str(Cow<'static, str>),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(Cow::Borrowed(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Cow::Owned(v))
    }
}

/// One structured event of the bounded log.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    /// Sequence number from one atomic counter: globally unique and
    /// strictly monotone within each thread (a thread's later events always
    /// carry larger numbers than its earlier ones).
    pub seq: u64,
    /// Compact per-process thread id (assigned on first use, not the OS id).
    pub thread: u64,
    /// Microseconds since the tracer was created.
    pub t_us: u64,
    /// Event kind (`solver_restart`, `pdr_obligation`, `span_enter`, …).
    pub kind: Cow<'static, str>,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(Cow<'static, str>, Value)>,
}

impl Event {
    /// The value of field `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }
}

/// Typed metric consumer: the common vocabulary `SolverStats`, `BmcStats`
/// and `PdrStats` are unified behind (each implements an `emit` into a
/// `MetricSink`). [`Tracer`] is the standard sink; tests provide their own.
pub trait MetricSink {
    /// Adds `delta` to the counter `name` (creating it at zero).
    fn counter(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);
}

/// Accumulated time of one span path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct SpanStat {
    total_ns: u64,
    count: u64,
}

#[derive(Default)]
struct EventLog {
    events: Vec<Event>,
    dropped: u64,
}

struct Core {
    config: TraceConfig,
    epoch: Instant,
    seq: AtomicU64,
    events: Mutex<EventLog>,
    /// Profile tree, flattened: span path → accumulated stat. Paths merge
    /// across threads (the tree is re-nested by prefix at render time).
    profile: Mutex<BTreeMap<Vec<&'static str>, SpanStat>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

static THREAD_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Per-thread span-profile buffer: span drops accumulate here without
/// touching the shared core (a PDR run closes thousands of `sat.solve`
/// spans — a global lock per close would eat the overhead budget). The
/// buffer merges into its core when the thread's outermost span closes,
/// when a span of a *different* core is recorded, and at thread exit (the
/// TLS destructor) — so a snapshot taken after a thread's root span has
/// closed (or the thread has been joined) sees its full profile.
struct LocalProfile {
    core: Weak<Core>,
    /// Cheap identity of `core` for the per-drop "same core?" check.
    core_ptr: *const Core,
    stats: BTreeMap<Vec<&'static str>, SpanStat>,
}

impl LocalProfile {
    fn flush(&mut self) {
        if self.stats.is_empty() {
            return;
        }
        if let Some(core) = self.core.upgrade() {
            let mut profile = core.profile.lock().expect("profile lock");
            for (path, stat) in std::mem::take(&mut self.stats) {
                let slot = profile.entry(path).or_default();
                slot.total_ns += stat.total_ns;
                slot.count += stat.count;
            }
        } else {
            // The tracer is gone; the measurements have no home.
            self.stats.clear();
        }
    }
}

impl Drop for LocalProfile {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    /// Compact per-process thread id, assigned on first traced activity.
    static THREAD_ID: u64 = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
    /// Logical worker id of this thread (parallel engines), stamped onto
    /// every recorded event as a trailing `worker` field. See
    /// [`set_worker`].
    static WORKER_ID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
    /// The current span nesting of this thread (shared by all tracers; a
    /// guard only ever pops the name it pushed, so interleaved tracers
    /// stay consistent).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// See [`LocalProfile`].
    static LOCAL_PROFILE: RefCell<Option<LocalProfile>> = const { RefCell::new(None) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Declares the current thread a logical worker of a parallel engine:
/// until cleared with `set_worker(None)`, every event this thread records
/// (through any tracer) carries a trailing `worker` field with the given
/// id. Thread ids already distinguish event streams, but they are assigned
/// in first-use order and so differ run to run; the worker id is the
/// stable scheduler-level identity (worker 0 is the parallel PDR master).
pub fn set_worker(id: Option<u64>) {
    WORKER_ID.with(|w| w.set(id));
}

fn worker_id() -> Option<u64> {
    WORKER_ID.with(|w| w.get())
}

/// A cheap cloneable tracing handle. See the crate docs.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<Core>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.core {
            None => write!(f, "Tracer(disabled)"),
            Some(core) => write!(f, "Tracer({:?})", core.config),
        }
    }
}

impl Tracer {
    /// The zero-cost disabled tracer (every recording call is one branch).
    pub fn disabled() -> Self {
        Tracer { core: None }
    }

    /// Builds a tracer for `config` (disabled when `config.enabled` is off).
    pub fn new(config: TraceConfig) -> Self {
        if !config.enabled {
            return Tracer::disabled();
        }
        Tracer {
            core: Some(Arc::new(Core {
                config,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                events: Mutex::new(EventLog::default()),
                profile: Mutex::new(BTreeMap::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether any recording is active.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a scoped wall-clock span; timing is recorded (and a
    /// `span_enter`/`span_exit` event pair emitted, when events are on)
    /// when the returned guard drops. Nesting is per thread.
    #[must_use = "a span measures until its guard is dropped"]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_impl(name, true)
    }

    /// As [`Tracer::span`], but never emits `span_enter`/`span_exit`
    /// events — only the profile timing is recorded. For high-frequency
    /// spans (a PDR run issues thousands of `sat.solve` calls) where
    /// per-span events would dominate the event log and the overhead
    /// budget; the span still nests normally in the profile tree.
    #[must_use = "a span measures until its guard is dropped"]
    pub fn span_fast(&self, name: &'static str) -> Span {
        self.span_impl(name, false)
    }

    fn span_impl(&self, name: &'static str, with_events: bool) -> Span {
        let Some(core) = &self.core else {
            return Span { active: None };
        };
        let with_events = with_events && core.config.events;
        if !core.config.profile && !with_events {
            return Span { active: None };
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        if with_events {
            self.push_event(
                core,
                "span_enter",
                &[("name", Value::Str(Cow::Borrowed(name)))],
            );
        }
        Span {
            active: Some(ActiveSpan {
                core: Arc::clone(core),
                name,
                start: Instant::now(),
                with_events,
            }),
        }
    }

    /// Records one structured event (bounded; see
    /// [`TraceConfig::max_events`]).
    pub fn event(&self, kind: &'static str, fields: &[(&'static str, Value)]) {
        let Some(core) = &self.core else { return };
        if !core.config.events {
            return;
        }
        self.push_event(core, kind, fields);
    }

    fn push_event(&self, core: &Core, kind: &'static str, fields: &[(&'static str, Value)]) {
        let fields: Vec<(Cow<'static, str>, Value)> = fields
            .iter()
            .map(|(n, v)| (Cow::Borrowed(*n), v.clone()))
            .collect();
        self.push_event_owned(core, kind, fields);
    }

    fn push_event_owned(
        &self,
        core: &Core,
        kind: &'static str,
        mut fields: Vec<(Cow<'static, str>, Value)>,
    ) {
        if let Some(worker) = worker_id() {
            fields.push((Cow::Borrowed("worker"), Value::U64(worker)));
        }
        let seq = core.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            thread: thread_id(),
            t_us: core.epoch.elapsed().as_micros() as u64,
            kind: Cow::Borrowed(kind),
            fields,
        };
        let mut log = core.events.lock().expect("event log lock");
        if log.events.len() >= core.config.max_events {
            log.dropped += 1;
        } else {
            log.events.push(event);
        }
    }

    /// The number of events currently stored (0 for a disabled tracer).
    pub fn event_count(&self) -> usize {
        match &self.core {
            None => 0,
            Some(core) => core.events.lock().expect("event log lock").events.len(),
        }
    }

    /// Whether event recording is active (false for a disabled tracer and
    /// for a profile-only configuration).
    pub fn events_enabled(&self) -> bool {
        self.core.as_ref().is_some_and(|core| core.config.events)
    }

    /// Copies out the stored events with `seq >= seq_floor`, without
    /// freezing a full snapshot. This is the live-progress poll path (a
    /// `--watch` renderer calls it a few times per second): the caller
    /// tracks the highest sequence number it has seen and passes
    /// `last + 1`. Returns an empty vector for a disabled tracer.
    ///
    /// Sequence numbers are assigned before the log lock is taken, so a
    /// concurrent writer's event may briefly be missing from one poll and
    /// appear in the next with a smaller number than the floor — harmless
    /// for progress display, which only renders the latest beat per
    /// engine.
    pub fn events_since(&self, seq_floor: u64) -> Vec<Event> {
        match &self.core {
            None => Vec::new(),
            Some(core) => core
                .events
                .lock()
                .expect("event log lock")
                .events
                .iter()
                .filter(|event| event.seq >= seq_floor)
                .cloned()
                .collect(),
        }
    }

    /// Freezes the collected data. The tracer stays usable afterwards (the
    /// snapshot is a copy).
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        let core = self.core.as_ref()?;
        let log = core.events.lock().expect("event log lock");
        let profile = core.profile.lock().expect("profile lock");
        let spans = profile
            .iter()
            .map(|(path, stat)| SpanProfile {
                path: path.iter().map(|s| (*s).to_owned()).collect(),
                total_us: stat.total_ns / 1_000,
                count: stat.count,
            })
            .collect();
        Some(TraceSnapshot {
            config: core.config,
            wall_us: core.epoch.elapsed().as_micros() as u64,
            spans,
            counters: core.counters.lock().expect("counter lock").clone(),
            gauges: core.gauges.lock().expect("gauge lock").clone(),
            events: log.events.clone(),
            dropped_events: log.dropped,
        })
    }
}

impl MetricSink for Tracer {
    fn counter(&self, name: &str, delta: u64) {
        let Some(core) = &self.core else { return };
        let mut counters = core.counters.lock().expect("counter lock");
        match counters.get_mut(name) {
            Some(slot) => *slot += delta,
            None => {
                counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let Some(core) = &self.core else { return };
        let mut gauges = core.gauges.lock().expect("gauge lock");
        gauges.insert(name.to_owned(), value);
    }
}

/// Rate limiter for periodic `heartbeat` events emitted from inside the
/// engines' hot loops (BMC depth reached, PDR obligation-queue depth,
/// solver conflicts since the last beat), so a long-running proof is
/// observable while in flight instead of a silent black box.
///
/// Usage: hold one per engine run and guard the emission site with
/// [`Heartbeat::due`]. The first call after construction is always due
/// (every traced run emits at least one beat, however short), later calls
/// are due once per interval. When the tracer is disabled — or events are
/// off — `due` is a branch or two with **no clock read**, preserving the
/// zero-cost contract of the disabled path.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    interval: Duration,
    last: Option<Instant>,
}

impl Heartbeat {
    /// A heartbeat firing at most once per `interval`.
    pub fn new(interval: Duration) -> Self {
        Heartbeat {
            interval,
            last: None,
        }
    }

    /// A heartbeat firing at most once per `ms` milliseconds.
    pub fn every_ms(ms: u64) -> Self {
        Heartbeat::new(Duration::from_millis(ms))
    }

    /// Whether a beat is due now. `false` (without reading the clock) when
    /// `tracer` does not record events; otherwise true on the first call
    /// and thereafter once per interval. A `true` return arms the next
    /// interval — call it only when about to emit.
    pub fn due(&mut self, tracer: &Tracer) -> bool {
        if !tracer.events_enabled() {
            return false;
        }
        let now = Instant::now();
        match self.last {
            Some(prev) if now.duration_since(prev) < self.interval => false,
            _ => {
                self.last = Some(now);
                true
            }
        }
    }
}

struct ActiveSpan {
    core: Arc<Core>,
    name: &'static str,
    start: Instant,
    with_events: bool,
}

/// Guard of one open span (see [`Tracer::span`]).
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        // Guards drop in LIFO order within a thread, so the top of the
        // stack is ours and the current stack *is* this span's full path.
        // Record before popping, looking the path up by slice so the steady
        // state (path already known) allocates nothing.
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(active.name));
            if active.core.config.profile {
                LOCAL_PROFILE.with(|lp| {
                    let mut lp = lp.borrow_mut();
                    let core_ptr = Arc::as_ptr(&active.core);
                    if lp.as_ref().is_none_or(|local| local.core_ptr != core_ptr) {
                        if let Some(old) = lp.as_mut() {
                            old.flush();
                        }
                        *lp = Some(LocalProfile {
                            core: Arc::downgrade(&active.core),
                            core_ptr,
                            stats: BTreeMap::new(),
                        });
                    }
                    let local = lp.as_mut().expect("just ensured");
                    // The stack still includes our own name, so it *is*
                    // this span's full path; the slice lookup keeps the
                    // steady state allocation-free.
                    match local.stats.get_mut(stack.as_slice()) {
                        Some(stat) => {
                            stat.total_ns += elapsed.as_nanos() as u64;
                            stat.count += 1;
                        }
                        None => {
                            local.stats.insert(
                                stack.clone(),
                                SpanStat {
                                    total_ns: elapsed.as_nanos() as u64,
                                    count: 1,
                                },
                            );
                        }
                    }
                    if stack.len() == 1 {
                        // Outermost span of this thread: publish.
                        local.flush();
                    }
                });
            }
            stack.pop();
        });
        if active.with_events {
            let tracer = Tracer {
                core: Some(Arc::clone(&active.core)),
            };
            tracer.push_event(
                &active.core,
                "span_exit",
                &[
                    ("name", Value::Str(Cow::Borrowed(active.name))),
                    ("us", Value::U64(elapsed.as_micros() as u64)),
                ],
            );
        }
    }
}

/// Accumulated timing of one span path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanProfile {
    /// The span path from the thread's root span down (`["bmc.check",
    /// "bmc.solve", "sat.solve"]`).
    pub path: Vec<String>,
    /// Total wall time spent inside this exact path, microseconds.
    pub total_us: u64,
    /// Number of completed spans at this path.
    pub count: u64,
}

impl SpanProfile {
    /// The path rendered as `a / b / c`.
    pub fn path_string(&self) -> String {
        self.path.join(" / ")
    }
}

/// A frozen copy of everything a tracer collected.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// The configuration the tracer ran with.
    pub config: TraceConfig,
    /// Microseconds from tracer creation to the snapshot.
    pub wall_us: u64,
    /// Flattened profile tree, sorted by path.
    pub spans: Vec<SpanProfile>,
    /// Accumulated counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// The bounded event log, in sequence order of arrival.
    pub events: Vec<Event>,
    /// Events discarded after [`TraceConfig::max_events`] was reached.
    pub dropped_events: u64,
}

impl TraceSnapshot {
    /// The profile entry at exactly `path`, if recorded. The lookup the
    /// export/diff consumers (`ipcl-tracetool`) lean on.
    pub fn span(&self, path: &[&str]) -> Option<&SpanProfile> {
        self.spans
            .iter()
            .find(|s| s.path.len() == path.len() && s.path.iter().zip(path).all(|(a, b)| a == b))
    }

    /// Total microseconds of the root spans (paths of length 1) — the
    /// portion of the run covered by the profile tree. With racing engine
    /// threads each contributing a root, this may exceed `wall_us`.
    pub fn root_span_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path.len() == 1)
            .map(|s| s.total_us)
            .sum()
    }

    /// `total_us` minus the children's `total_us` of the span at `path` —
    /// the time spent in the span itself.
    pub fn self_us(&self, path: &[String]) -> u64 {
        let total = self
            .spans
            .iter()
            .find(|s| s.path == path)
            .map(|s| s.total_us)
            .unwrap_or(0);
        let children: u64 = self
            .spans
            .iter()
            .filter(|s| s.path.len() == path.len() + 1 && s.path[..path.len()] == *path)
            .map(|s| s.total_us)
            .sum();
        total.saturating_sub(children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let _span = tracer.span("a");
            tracer.event("ev", &[("x", Value::U64(1))]);
            tracer.counter("c", 3);
            tracer.gauge("g", 1.0);
        }
        assert_eq!(tracer.event_count(), 0);
        assert!(tracer.snapshot().is_none());
    }

    #[test]
    fn worker_tag_is_appended_per_thread_and_cleared() {
        let tracer = Tracer::new(TraceConfig::enabled());
        tracer.event("untagged", &[("x", Value::U64(1))]);
        set_worker(Some(3));
        tracer.event("tagged", &[("x", Value::U64(2))]);
        set_worker(None);
        tracer.event("untagged_again", &[]);
        // Another thread's tag does not leak into this one.
        std::thread::scope(|scope| {
            let tracer = &tracer;
            scope.spawn(move || {
                set_worker(Some(7));
                tracer.event("other_thread", &[]);
            });
        });
        let snapshot = tracer.snapshot().unwrap();
        let field = |kind: &str| {
            snapshot
                .events
                .iter()
                .find(|e| e.kind == kind)
                .expect(kind)
                .field("worker")
                .cloned()
        };
        assert_eq!(field("untagged"), None);
        assert_eq!(field("tagged"), Some(Value::U64(3)));
        assert_eq!(field("untagged_again"), None);
        assert_eq!(field("other_thread"), Some(Value::U64(7)));
    }

    #[test]
    fn disabled_config_yields_disabled_tracer() {
        assert!(!Tracer::new(TraceConfig::disabled()).is_enabled());
        assert!(Tracer::new(TraceConfig::enabled()).is_enabled());
    }

    #[test]
    fn spans_nest_into_a_path_keyed_profile() {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let _outer = tracer.span("outer");
            for _ in 0..3 {
                let _inner = tracer.span("inner");
            }
        }
        let snapshot = tracer.snapshot().unwrap();
        let outer = snapshot
            .spans
            .iter()
            .find(|s| s.path == ["outer"])
            .expect("outer span recorded");
        assert_eq!(outer.count, 1);
        let inner = snapshot
            .spans
            .iter()
            .find(|s| s.path == ["outer", "inner"])
            .expect("inner span nested under outer");
        assert_eq!(inner.count, 3);
        assert!(outer.total_us >= inner.total_us);
        assert_eq!(
            snapshot.self_us(&["outer".to_owned()]) + inner.total_us,
            outer.total_us
        );
    }

    #[test]
    fn events_are_bounded_and_count_drops() {
        let tracer = Tracer::new(TraceConfig {
            max_events: 4,
            ..TraceConfig::enabled()
        });
        for i in 0..10u64 {
            tracer.event("tick", &[("i", Value::U64(i))]);
        }
        let snapshot = tracer.snapshot().unwrap();
        assert_eq!(snapshot.events.len(), 4);
        assert_eq!(snapshot.dropped_events, 6);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let tracer = Tracer::new(TraceConfig::enabled());
        tracer.counter("sat.conflicts", 2);
        tracer.counter("sat.conflicts", 3);
        tracer.gauge("depth", 1.0);
        tracer.gauge("depth", 7.0);
        let snapshot = tracer.snapshot().unwrap();
        assert_eq!(snapshot.counters["sat.conflicts"], 5);
        assert_eq!(snapshot.gauges["depth"], 7.0);
    }

    #[test]
    fn sequence_numbers_are_strictly_monotone_per_thread() {
        let tracer = Tracer::new(TraceConfig::enabled());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        tracer.event("tick", &[("t", Value::U64(t)), ("i", Value::U64(i))]);
                    }
                });
            }
        });
        let snapshot = tracer.snapshot().unwrap();
        assert_eq!(snapshot.events.len(), 800);
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        let mut by_thread: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for event in &snapshot.events {
            by_thread.entry(event.thread).or_default().push(event.seq);
        }
        assert_eq!(by_thread.len(), 4, "four distinct thread ids");
        for (thread, seqs) in by_thread {
            for seq in seqs {
                if let Some(prev) = last.get(&thread) {
                    assert!(seq > *prev, "thread {thread}: {seq} after {prev}");
                }
                last.insert(thread, seq);
            }
        }
    }

    #[test]
    fn events_since_filters_by_sequence_number() {
        let tracer = Tracer::new(TraceConfig::enabled());
        for i in 0..5u64 {
            tracer.event("tick", &[("i", Value::U64(i))]);
        }
        let all = tracer.events_since(0);
        assert_eq!(all.len(), 5);
        let tail = tracer.events_since(all[3].seq);
        assert_eq!(tail.len(), 2);
        assert!(Tracer::disabled().events_since(0).is_empty());
    }

    #[test]
    fn snapshot_span_lookup_finds_exact_paths() {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let _outer = tracer.span("outer");
            let _inner = tracer.span("inner");
        }
        let snapshot = tracer.snapshot().unwrap();
        assert!(snapshot.span(&["outer"]).is_some());
        assert!(snapshot.span(&["outer", "inner"]).is_some());
        assert!(snapshot.span(&["inner"]).is_none());
    }

    #[test]
    fn heartbeat_fires_immediately_then_rate_limits() {
        let tracer = Tracer::new(TraceConfig::enabled());
        let mut beat = Heartbeat::new(Duration::from_secs(3600));
        assert!(beat.due(&tracer), "first call is always due");
        assert!(!beat.due(&tracer), "second call inside the interval");
        let mut eager = Heartbeat::new(Duration::ZERO);
        assert!(eager.due(&tracer));
        assert!(eager.due(&tracer), "zero interval is always due");
    }

    #[test]
    fn heartbeat_is_never_due_without_event_recording() {
        let mut beat = Heartbeat::every_ms(0);
        assert!(!beat.due(&Tracer::disabled()));
        let profile_only = Tracer::new(TraceConfig {
            events: false,
            ..TraceConfig::enabled()
        });
        assert!(!beat.due(&profile_only));
        assert!(beat.last.is_none(), "no clock read on the disabled path");
    }

    #[test]
    fn metric_sink_is_object_safe() {
        let tracer = Tracer::new(TraceConfig::enabled());
        let sink: &dyn MetricSink = &tracer;
        sink.counter("n", 1);
        sink.gauge("g", 0.5);
        assert_eq!(tracer.snapshot().unwrap().counters["n"], 1);
    }
}
