//! Shared helpers for the experiment harness binaries and Criterion
//! benchmarks that regenerate the paper's figures and claims.
//!
//! Each experiment of `EXPERIMENTS.md` corresponds to one binary in
//! `src/bin/` (run with `cargo run -p ipcl-bench --bin <name>`); the
//! Criterion benchmarks in `benches/` cover the scaling/ablation studies.

use std::path::PathBuf;
use std::time::Duration;

use ipcl_core::fixpoint::derive_symbolic;
use ipcl_core::{ArchSpec, FunctionalSpec};
use ipcl_expr::{Cnf, Expr, Lit};
use ipcl_pipesim::{Machine, SimStats, WorkloadConfig};
use ipcl_trace::{report, TraceConfig, Tracer};
use ipcl_tracetool::Watcher;

/// Observability flags shared by the experiment binaries.
///
/// * `--trace <dir>` enables tracing and, at [`TraceArgs::finish`], writes
///   `trace.jsonl` (the structured event log) and `profile.json` (the span
///   profile + unified metrics) into `<dir>`;
/// * `--profile` enables tracing and prints the human-readable profile
///   summary to stderr (where it cannot corrupt the JSON on stdout);
/// * `--watch` enables tracing and redraws a live progress line on stderr
///   from the engines' `heartbeat` events while the run is in flight
///   ([`ipcl_tracetool::Watcher`]).
///
/// The binaries that exercise the parallel proof engine additionally take
/// `--threads N` (worker count; defaults to the host's available
/// parallelism), exposed as [`TraceArgs::threads`].
///
/// Without any of the flags the returned tracer is the disabled
/// (zero-cost) one, so instrumented experiments measure the same code path
/// as before.
pub struct TraceArgs {
    /// Artifact directory of `--trace`, when given.
    pub dir: Option<PathBuf>,
    /// Whether `--profile` was given.
    pub profile: bool,
    /// Whether `--watch` was given.
    pub watch: bool,
    /// `--threads N`, defaulting to `std::thread::available_parallelism()`.
    /// Feed it into [`ipcl_pdr::ParallelPdrOptions::threads`] (or
    /// `SequentialOptions::threads`); experiments without a parallel engine
    /// ignore it.
    pub threads: usize,
    tracer: Tracer,
    watcher: Option<Watcher>,
}

impl TraceArgs {
    /// Parses `--trace <dir>` / `--profile` / `--watch` / `--threads <N>`
    /// from the process arguments.
    pub fn from_env() -> TraceArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut dir = None;
        let mut profile = false;
        let mut watch = false;
        let mut threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--trace" => {
                    dir = Some(PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
                        panic!("--trace requires a directory argument")
                    })));
                    i += 1;
                }
                "--profile" => profile = true,
                "--watch" => watch = true,
                "--threads" => {
                    threads = args
                        .get(i + 1)
                        .and_then(|n| n.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| panic!("--threads requires a count ≥ 1"));
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        let tracer = if dir.is_some() || profile || watch {
            Tracer::new(TraceConfig::enabled())
        } else {
            Tracer::disabled()
        };
        let watcher = watch.then(|| Watcher::spawn(tracer.clone(), Duration::from_millis(100)));
        TraceArgs {
            dir,
            profile,
            watch,
            threads,
            tracer,
            watcher,
        }
    }

    /// The tracer to thread into the engines (disabled when no flag given).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Stops the watcher, writes the requested artifacts and prints the
    /// profile summary.
    ///
    /// # Panics
    ///
    /// When the `--trace` directory cannot be written.
    pub fn finish(mut self) {
        if let Some(watcher) = self.watcher.take() {
            watcher.stop();
        }
        let Some(snapshot) = self.tracer.snapshot() else {
            return;
        };
        if let Some(dir) = &self.dir {
            let (trace_path, profile_path) =
                report::write_artifacts(&snapshot, dir).expect("trace artifacts are writable");
            eprintln!(
                "trace artifacts: {} and {}",
                trace_path.display(),
                profile_path.display()
            );
        }
        if self.profile {
            eprint!("{}", report::render_profile(&snapshot));
        }
    }
}

/// Prints a `BENCH_*.json` document — the shared v1 header object wrapping
/// the experiment's measurement entries — to stdout.
///
/// Every experiment binary routes its output through this helper so the
/// artifacts carry a uniform schema for `ipcl-tracetool regress`:
/// `schema_version`, the experiment id, whether this was a `--smoke` run,
/// and the commit under measurement (`IPCL_COMMIT`, else the `GITHUB_SHA`
/// CI provides, else `null`).
///
/// `entries` are pre-rendered JSON objects, one per measurement point.
pub fn emit_bench_json(experiment: &str, smoke: bool, entries: &[String]) {
    let commit = std::env::var("IPCL_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .ok()
        .filter(|sha| !sha.is_empty() && sha.chars().all(|c| c.is_ascii_alphanumeric()));
    println!("{{");
    println!("\"schema_version\": 1,");
    println!("\"experiment\": \"{experiment}\",");
    println!("\"smoke\": {smoke},");
    match commit {
        Some(sha) => println!("\"commit\": \"{sha}\","),
        None => println!("\"commit\": null,"),
    }
    println!("\"entries\": [");
    println!("{}", entries.join(",\n"));
    println!("]");
    println!("}}");
}

/// The pigeonhole principle `PHP(n, n−1)` as CNF: `n` pigeons into `n − 1`
/// holes, unsatisfiable, and exponentially hard for resolution — the
/// classic pure-CDCL stress instance of the E11 solver experiment.
pub fn pigeonhole_cnf(pigeons: u32) -> Cnf {
    let holes = pigeons - 1;
    let var = |i: u32, j: u32| i * holes + j;
    let mut cnf = Cnf::new(pigeons * holes);
    for i in 0..pigeons {
        cnf.add_clause((0..holes).map(|j| Lit::positive(var(i, j))));
    }
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                cnf.add_clause([Lit::negative(var(i1, j)), Lit::negative(var(i2, j))]);
            }
        }
    }
    cnf
}

/// Median of a set of repeat timings, in whatever unit they were taken.
///
/// # Panics
///
/// On an empty or NaN-containing input.
pub fn median_ms(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// The bug-injection matrix used by the assertion and property-checking
/// experiments: `(label, stage prefix, extra stall condition over the pool)`.
///
/// Each entry yields an over-conservative specification via
/// [`FunctionalSpec::augmented`]; deriving an interlock from it produces an
/// implementation with exactly one injected performance bug.
pub fn performance_bug_matrix(spec: &FunctionalSpec) -> Vec<(String, String, Expr)> {
    let pool = spec.pool();
    let mut bugs = Vec::new();
    if let Some(wait) = pool.lookup("op_is_wait") {
        bugs.push((
            "stall-exec-on-wait".to_owned(),
            spec.stages()
                .iter()
                .find(|s| s.stage.stage > 1)
                .map(|s| s.stage.prefix())
                .unwrap_or_default(),
            Expr::var(wait),
        ));
    }
    // Completion stages stall whenever *any* pipe requests the bus (ignoring
    // who won the grant).
    for stage in spec.stages() {
        if stage.rules.iter().any(|r| r.label == "completion-bus-lost") {
            if let Some(req) = pool.lookup(&format!("{}.req", stage.stage.pipe)) {
                bugs.push((
                    format!("stall-{}-on-any-request", stage.stage.prefix()),
                    stage.stage.prefix(),
                    Expr::var(req),
                ));
            }
        }
    }
    // Intermediate stages stall whenever they merely hold a valid
    // instruction (their `rtm` flag), regardless of whether the downstream
    // stage is free — the "no bubble collapse" class of performance bug.
    //
    // (Issue stages are deliberately not used here: a spurious stall of a
    // lock-step issue group is *mutually justified* by the lock-step rules
    // and therefore does not violate the per-stage Figure-3 performance
    // specification — see the cyclic-control caveat in DESIGN.md. Those bugs
    // are caught by comparison against the derived maximal assignment, which
    // the simulation experiments perform.)
    for stage in spec.stages() {
        let is_intermediate =
            stage.stage.stage > 1 && !stage.rules.iter().any(|r| r.label == "completion-bus-lost");
        if is_intermediate {
            if let Some(rtm) = pool.lookup(&stage.stage.rtm()) {
                bugs.push((
                    format!("stall-{}-whenever-valid", stage.stage.prefix()),
                    stage.stage.prefix(),
                    Expr::var(rtm),
                ));
            }
        }
    }
    bugs
}

/// Derives an over-conservative interlock implementation containing the given
/// injected bug.
pub fn buggy_implementation(
    spec: &FunctionalSpec,
    stage_prefix: &str,
    condition: Expr,
) -> std::collections::BTreeMap<ipcl_expr::VarId, Expr> {
    let stage = spec
        .stages()
        .iter()
        .find(|s| s.stage.prefix() == stage_prefix)
        .expect("bug matrix references declared stages")
        .stage
        .clone();
    let augmented = spec
        .augmented(&stage, "injected-performance-bug", condition)
        .expect("augmentation is well-formed");
    derive_symbolic(&augmented).moe
}

/// Runs one simulation of the example architecture and returns its
/// statistics.
pub fn simulate(
    arch: &ArchSpec,
    policy: Box<dyn ipcl_pipesim::InterlockPolicy>,
    packets: usize,
    dependence: f64,
    utilisation: f64,
    seed: u64,
) -> SimStats {
    let program = WorkloadConfig::for_arch(arch, utilisation)
        .with_packets(packets)
        .with_dependence_bias(dependence)
        .generate(seed);
    let mut machine = Machine::new(arch, policy).expect("architecture is well-formed");
    machine.run_program(&program, (packets as u64) * 200 + 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_checker::{check_moe_expressions, Engine, SpecDirection};
    use ipcl_pipesim::MaximalInterlock;

    #[test]
    fn bug_matrix_produces_performance_only_bugs() {
        let spec = ArchSpec::paper_example().functional_spec().unwrap();
        let bugs = performance_bug_matrix(&spec);
        assert!(bugs.len() >= 4);
        for (label, stage, condition) in bugs {
            let implementation = buggy_implementation(&spec, &stage, condition);
            let report = check_moe_expressions(&spec, &implementation, Engine::Bdd);
            assert!(
                report.holds_direction(SpecDirection::Functional),
                "{label} must stay functionally correct"
            );
            assert!(
                !report.holds_direction(SpecDirection::Performance),
                "{label} must violate the performance spec"
            );
        }
    }

    #[test]
    fn simulate_helper_runs() {
        let arch = ArchSpec::paper_example();
        let stats = simulate(&arch, Box::new(MaximalInterlock), 100, 0.4, 0.8, 1);
        assert!(stats.ops_completed > 0);
        assert_eq!(stats.hazards.total(), 0);
    }
}
