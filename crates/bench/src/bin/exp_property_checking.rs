//! Experiment E6 (Results): exhaustive property checking of injected bugs.
//!
//! Builds a matrix of interlock implementations — the derived one, a set of
//! over-conservative variants (performance bugs) and under-constrained
//! variants (functional bugs), plus a registered implementation with wrong
//! reset values — and checks each against the functional and performance
//! specifications with both the BDD and the SAT engine. Property checking
//! finds every injected bug, including those a simulation run can miss.

use ipcl_bench::{buggy_implementation, performance_bug_matrix};
use ipcl_checker::{
    check_moe_expressions, check_netlist, check_reset_values, Engine, SpecDirection,
};
use ipcl_core::fixpoint::derive_symbolic;
use ipcl_core::ArchSpec;
use ipcl_expr::Expr;
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

fn main() {
    let spec = ArchSpec::paper_example()
        .functional_spec()
        .expect("valid architecture");

    println!("# Exhaustive property checking of injected bugs\n");
    ipcl_bench::header(&[
        "implementation",
        "engine",
        "functional spec",
        "performance spec",
        "counterexample",
    ]);

    for engine in Engine::ALL {
        // The derived (correct) interlock.
        let derived = derive_symbolic(&spec).moe;
        let report = check_moe_expressions(&spec, &derived, engine);
        ipcl_bench::row(&[
            "derived-maximal".into(),
            engine.name().into(),
            holds(report.holds_direction(SpecDirection::Functional)),
            holds(report.holds_direction(SpecDirection::Performance)),
            "-".into(),
        ]);

        // Injected performance bugs (over-conservative interlocks).
        for (label, stage, condition) in performance_bug_matrix(&spec) {
            let implementation = buggy_implementation(&spec, &stage, condition);
            let report = check_moe_expressions(&spec, &implementation, engine);
            let witness = report
                .performance_violations()
                .first()
                .map(|(s, w)| format!("{s}: {}", w.display_with(spec.pool())))
                .unwrap_or_else(|| "-".into());
            ipcl_bench::row(&[
                label,
                engine.name().into(),
                holds(report.holds_direction(SpecDirection::Functional)),
                holds(report.holds_direction(SpecDirection::Performance)),
                witness,
            ]);
        }

        // Injected functional bugs (missing stalls).
        let mut missing_completion = derive_symbolic(&spec).moe;
        let long4 = spec
            .moe_var(&ipcl_core::model::StageRef::new("long", 4))
            .expect("long.4 exists");
        missing_completion.insert(long4, Expr::TRUE);
        let report = check_moe_expressions(&spec, &missing_completion, engine);
        let witness = report
            .functional_violations()
            .first()
            .map(|(s, w)| format!("{s}: {}", w.display_with(spec.pool())))
            .unwrap_or_else(|| "-".into());
        ipcl_bench::row(&[
            "ignore-completion-grant".into(),
            engine.name().into(),
            holds(report.holds_direction(SpecDirection::Functional)),
            holds(report.holds_direction(SpecDirection::Performance)),
            witness,
        ]);

        let mut missing_scoreboard = derive_symbolic(&spec).moe;
        let long1 = spec
            .moe_var(&ipcl_core::model::StageRef::new("long", 1))
            .expect("long.1 exists");
        let outstanding = spec
            .pool()
            .lookup("long.1.operand_outstanding")
            .expect("abstract operand signal");
        let original = missing_scoreboard[&long1].clone();
        missing_scoreboard.insert(long1, Expr::or([original, Expr::var(outstanding)]));
        let report = check_moe_expressions(&spec, &missing_scoreboard, engine);
        let witness = report
            .functional_violations()
            .first()
            .map(|(s, w)| format!("{s}: {}", w.display_with(spec.pool())))
            .unwrap_or_else(|| "-".into());
        ipcl_bench::row(&[
            "ignore-scoreboard".into(),
            engine.name().into(),
            holds(report.holds_direction(SpecDirection::Functional)),
            holds(report.holds_direction(SpecDirection::Performance)),
            witness,
        ]);
    }

    // Reset-value bug in a registered (synthesised) implementation.
    println!("\n## Reset-value checks of registered implementations\n");
    ipcl_bench::header(&["implementation", "registers examined", "wrong reset values"]);
    for (label, reset_value) in [("correct-reset", true), ("wrong-reset", false)] {
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value,
                ..Default::default()
            },
        );
        let report = check_reset_values(&spec, synthesized.netlist());
        ipcl_bench::row(&[
            label.into(),
            report.examined.to_string(),
            report.mismatches.len().to_string(),
        ]);
    }

    // Combinational synthesised netlist equivalence (E8 cross-check).
    let synthesized = ipcl_synth::synthesize_interlock(&spec);
    let netlist_report =
        check_netlist(&spec, synthesized.netlist(), Engine::Bdd).expect("outputs present");
    println!(
        "\nsynthesised combinational netlist equivalent to the combined spec: {}",
        netlist_report.holds()
    );
}

fn holds(value: bool) -> String {
    if value {
        "holds".into()
    } else {
        "VIOLATED".into()
    }
}
