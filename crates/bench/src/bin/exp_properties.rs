//! Experiment E4 (Section 3.1/3.2 properties): preconditions P1, P2,
//! monotonicity and maximality across architectures of increasing size.

use ipcl_core::fixpoint::{derive_concrete, derive_symbolic, is_most_liberal};
use ipcl_core::properties::check_preconditions;
use ipcl_core::ArchSpec;
use ipcl_expr::Assignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("# Section 3 properties across architectures\n");
    ipcl_bench::header(&[
        "architecture",
        "stages",
        "monotone",
        "P1",
        "P2",
        "cycles",
        "fixpoint iterations",
        "maximality (sampled envs)",
    ]);
    let architectures = vec![
        ArchSpec::paper_example(),
        ArchSpec::synthetic(1, 4),
        ArchSpec::synthetic(2, 6),
        ArchSpec::synthetic(4, 4),
        ArchSpec::firepath_like(),
    ];
    for arch in architectures {
        let spec = arch.functional_spec().expect("well-formed architecture");
        let report = check_preconditions(&spec);
        let derivation = derive_symbolic(&spec);
        // Sampled maximality check (exhaustive over moe for each sampled env).
        let env_vars: Vec<_> = spec.env_vars().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(2002);
        let samples = 50;
        let mut maximal = 0;
        for _ in 0..samples {
            let env: Assignment = env_vars
                .iter()
                .map(|&v| (v, rng.random_bool(0.5)))
                .collect();
            let moe = derive_concrete(&spec, &env);
            if spec.moe_vars().len() <= 20 && is_most_liberal(&spec, &env, &moe) {
                maximal += 1;
            }
        }
        let maximality = if spec.moe_vars().len() <= 20 {
            format!("{maximal}/{samples}")
        } else {
            "skipped (2^n check)".to_owned()
        };
        ipcl_bench::row(&[
            arch.name.clone(),
            spec.stages().len().to_string(),
            report.monotone.to_string(),
            report.p1_all_stalled_satisfies.to_string(),
            report.p2_disjunction_closed.to_string(),
            report.has_cycles.to_string(),
            derivation.iterations.to_string(),
            maximality,
        ]);
    }
}
