//! Experiment E1 (Figure 1): the example pipeline architecture.
//!
//! Prints the structure of the two-pipe example machine — pipes, stages,
//! completion bus, scoreboard — and the signal inventory of its interlock,
//! corresponding to the paper's Figure 1 and the type declarations of
//! Section 2.1.

use ipcl_core::{ArchSpec, ExampleArch};

fn main() {
    let arch = ArchSpec::paper_example();
    println!("# Figure 1 — example pipeline architecture\n");
    ipcl_bench::header(&[
        "pipe",
        "stages",
        "completion bus",
        "observes wait",
        "scoreboard",
    ]);
    for pipe in &arch.pipes {
        ipcl_bench::row(&[
            pipe.name.clone(),
            pipe.stages.to_string(),
            pipe.completion_bus.clone().unwrap_or_else(|| "-".into()),
            pipe.observes_wait.to_string(),
            pipe.checks_scoreboard.to_string(),
        ]);
    }
    println!();
    println!("lock-step issue groups : {:?}", arch.lockstep_groups);
    println!("architectural registers: {}", arch.scoreboard_registers);
    println!(
        "completion buses       : {}",
        arch.completion_buses
            .iter()
            .map(|b| format!("{} (priority: {})", b.name, b.priority.join(" > ")))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let spec = ExampleArch::new().functional_spec();
    println!("\n## Control-signal inventory (Section 2.1 declarations)\n");
    ipcl_bench::header(&["class", "signals"]);
    let moe: Vec<String> = spec
        .moe_vars()
        .iter()
        .map(|&v| spec.pool().name_or_fallback(v))
        .collect();
    ipcl_bench::row(&["moe flags".into(), moe.join(", ")]);
    let env: Vec<String> = spec
        .env_vars()
        .iter()
        .map(|&v| spec.pool().name_or_fallback(v))
        .collect();
    ipcl_bench::row(&["environment".into(), env.join(", ")]);
    println!(
        "\nstage vector order (Figure 2): {}",
        ExampleArch::stage_order()
            .iter()
            .map(|s| s.moe())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
