//! Experiment E5 (Section 2.2.2 / Results): simulation testbench assertions.
//!
//! Attaches the derived performance and functional assertions as runtime
//! monitors to simulations of the example machine under every interlock
//! policy (the correct maximal one, three over-conservative performance-bug
//! variants and three broken functional-bug variants), and reports what the
//! assertions catch, alongside the machine's ground truth.

use ipcl_assertgen::{AssertionKind, SpecMonitor, ViolationKind};
use ipcl_core::ArchSpec;
use ipcl_pipesim::{
    BrokenInterlock, BrokenVariant, ConservativeInterlock, ConservativeVariant, InterlockPolicy,
    Machine, MaximalInterlock, WorkloadConfig,
};

fn policies() -> Vec<Box<dyn InterlockPolicy>> {
    let mut policies: Vec<Box<dyn InterlockPolicy>> = vec![Box::new(MaximalInterlock)];
    for variant in ConservativeVariant::ALL {
        policies.push(Box::new(ConservativeInterlock::new(variant)));
    }
    policies.push(Box::new(BrokenInterlock::new(
        BrokenVariant::IgnoreScoreboard,
    )));
    policies.push(Box::new(BrokenInterlock::new(
        BrokenVariant::IgnoreCompletionGrant,
    )));
    policies.push(Box::new(BrokenInterlock::new(
        BrokenVariant::BadResetValues { cycles: 4 },
    )));
    policies
}

fn main() {
    let arch = ArchSpec::paper_example();
    let packets = 2_000;
    let program = WorkloadConfig::default()
        .with_packets(packets)
        .with_dependence_bias(0.6)
        .generate(0xDAC2002);

    println!("# Simulation with derived testbench assertions ({packets} packets)\n");
    ipcl_bench::header(&[
        "interlock",
        "cycles",
        "ipc",
        "assert: unnecessary stalls",
        "assert: missed stalls",
        "ground truth: unnecessary",
        "ground truth: hazards",
    ]);
    for policy in policies() {
        let name = policy.name();
        let mut machine = Machine::new(&arch, policy).expect("valid architecture");
        let spec = machine.spec().clone();
        let mut monitor = SpecMonitor::new(&spec, AssertionKind::Combined);
        let stats = machine.run_program_with_observer(&program, 400_000, |env, moe| {
            monitor.check_cycle(env, moe);
        });
        let report = monitor.report();
        ipcl_bench::row(&[
            name.to_owned(),
            stats.cycles.to_string(),
            format!("{:.3}", stats.ipc()),
            report.count_of(ViolationKind::UnnecessaryStall).to_string(),
            report.count_of(ViolationKind::MissedStall).to_string(),
            stats.unnecessary_stalls.to_string(),
            stats.hazards.total().to_string(),
        ]);
    }
    println!();
    println!(
        "Reading: the maximal interlock triggers no assertions and shows no hazards; the\n\
         conservative variants trigger performance assertions (and only those); the broken\n\
         variants trigger functional assertions and produce ground-truth hazards. Assertion\n\
         counts can differ from ground-truth stall counts because per-stage assertions only\n\
         see the signals of one cycle (see the cyclic-control caveat in DESIGN.md)."
    );
}
