//! Experiment E8 (Section 5 further work): synthesis of the interlock control
//! logic from the specification, across architectures of increasing size,
//! with equivalence checked back against the combined specification.

use std::time::Instant;

use ipcl_checker::{check_netlist, Engine};
use ipcl_core::ArchSpec;
use ipcl_synth::synthesize_interlock;

fn main() {
    println!("# Specification-to-RTL synthesis of the interlock controller\n");
    ipcl_bench::header(&[
        "architecture",
        "stages",
        "env signals",
        "netlist signals",
        "verilog lines",
        "synthesis time",
        "equivalence (BDD)",
        "equivalence (SAT)",
    ]);
    for arch in [
        ArchSpec::paper_example(),
        ArchSpec::synthetic(2, 4),
        ArchSpec::synthetic(4, 6),
        ArchSpec::firepath_like(),
    ] {
        let spec = arch.functional_spec().expect("well-formed architecture");
        let start = Instant::now();
        let synthesized = synthesize_interlock(&spec);
        let elapsed = start.elapsed();
        let verilog_lines = synthesized.to_verilog().lines().count();
        let bdd = check_netlist(&spec, synthesized.netlist(), Engine::Bdd)
            .map(|r| r.holds())
            .unwrap_or(false);
        let sat = check_netlist(&spec, synthesized.netlist(), Engine::Sat)
            .map(|r| r.holds())
            .unwrap_or(false);
        ipcl_bench::row(&[
            arch.name.clone(),
            spec.stages().len().to_string(),
            spec.env_vars().len().to_string(),
            synthesized.netlist().len().to_string(),
            verilog_lines.to_string(),
            format!("{:.2?}", elapsed),
            bdd.to_string(),
            sat.to_string(),
        ]);
    }
}
