//! Experiment E10: PDR versus k-induction (and the portfolio).
//!
//! Two workload families, each swept across sizes:
//!
//! * **registered synthetic architectures** — `ArchSpec::synthetic(pipes,
//!   depth)` with registered `moe` outputs, checked with the combined
//!   specification at registered latency. Both engines prove these quickly;
//!   the sweep measures how their encoding/search overheads scale with
//!   architecture size.
//! * **deep wait-state chains** — `ipcl_pdr::deep::deep_pipeline(n)`, the
//!   workload class k-induction cannot decide below the chain depth. The
//!   k-induction racer is given a bound of `n − 3` frames (so it runs to
//!   the bound and returns *unknown*), while PDR proves the property
//!   outright — the claim of ISSUE 2, asserted by this binary.
//!
//! Each `(workload, engine)` point also runs with SAT phase saving
//! disabled, quantifying the satellite optimisation of ISSUE 2 (the
//! ablation rows have `"phase_saving": false`).
//!
//! Emits a `BENCH_*.json` document on stdout (one entry per point);
//! `--smoke` shrinks the sweep for CI. PDR rows carry the
//! obligation-queue shape (`max_queue_depth`, `frame_obligations`).
//! `--trace <dir>` / `--profile` / `--watch` enable the `ipcl-trace`
//! observability layer (see [`ipcl_bench::TraceArgs`]).

use std::time::Instant;

use ipcl_bench::{emit_bench_json, median_ms, TraceArgs};
use ipcl_bmc::{
    check_property_traced, BmcOptions, BmcOutcome, Latency, PropertyKind, SequentialProperty,
};
use ipcl_core::{ArchSpec, FunctionalSpec};
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{
    check_property_pdr_traced, check_property_portfolio_traced, PdrOptions, PdrOutcome,
};
use ipcl_rtl::Netlist;
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

struct Workload {
    name: String,
    spec: FunctionalSpec,
    netlist: Netlist,
    property: SequentialProperty,
    /// Depth bound handed to the k-induction racer.
    k_bound: usize,
    /// Whether k-induction is expected to prove the property within the
    /// bound (deep chains: no).
    k_inductive: bool,
}

fn registered_synthetic(pipes: u32, depth: u32) -> Workload {
    let spec = ArchSpec::synthetic(pipes, depth)
        .functional_spec()
        .expect("synthetic architectures are well-formed");
    let synthesized = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);
    Workload {
        name: format!("synthetic-{pipes}x{depth}-registered"),
        spec,
        netlist: synthesized.netlist().clone(),
        property,
        k_bound: 8,
        k_inductive: true,
    }
}

fn deep_chain(depth: usize) -> Workload {
    let (spec, netlist) = deep_pipeline(depth);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    Workload {
        name: format!("deep-chain-{depth}"),
        spec,
        netlist,
        property,
        // Stay below the chain depth: k-induction must run to the bound and
        // give up, which is exactly the cost being measured.
        k_bound: depth.saturating_sub(3),
        k_inductive: false,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let repeats = if smoke { 1 } else { 3 };
    let trace = TraceArgs::from_env();

    let mut workloads = Vec::new();
    if smoke {
        for (pipes, depth) in [(1, 3), (2, 3)] {
            workloads.push(registered_synthetic(pipes, depth));
        }
        for depth in [5usize, 8] {
            workloads.push(deep_chain(depth));
        }
    } else {
        for (pipes, depth) in [(1, 3), (2, 3), (2, 4), (3, 4), (4, 4)] {
            workloads.push(registered_synthetic(pipes, depth));
        }
        for depth in [6usize, 9, 12, 16] {
            workloads.push(deep_chain(depth));
        }
    }

    let mut entries: Vec<String> = Vec::new();
    for workload in &workloads {
        for phase_saving in [true, false] {
            let solver = ipcl_sat::SolverConfig {
                phase_saving,
                ..Default::default()
            };
            // ---- k-induction.
            let bmc_options = BmcOptions {
                max_depth: workload.k_bound,
                solver,
                ..Default::default()
            };
            let mut times = Vec::new();
            let mut verdict = String::new();
            let mut solve_calls = 0usize;
            let mut conflicts = 0u64;
            for _ in 0..repeats {
                let start = Instant::now();
                let result = check_property_traced(
                    &workload.spec,
                    &workload.netlist,
                    &workload.property,
                    &bmc_options,
                    None,
                    trace.tracer(),
                )
                .expect("netlist elaborates");
                times.push(start.elapsed().as_secs_f64() * 1e3);
                verdict = match &result.outcome {
                    BmcOutcome::Proved { induction_depth } => format!("proved@k={induction_depth}"),
                    BmcOutcome::Falsified(_) => "falsified".to_owned(),
                    BmcOutcome::Unknown { depth_checked } => format!("unknown@{depth_checked}"),
                };
                assert_eq!(
                    result.outcome.is_proved(),
                    workload.k_inductive,
                    "{}: unexpected k-induction verdict {verdict}",
                    workload.name
                );
                solve_calls = result.stats.solve_calls;
                conflicts = result.stats.conflicts;
            }
            entries.push(format!(
                concat!(
                    "  {{\"experiment\": \"pdr_vs_kinduction\", \"workload\": \"{}\", ",
                    "\"engine\": \"kinduction\", \"phase_saving\": {}, \"verdict\": \"{}\", ",
                    "\"ms\": {:.3}, \"solve_calls\": {}, \"conflicts\": {}}}"
                ),
                workload.name,
                phase_saving,
                verdict,
                median_ms(times),
                solve_calls,
                conflicts,
            ));

            // ---- PDR.
            let pdr_options = PdrOptions {
                solver,
                ..Default::default()
            };
            let mut times = Vec::new();
            let mut verdict = String::new();
            let mut clauses = 0usize;
            let mut obligations = 0u64;
            let mut conflicts = 0u64;
            let mut max_queue_depth = 0usize;
            let mut frame_obligations = Vec::new();
            for _ in 0..repeats {
                let start = Instant::now();
                let result = check_property_pdr_traced(
                    &workload.spec,
                    &workload.netlist,
                    &workload.property,
                    &pdr_options,
                    None,
                    trace.tracer(),
                )
                .expect("netlist elaborates");
                times.push(start.elapsed().as_secs_f64() * 1e3);
                let PdrOutcome::Proved {
                    certificate,
                    fixpoint_frame,
                } = &result.outcome
                else {
                    panic!(
                        "{}: PDR must prove, got {:?}",
                        workload.name, result.outcome
                    );
                };
                assert!(
                    result.validation.expect("validation requested").ok(),
                    "{}: certificate failed validation",
                    workload.name
                );
                verdict = format!(
                    "proved@F{fixpoint_frame} ({} clauses)",
                    certificate.clauses.len()
                );
                clauses = result.stats.clauses;
                obligations = result.stats.obligations;
                conflicts = result.stats.conflicts;
                max_queue_depth = result.stats.max_queue_depth;
                frame_obligations = result.stats.obligations_per_frame.clone();
            }
            entries.push(format!(
                concat!(
                    "  {{\"experiment\": \"pdr_vs_kinduction\", \"workload\": \"{}\", ",
                    "\"engine\": \"pdr\", \"phase_saving\": {}, \"verdict\": \"{}\", ",
                    "\"ms\": {:.3}, \"clauses\": {}, \"obligations\": {}, \"conflicts\": {}, ",
                    "\"max_queue_depth\": {}, \"frame_obligations\": [{}]}}"
                ),
                workload.name,
                phase_saving,
                verdict,
                median_ms(times),
                clauses,
                obligations,
                conflicts,
                max_queue_depth,
                frame_obligations
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }

        // ---- Portfolio (default phase saving): the verdict must match the
        // stronger engine's, and the deep chains must be won by PDR.
        let bmc_options = BmcOptions {
            max_depth: workload.k_bound,
            ..Default::default()
        };
        let start = Instant::now();
        let result = check_property_portfolio_traced(
            &workload.spec,
            &workload.netlist,
            &workload.property,
            &bmc_options,
            &PdrOptions::default(),
            trace.tracer(),
        )
        .expect("netlist elaborates");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            result.is_proved(),
            "{}: the portfolio must prove every correct workload",
            workload.name
        );
        if !workload.k_inductive {
            assert_eq!(
                result.winner,
                Some(ipcl_pdr::PortfolioWinner::Pdr),
                "{}: only PDR can prove a deep chain",
                workload.name
            );
        }
        entries.push(format!(
            concat!(
                "  {{\"experiment\": \"pdr_vs_kinduction\", \"workload\": \"{}\", ",
                "\"engine\": \"portfolio\", \"phase_saving\": true, \"verdict\": \"proved\", ",
                "\"winner\": \"{}\", \"ms\": {:.3}}}"
            ),
            workload.name,
            match result.winner {
                Some(ipcl_pdr::PortfolioWinner::Bmc) => "kinduction",
                Some(ipcl_pdr::PortfolioWinner::Pdr) => "pdr",
                None => "none",
            },
            ms,
        ));
    }

    emit_bench_json("pdr_vs_kinduction", smoke, &entries);
    eprintln!(
        "{} workloads × (kinduction, pdr) × (phase saving on/off) + portfolio: {} points",
        workloads.len(),
        entries.len()
    );
    trace.finish();
}
