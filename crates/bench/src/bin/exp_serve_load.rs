//! Experiment E15: verification-service load and cache effectiveness.
//!
//! Drives an in-process `ipcl-serve` server (`Server::start` on a loopback
//! port, real TCP, real protocol) with a mixed stream of jobs over the
//! deep wait-state chain family and measures what the proof cache buys:
//!
//! * a **cold** round submits every unique design once — all misses, each
//!   job pays a full PDR solve; its p50 is the baseline solve latency;
//! * a **warm** round replays thousands of jobs drawn round-robin from the
//!   same designs, plus a few never-seen designs so the stream stays mixed
//!   — the repeats are structural-hash cache hits, each re-validated
//!   through the independent certificate checker before being served.
//!
//! Every job is submitted and awaited individually over the wire, so the
//! per-job latencies are honest client-observed round-trips (transport +
//! cache probe + re-validation, or transport + solve on a miss).
//!
//! Asserted invariants:
//!
//! * every verdict is `proved`; cold-round jobs are never served from
//!   cache; warm-round hit-rate is ≥ 90% (the job mix is deterministic);
//! * in full runs, the warm round's hit-only p50 is **< 1% of the cold
//!   solve p50** — the headline cache-effectiveness claim (reported but
//!   not asserted under `--smoke`, where the designs are too small for
//!   the ratio to be meaningful).
//!
//! Emits a `BENCH_*.json` document on stdout; `--smoke` shrinks the job
//! count for CI; `--threads N` sizes the server's worker pool; `--trace` /
//! `--profile` / `--watch` enable the observability layer (the progress
//! line renders the server's queue shape and live hit-rate).

use std::time::Instant;

use ipcl_bench::{emit_bench_json, TraceArgs};
use ipcl_bmc::{Latency, PropertyKind};
use ipcl_checker::ProofStrategy;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_serve::{Client, JobRequest, PropertyRequest, Server, ServerConfig, Verdict};

fn job_for_depth(depth: usize) -> JobRequest {
    let (spec, netlist) = deep_pipeline(depth);
    JobRequest {
        spec,
        netlist,
        property: PropertyRequest {
            stage_index: 0,
            kind: PropertyKind::Performance,
            latency: Some(Latency::Combinational),
        },
        strategy: ProofStrategy::Pdr,
        threads: 1,
    }
}

struct RoundStats {
    jobs: usize,
    hits: usize,
    latencies_ms: Vec<f64>,
    hit_latencies_ms: Vec<f64>,
    wall_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

/// Submits and awaits each job individually, recording round-trip
/// latencies and which answers came from the cache.
fn run_round(client: &mut Client, jobs: &[&JobRequest], round: &str) -> RoundStats {
    let mut latencies_ms = Vec::with_capacity(jobs.len());
    let mut hit_latencies_ms = Vec::new();
    let mut hits = 0;
    let round_start = Instant::now();
    for job in jobs {
        let start = Instant::now();
        let id = client.submit(job).expect("submit");
        let outcome = client.wait(id).expect("wait");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            outcome.verdict,
            Verdict::Proved,
            "{round}: {} must prove ({})",
            outcome.property,
            outcome.detail
        );
        if outcome.cached {
            hits += 1;
            hit_latencies_ms.push(ms);
        }
        latencies_ms.push(ms);
    }
    let wall_s = round_start.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    hit_latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    RoundStats {
        jobs: jobs.len(),
        hits,
        latencies_ms,
        hit_latencies_ms,
        wall_s,
    }
}

fn render_entry(round: &str, stats: &RoundStats, extra: &str) -> String {
    format!(
        concat!(
            "  {{\"experiment\": \"serve_load\", \"round\": \"{}\", \"jobs\": {}, ",
            "\"hit_rate\": {:.4}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, ",
            "\"jobs_per_sec\": {:.1}{}}}"
        ),
        round,
        stats.jobs,
        stats.hits as f64 / stats.jobs as f64,
        percentile(&stats.latencies_ms, 0.50),
        percentile(&stats.latencies_ms, 0.99),
        stats.jobs as f64 / stats.wall_s,
        extra,
    )
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let trace = TraceArgs::from_env();

    // The unique design pool: one design per chain depth. Deeper chains
    // mean costlier solves and a starker hit/miss latency gap — the full
    // sweep starts at depth 16 where a cold solve costs ~100ms+ while a
    // re-validated cache hit stays sub-millisecond.
    let depths: Vec<usize> = if smoke {
        (4..=8).collect()
    } else {
        (16..=22).collect()
    };
    let warm_jobs = if smoke { 40 } else { 2000 };
    let fresh_depths: Vec<usize> = if smoke { vec![9] } else { vec![23, 24, 25] };

    let designs: Vec<JobRequest> = depths.iter().map(|&d| job_for_depth(d)).collect();
    let fresh: Vec<JobRequest> = fresh_depths.iter().map(|&d| job_for_depth(d)).collect();

    let server = Server::start(
        ServerConfig {
            workers: trace.threads.clamp(1, 8),
            ..ServerConfig::default()
        },
        trace.tracer().clone(),
    )
    .expect("bind loopback server");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // ---- cold round: every unique design once; all misses.
    let cold_jobs: Vec<&JobRequest> = designs.iter().collect();
    let cold = run_round(&mut client, &cold_jobs, "cold");
    assert_eq!(cold.hits, 0, "cold round must not see cache hits");
    let cold_p50 = percentile(&cold.latencies_ms, 0.50);

    // ---- warm round: a deterministic round-robin replay of the known
    // designs, with the fresh (never-solved) designs interleaved so the
    // stream stays a hit/miss mix.
    let mut warm_jobs_list: Vec<&JobRequest> = (0..warm_jobs)
        .map(|i| &designs[i % designs.len()])
        .collect();
    for (slot, job) in fresh.iter().enumerate() {
        // Spread the misses through the stream rather than clustering them.
        let at = (slot + 1) * warm_jobs_list.len() / (fresh.len() + 1);
        warm_jobs_list.insert(at.min(warm_jobs_list.len()), job);
    }
    let warm = run_round(&mut client, &warm_jobs_list, "warm");
    let hit_rate = warm.hits as f64 / warm.jobs as f64;
    let hit_p50 = percentile(&warm.hit_latencies_ms, 0.50);

    assert!(
        hit_rate >= 0.90,
        "warm round hit-rate {hit_rate:.3} must be ≥ 0.90 ({} hits / {} jobs)",
        warm.hits,
        warm.jobs
    );
    let hit_ratio = hit_p50 / cold_p50;
    eprintln!(
        "cold p50 {cold_p50:.3}ms, warm hit p50 {hit_p50:.3}ms ({:.2}% of cold solve)",
        hit_ratio * 100.0
    );
    if !smoke {
        assert!(
            hit_ratio < 0.01,
            "cache hits must return in <1% of the cold-solve p50 \
             (hit p50 {hit_p50:.3}ms vs cold p50 {cold_p50:.3}ms)"
        );
    }

    let entries = vec![
        render_entry("cold", &cold, ""),
        render_entry("warm", &warm, &format!(", \"hit_p50_ms\": {hit_p50:.3}")),
    ];

    client.shutdown().expect("graceful shutdown handshake");
    server.shutdown();

    emit_bench_json("serve_load", smoke, &entries);
    eprintln!(
        "{} unique designs, {} warm jobs, hit-rate {:.1}%",
        designs.len(),
        warm.jobs,
        hit_rate * 100.0
    );
    trace.finish();
}
