//! Experiment E11: the solver-stack overhaul, before vs. after.
//!
//! Three workloads, each run with two [`SolverConfig`]s:
//!
//! * **optimized** — the new defaults: heap VSIDS decisions, blocking
//!   literals + inline binary watches, recursive conflict-clause
//!   minimization, LBD-scored learned-clause database reduction, Luby
//!   restarts, and persistent level-0 assignments across incremental
//!   calls;
//! * **baseline** — [`SolverConfig::baseline`], reproducing the pre-PR
//!   solver behaviour: linear-scan decisions, no minimization, no
//!   reduction, geometric restarts, and a full per-call reset plus
//!   O(clauses) unit re-scan.
//!
//! The workloads cover the three regimes the repository's engines live in:
//!
//! * `pigeonhole(n)` — a pure CDCL stress test (one hard UNSAT call);
//! * `deep_pipeline(n)` PDR proof — thousands of tiny incremental
//!   consecution queries against one solver, the regime the persistent
//!   level-0 scheme targets;
//! * E9-style incremental BMC depth sweep on the registered paper example
//!   — repeated re-solves under assumptions with clause addition between
//!   calls.
//!
//! Emits a `BENCH_*.json` document (one entry per `(workload, config)`
//! point); BMC rows include the final depth's isolated solve counts
//! (`last_depth_*`, via `SolverStats::delta`). `--smoke` shrinks the
//! sweep for CI; the full run asserts the acceptance criterion of
//! ISSUE 3: at least one workload speeds up ≥ 2× and none regresses by
//! more than 10%. `--trace <dir>` / `--profile` / `--watch` enable the
//! `ipcl-trace` observability layer (see [`ipcl_bench::TraceArgs`]).

use std::time::Instant;

/// A boxed workload runner: `SolverConfig` in, measured point out.
type Runner = Box<dyn Fn(SolverConfig) -> Point>;

use ipcl_bench::{emit_bench_json, pigeonhole_cnf, TraceArgs};
use ipcl_bmc::{check_property_traced, BmcOptions, Latency, PropertyKind, SequentialProperty};
use ipcl_core::example::ExampleArch;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{check_property_pdr_traced, PdrOptions, PdrOutcome};
use ipcl_sat::{SatResult, Solver, SolverConfig};
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};
use ipcl_trace::Tracer;

fn median_ms(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// One measured point: medianized wall-clock plus the counters that
/// explain it.
struct Point {
    ms: f64,
    detail: String,
}

fn run_pigeonhole(pigeons: u32, config: SolverConfig, repeats: usize, tracer: &Tracer) -> Point {
    let cnf = pigeonhole_cnf(pigeons);
    let mut times = Vec::new();
    let mut detail = String::new();
    for _ in 0..repeats {
        let mut solver = Solver::from_cnf_with_config(&cnf, config);
        solver.set_tracer(tracer.clone());
        let start = Instant::now();
        let result = solver.solve();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(result, SatResult::Unsat, "pigeonhole must be UNSAT");
        let stats = solver.stats();
        detail = format!(
            "\"conflicts\": {}, \"minimized_literals\": {}, \"reductions\": {}",
            stats.conflicts, stats.minimized_literals, stats.reductions
        );
    }
    Point {
        ms: median_ms(times),
        detail,
    }
}

fn run_deep_pdr(depth: usize, config: SolverConfig, repeats: usize, tracer: &Tracer) -> Point {
    let (spec, netlist) = deep_pipeline(depth);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let options = PdrOptions {
        solver: config,
        ..PdrOptions::default()
    };
    let mut times = Vec::new();
    let mut detail = String::new();
    for _ in 0..repeats {
        let start = Instant::now();
        let result = check_property_pdr_traced(&spec, &netlist, &property, &options, None, tracer)
            .expect("netlist elaborates");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        let PdrOutcome::Proved { .. } = result.outcome else {
            panic!(
                "deep_pipeline({depth}) must be proved, got {:?}",
                result.outcome
            );
        };
        assert!(result.validation.expect("validation requested").ok());
        detail = format!(
            "\"solve_calls\": {}, \"obligations\": {}, \"conflicts\": {}, \"propagations\": {}",
            result.stats.solve_calls,
            result.stats.obligations,
            result.stats.conflicts,
            result.stats.propagations
        );
    }
    Point {
        ms: median_ms(times),
        detail,
    }
}

fn run_bmc_sweep(depth: usize, config: SolverConfig, repeats: usize, tracer: &Tracer) -> Point {
    let spec = ExampleArch::new().functional_spec();
    let synthesized = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);
    let options = BmcOptions {
        max_depth: depth,
        induction: false,
        solver: config,
        ..Default::default()
    };
    let mut times = Vec::new();
    let mut detail = String::new();
    for _ in 0..repeats {
        let start = Instant::now();
        let result = check_property_traced(
            &spec,
            synthesized.netlist(),
            &property,
            &options,
            None,
            tracer,
        )
        .expect("netlist elaborates");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(
            !result.outcome.is_falsified(),
            "the registered example holds at every depth"
        );
        detail = format!(
            concat!(
                "\"solve_calls\": {}, \"clauses\": {}, \"conflicts\": {}, ",
                "\"propagations\": {}, \"last_depth_conflicts\": {}, ",
                "\"last_depth_propagations\": {}"
            ),
            result.stats.solve_calls,
            result.stats.base_clauses,
            result.stats.conflicts,
            result.stats.propagations,
            result.stats.last_depth_conflicts,
            result.stats.last_depth_propagations
        );
    }
    Point {
        ms: median_ms(times),
        detail,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let repeats = if smoke { 1 } else { 3 };
    let trace = TraceArgs::from_env();
    let configs = [
        ("optimized", SolverConfig::default()),
        ("baseline", SolverConfig::baseline()),
    ];

    // (name, runner) per workload; sizes chosen so the full run's
    // slowest point stays within seconds. Each runner captures its own
    // handle on the shared tracer (clones share one core).
    let workloads: Vec<(String, Runner)> = if smoke {
        vec![
            ("pigeonhole-7".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_pigeonhole(7, c, repeats, &tracer))
            }),
            ("deep-pipeline-8-pdr".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_deep_pdr(8, c, repeats, &tracer))
            }),
            ("bmc-depth-8-incremental".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_bmc_sweep(8, c, repeats, &tracer))
            }),
        ]
    } else {
        vec![
            ("pigeonhole-8".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_pigeonhole(8, c, repeats, &tracer))
            }),
            ("pigeonhole-9".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_pigeonhole(9, c, repeats, &tracer))
            }),
            ("deep-pipeline-12-pdr".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_deep_pdr(12, c, repeats, &tracer))
            }),
            ("deep-pipeline-16-pdr".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_deep_pdr(16, c, repeats, &tracer))
            }),
            ("bmc-depth-20-incremental".into(), {
                let tracer = trace.tracer().clone();
                Box::new(move |c| run_bmc_sweep(20, c, repeats, &tracer))
            }),
        ]
    };

    let mut entries = Vec::new();
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    for (name, runner) in &workloads {
        let mut per_config = Vec::new();
        for (config_name, config) in configs {
            let point = runner(config);
            entries.push(format!(
                concat!(
                    "  {{\"experiment\": \"solver_opts\", \"workload\": \"{}\", ",
                    "\"config\": \"{}\", \"ms\": {:.3}, {}}}"
                ),
                name, config_name, point.ms, point.detail
            ));
            per_config.push(point.ms);
        }
        let speedup = per_config[1] / per_config[0].max(1e-9);
        speedups.push((name.clone(), speedup, per_config[1]));
        eprintln!("{name}: baseline/optimized = {speedup:.2}x");
    }

    emit_bench_json("solver_opts", smoke, &entries);

    if !smoke {
        let best = speedups
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty sweep");
        eprintln!("best speedup: {} at {:.2}x", best.0, best.1);
        assert!(
            best.1 >= 2.0,
            "acceptance: at least one workload must speed up >= 2x, best was {} at {:.2}x",
            best.0,
            best.1
        );
        // Regression gate with a noise floor: a 10% relative bound on a
        // sub-5ms point is scheduler jitter, not a verdict — those points
        // are informational (and covered by the `solver` criterion bench,
        // which iterates them thousands of times).
        const NOISE_FLOOR_MS: f64 = 5.0;
        for (name, speedup, baseline_ms) in &speedups {
            if *baseline_ms < NOISE_FLOOR_MS {
                eprintln!(
                    "{name}: below the {NOISE_FLOOR_MS} ms noise floor, \
                     regression gate skipped"
                );
                continue;
            }
            assert!(
                *speedup >= 0.90,
                "acceptance: no workload may regress by more than 10%, {name} at {speedup:.2}x"
            );
        }
    }
    trace.finish();
}
