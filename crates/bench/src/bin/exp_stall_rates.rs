//! Experiment E7 (Section 1.1 / Results): performance impact of unnecessary
//! stalls.
//!
//! Sweeps workload pressure (issue utilisation and register-dependence
//! density) and compares the maximal interlock against the over-conservative
//! variants: cycles, IPC, stall breakdown by cause, and the fraction of
//! stalls that are unnecessary. This quantifies the benefit the paper
//! reports from redesigning the completion logic after the analysis.

use ipcl_core::ArchSpec;
use ipcl_pipesim::{ConservativeInterlock, ConservativeVariant, InterlockPolicy, MaximalInterlock};

fn main() {
    let arch = ArchSpec::paper_example();
    let packets = 3_000;

    println!("# Stall-rate and throughput comparison ({packets} packets per run)\n");
    ipcl_bench::header(&[
        "utilisation",
        "dependence",
        "interlock",
        "cycles",
        "ipc",
        "stall cycles",
        "unnecessary",
        "unnecessary %",
    ]);

    for utilisation in [0.4, 0.7, 1.0] {
        for dependence in [0.2, 0.6] {
            let mut runs: Vec<(&'static str, Box<dyn InterlockPolicy>)> =
                vec![("maximal", Box::new(MaximalInterlock))];
            for variant in ConservativeVariant::ALL {
                let policy = ConservativeInterlock::new(variant);
                runs.push((policy.name(), Box::new(policy)));
            }
            let mut baseline_cycles = None;
            for (name, policy) in runs {
                let stats =
                    ipcl_bench::simulate(&arch, policy, packets, dependence, utilisation, 0xF1DE);
                if name == "maximal" {
                    baseline_cycles = Some(stats.cycles);
                }
                let slowdown = baseline_cycles
                    .map(|b| stats.cycles as f64 / b as f64)
                    .unwrap_or(1.0);
                ipcl_bench::row(&[
                    format!("{utilisation:.1}"),
                    format!("{dependence:.1}"),
                    format!("{name} (x{slowdown:.2})"),
                    stats.cycles.to_string(),
                    format!("{:.3}", stats.ipc()),
                    stats.total_stall_cycles().to_string(),
                    stats.unnecessary_stalls.to_string(),
                    format!("{:.1}", 100.0 * stats.unnecessary_stall_fraction()),
                ]);
            }
        }
    }

    println!("\n## Stall breakdown by cause (utilisation 1.0, dependence 0.6)\n");
    ipcl_bench::header(&["interlock", "cause", "stage-cycles"]);
    let mut runs: Vec<(&'static str, Box<dyn InterlockPolicy>)> =
        vec![("maximal", Box::new(MaximalInterlock))];
    for variant in ConservativeVariant::ALL {
        let policy = ConservativeInterlock::new(variant);
        runs.push((policy.name(), Box::new(policy)));
    }
    for (name, policy) in runs {
        let stats = ipcl_bench::simulate(&arch, policy, packets, 0.6, 1.0, 0xF1DE);
        for (cause, count) in &stats.stalls_by_cause {
            ipcl_bench::row(&[name.to_owned(), cause.clone(), count.to_string()]);
        }
    }
}
