//! Experiment E14: parallel proof-engine scaling.
//!
//! Speedup-versus-cores of the work-stealing parallel PDR engine
//! (`ipcl_pdr::parallel`) on the deep wait-state chain family — the
//! workload whose proofs are dominated by independent consecution /
//! generalisation queries, i.e. exactly the work the scheduler fans out.
//! Each depth runs:
//!
//! * the **sequential** engine (`check_property_pdr`) as the baseline row;
//! * the **parallel** engine at 1, 2, 4 and 8 workers.
//!
//! Asserted invariants (the determinism guarantee is checked on every
//! run, the performance claims only where they are measurable):
//!
//! * the certificate renders **bit-identically** across every worker
//!   count — the scheduler's determinism-by-construction claim;
//! * 1-worker parallel is within 10% of the sequential engine (no-thread
//!   fast path; asserted in full runs, reported in smoke runs);
//! * ≥ 3× speedup at 8 workers over 1 worker on the deepest chain —
//!   asserted only in full runs on hosts with ≥ 8 available cores, since
//!   wall-clock scaling is meaningless on fewer. When the assertion
//!   cannot run, the deepest chain's 8-worker row says so explicitly
//!   (`"gated": true`, plus a stderr note) rather than passing silently.
//!
//! Per-run attribution metrics (`imported`, `exported`, `speedup`) are
//! *not* deterministic across runs — which worker solves which task is
//! timing-dependent — and are ignored by `baselines/tolerances.json`;
//! the worker-aggregated solver `conflicts` are omitted from parallel
//! rows for the same reason.
//!
//! Emits a `BENCH_*.json` document on stdout; `--smoke` shrinks the sweep
//! for CI; `--threads N` caps the worker sweep; `--trace <dir>` /
//! `--profile` / `--watch` enable the observability layer (the live
//! progress line renders one `pdr:wN` entry per worker).

use std::time::Instant;

use ipcl_bench::{emit_bench_json, median_ms, TraceArgs};
use ipcl_bmc::{Latency, PropertyKind, SequentialProperty};
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{
    check_property_pdr_parallel_traced, check_property_pdr_traced, ParallelPdrOptions, PdrOptions,
    PdrOutcome, PdrResult,
};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    verdict: String,
    certificate: String,
    result: PdrResult,
}

fn summarize(name: &str, result: PdrResult) -> Measurement {
    let PdrOutcome::Proved {
        certificate,
        fixpoint_frame,
    } = &result.outcome
    else {
        panic!(
            "{name}: PDR must prove the deep chain, got {:?}",
            result.outcome
        );
    };
    assert!(
        result
            .validation
            .as_ref()
            .expect("validation requested")
            .ok(),
        "{name}: certificate failed independent re-validation"
    );
    Measurement {
        verdict: format!(
            "proved@F{fixpoint_frame} ({} clauses)",
            certificate.clauses.len()
        ),
        certificate: certificate.render(),
        result,
    }
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    // `--threads N` caps the sweep when given explicitly; by default the
    // full 1/2/4/8 sweep runs even on smaller hosts (oversubscribed worker
    // counts still measure — and still must agree bit-for-bit).
    let threads_cap = std::env::args().any(|arg| arg == "--threads");
    let repeats = if smoke { 1 } else { 3 };
    let trace = TraceArgs::from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let depths: &[usize] = if smoke { &[5, 8] } else { &[10, 13, 16] };
    let deepest = *depths.last().expect("non-empty sweep");

    let mut entries: Vec<String> = Vec::new();
    for &depth in depths {
        let name = format!("deep-chain-{depth}");
        let (spec, netlist) = deep_pipeline(depth);
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );

        // ---- sequential baseline.
        let mut times = Vec::new();
        let mut sequential = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let result = check_property_pdr_traced(
                &spec,
                &netlist,
                &property,
                &PdrOptions::default(),
                None,
                trace.tracer(),
            )
            .expect("netlist elaborates");
            let ms = start.elapsed().as_secs_f64() * 1e3;
            sequential = Some(summarize(&name, result));
            times.push(ms);
        }
        let sequential = sequential.expect("at least one repeat");
        let sequential_ms = median_ms(times);
        entries.push(format!(
            concat!(
                "  {{\"experiment\": \"parallel_scaling\", \"workload\": \"{}\", ",
                "\"engine\": \"sequential\", \"workers\": 0, \"verdict\": \"{}\", ",
                "\"ms\": {:.3}, \"clauses\": {}, \"obligations\": {}, \"conflicts\": {}}}"
            ),
            name,
            sequential.verdict,
            sequential_ms,
            sequential.result.stats.clauses,
            sequential.result.stats.obligations,
            sequential.result.stats.conflicts,
        ));

        // ---- parallel at each worker count.
        let mut one_worker_ms = f64::NAN;
        let mut reference_certificate: Option<String> = None;
        for workers in WORKER_SWEEP {
            if threads_cap && workers > trace.threads.max(1) {
                eprintln!(
                    "{name}: skipping {workers} workers (--threads {})",
                    trace.threads
                );
                continue;
            }
            let options = ParallelPdrOptions {
                threads: workers,
                ..Default::default()
            };
            let mut times = Vec::new();
            let mut measured = None;
            for _ in 0..repeats {
                let start = Instant::now();
                let result = check_property_pdr_parallel_traced(
                    &spec,
                    &netlist,
                    &property,
                    &options,
                    None,
                    trace.tracer(),
                )
                .expect("netlist elaborates");
                let ms = start.elapsed().as_secs_f64() * 1e3;
                let measurement = summarize(&name, result);
                // The determinism guarantee, checked on every repeat at
                // every worker count: one certificate per workload.
                match &reference_certificate {
                    None => reference_certificate = Some(measurement.certificate.clone()),
                    Some(reference) => assert_eq!(
                        &measurement.certificate, reference,
                        "{name}: certificate diverged at {workers} workers"
                    ),
                }
                times.push(ms);
                measured = Some(measurement);
            }
            let measured = measured.expect("at least one repeat");
            let ms = median_ms(times);
            if workers == 1 {
                one_worker_ms = ms;
            }
            let speedup = one_worker_ms / ms;
            let stats = &measured.result.stats;
            // The ≥3× scaling claim only applies to the deepest chain's
            // 8-worker row, and only measures on full runs with ≥8 cores.
            // When it cannot be asserted the row says so explicitly —
            // `"gated": true` — instead of silently passing.
            let scaling_row = workers == 8 && depth == deepest;
            let gated = scaling_row && (smoke || cores < 8);
            let gated_field = if scaling_row {
                format!(", \"gated\": {gated}")
            } else {
                String::new()
            };
            // `clauses`/`obligations` are canonical statistics (identical
            // at every worker count and run); `speedup`/`imported`/
            // `exported` are per-run attribution, ignored by
            // `baselines/tolerances.json`. The solver-internal `conflicts`
            // aggregate over worker solvers whose query mix depends on
            // stealing order, so parallel rows deliberately omit them.
            entries.push(format!(
                concat!(
                    "  {{\"experiment\": \"parallel_scaling\", \"workload\": \"{}\", ",
                    "\"engine\": \"parallel\", \"workers\": {}, \"verdict\": \"{}\", ",
                    "\"ms\": {:.3}, \"speedup\": {:.3}, \"clauses\": {}, \"obligations\": {}, ",
                    "\"imported\": {}, \"exported\": {}{}}}"
                ),
                name,
                workers,
                measured.verdict,
                ms,
                speedup,
                stats.clauses,
                stats.obligations,
                stats.imported_clauses,
                stats.exported_clauses,
                gated_field,
            ));

            // ---- the scaling claims, where measurable.
            if workers == 1 {
                let overhead = ms / sequential_ms;
                eprintln!(
                    "{name}: 1-worker parallel {ms:.2}ms vs sequential {sequential_ms:.2}ms \
                     ({overhead:.2}x)"
                );
                if !smoke {
                    assert!(
                        overhead <= 1.10,
                        "{name}: 1-worker parallel must stay within 10% of sequential \
                         ({ms:.2}ms vs {sequential_ms:.2}ms)"
                    );
                }
            }
            if scaling_row && !gated {
                assert!(
                    speedup >= 3.0,
                    "{name}: expected ≥3x speedup at 8 workers on an {cores}-core host, \
                     got {speedup:.2}x"
                );
            } else if scaling_row && cores < 8 {
                eprintln!(
                    "{name}: ≥3x @ 8 workers assertion gated: host has {cores} cores (<8), \
                     wall-clock scaling is not measurable"
                );
            }
        }
    }

    emit_bench_json("parallel_scaling", smoke, &entries);
    eprintln!(
        "{} depths × (sequential + {} worker counts): {} points ({cores} cores available)",
        depths.len(),
        WORKER_SWEEP.len(),
        entries.len()
    );
    trace.finish();
}
