//! Experiment E3 (Figure 3): the maximum-performance specification derived
//! from the functional specification, and the closed-form `moe` expressions
//! obtained by fixed-point iteration (Section 3.2).
//!
//! The binary also checks, exhaustively, that the derived assignment
//! satisfies the combined specification and is maximal — i.e. that flipping
//! every `→` of Figure 2 into `↔` indeed yields the least-stalling solution.

use ipcl_checker::{check_derived_implementation, Engine};
use ipcl_core::example::ExampleArch;
use ipcl_core::fixpoint::{derive_concrete, derive_symbolic, is_most_liberal};
use ipcl_expr::{Assignment, VarId};

fn main() {
    let spec = ExampleArch::new().functional_spec();

    println!("# Figure 3 — maximum performance specification\n");
    print!("{}", spec.performance_text());

    let derivation = derive_symbolic(&spec);
    println!(
        "\n## Closed-form moe assignment (fixed point after {} iterations, lock-step cycle: {})\n",
        derivation.iterations, derivation.had_cycles
    );
    ipcl_bench::header(&["moe flag", "maximum-performance closed form"]);
    for (var, expr) in &derivation.moe {
        ipcl_bench::row(&[
            spec.pool().name_or_fallback(*var),
            expr.display(spec.pool()).to_string(),
        ]);
    }

    // Exhaustive maximality check over every environment valuation.
    let env_vars: Vec<VarId> = spec.env_vars().into_iter().collect();
    let mut maximal_everywhere = true;
    for mask in 0u64..(1 << env_vars.len()) {
        let env: Assignment = env_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, mask & (1 << i) != 0))
            .collect();
        let moe = derive_concrete(&spec, &env);
        if !is_most_liberal(&spec, &env, &moe) {
            maximal_everywhere = false;
            break;
        }
    }
    println!(
        "\nmaximality over all {} environments: {}",
        1u64 << env_vars.len(),
        maximal_everywhere
    );
    let verdict = check_derived_implementation(&spec, Engine::Bdd);
    println!(
        "derived interlock satisfies the combined specification (BDD proof): {}",
        verdict.holds()
    );
}
