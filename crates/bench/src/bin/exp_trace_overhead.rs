//! Experiment E12: the observability layer's overhead and fidelity.
//!
//! Two measurements on the `deep_pipeline(16)` workload (the deepest
//! deep-chain of E10 — thousands of sub-millisecond SAT queries, the
//! regime where per-query instrumentation is most expensive):
//!
//! * **overhead** — the PDR engine (single-threaded, so wall-clock is not
//!   at the mercy of two racing threads' scheduling) with
//!   `Tracer::disabled()` vs. `TraceConfig::enabled()`, timed min-of-N
//!   interleaved (minimum, not median: tracing cost is a strict additive
//!   overhead, so the minimum is the cleanest estimator under scheduler
//!   noise). The full run asserts overhead < 5%; `--smoke` relaxes the
//!   gate to reporting only — one smoke iteration cannot beat jitter.
//! * **fidelity** — one fully traced BMC/PDR portfolio run. The span tree
//!   must cover ≥ 95% of the traced wall-clock, and `trace.jsonl` must
//!   round-trip: serialised events parse back
//!   ([`ipcl_trace::report::parse_jsonl`]) equal to the snapshot's, and
//!   the span events reconstruct into a well-nested per-thread tree
//!   ([`ipcl_trace::report::reconstruct_spans`]) even with two racer
//!   threads interleaving their event streams.
//!
//! Emits a `BENCH_*.json` document with both timings and the derived
//! overhead ratio. `--trace <dir>` / `--profile` emit the portfolio run's
//! artifacts.

use std::time::Instant;

use ipcl_bench::{emit_bench_json, TraceArgs};
use ipcl_bmc::{BmcOptions, Latency, PropertyKind, SequentialProperty};
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{check_property_pdr_traced, check_property_portfolio_traced, PdrOptions};
use ipcl_trace::{report, TraceConfig, Tracer};

const CHAIN_DEPTH: usize = 16;

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let repeats = if smoke { 2 } else { 7 };
    let trace = TraceArgs::from_env();

    let (spec, netlist) = deep_pipeline(CHAIN_DEPTH);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let bmc_options = BmcOptions {
        max_depth: CHAIN_DEPTH.saturating_sub(3),
        ..Default::default()
    };
    let pdr_options = PdrOptions::default();

    // ---- Overhead: single-threaded PDR, disabled vs. enabled tracer.
    let run_pdr = |tracer: &Tracer| {
        let start = Instant::now();
        let result =
            check_property_pdr_traced(&spec, &netlist, &property, &pdr_options, None, tracer)
                .expect("netlist elaborates");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            result.outcome.is_proved(),
            "deep-chain-{CHAIN_DEPTH} must be proved, got {:?}",
            result.outcome
        );
        ms
    };

    // Warm-up: fault in the encoder/solver allocations once.
    run_pdr(&Tracer::disabled());

    // Min-of-N per configuration, interleaved so slow-clock drift (thermal,
    // scheduler) hits both configurations alike.
    let mut disabled_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    for _ in 0..repeats {
        disabled_ms = disabled_ms.min(run_pdr(&Tracer::disabled()));
        enabled_ms = enabled_ms.min(run_pdr(&Tracer::new(TraceConfig::enabled())));
    }
    let overhead = enabled_ms / disabled_ms.max(1e-9) - 1.0;

    // ---- Fidelity gates on one fully traced portfolio run.
    let tracer = Tracer::new(TraceConfig::enabled());
    let portfolio_start = Instant::now();
    let result = check_property_portfolio_traced(
        &spec,
        &netlist,
        &property,
        &bmc_options,
        &pdr_options,
        &tracer,
    )
    .expect("netlist elaborates");
    let portfolio_ms = portfolio_start.elapsed().as_secs_f64() * 1e3;
    assert!(
        result.is_proved(),
        "deep-chain-{CHAIN_DEPTH} must be proved, got winner {:?}",
        result.winner
    );
    let snapshot = tracer
        .snapshot()
        .expect("enabled tracer must produce a snapshot");

    // Span coverage: the root spans (bmc.check / pdr.check on the racer
    // threads, portfolio.race on the caller) must account for >= 95% of the
    // traced wall-clock. The racer threads run concurrently under the
    // portfolio span, so the per-thread roots are compared against the
    // portfolio.race span itself.
    let race_us = snapshot
        .spans
        .iter()
        .find(|s| s.path == ["portfolio.race"])
        .map(|s| s.total_us)
        .expect("the portfolio span is recorded");
    let wall_us = snapshot.wall_us.max(1);
    let coverage = race_us as f64 / wall_us as f64;
    assert!(
        coverage >= 0.95,
        "span tree covers {:.1}% of traced wall time, need >= 95%",
        coverage * 100.0
    );

    // Round-trip: serialised JSONL parses back to the identical events and
    // the span events reconstruct into a well-nested per-thread tree.
    let jsonl = report::events_jsonl(&snapshot);
    let parsed = report::parse_jsonl(&jsonl).expect("trace.jsonl parses");
    assert_eq!(
        parsed, snapshot.events,
        "trace.jsonl must round-trip through the parser"
    );
    // Span stacks are per-thread: the racer's tree roots at pdr.check on
    // its own thread (portfolio.race lives on the caller's).
    let reconstructed = report::reconstruct_spans(&parsed).expect("span events nest correctly");
    assert!(
        reconstructed
            .iter()
            .any(|s| s.path == ["pdr.check", "pdr.propagate"]),
        "the reconstructed tree must contain the engine's nested spans"
    );

    // ---- Overhead gate. One smoke iteration cannot out-vote scheduler
    // jitter on a sub-100ms run, so the gate only arms on the full run.
    if !smoke {
        assert!(
            overhead < 0.05,
            "tracing overhead {:.2}% exceeds the 5% budget \
             (disabled {disabled_ms:.2} ms, enabled {enabled_ms:.2} ms)",
            overhead * 100.0
        );
    }

    let entries = vec![format!(
        concat!(
            "  {{\"experiment\": \"trace_overhead\", \"workload\": \"deep-chain-{}\", ",
            "\"disabled_ms\": {:.3}, \"enabled_ms\": {:.3}, \"overhead\": {:.4}, ",
            "\"portfolio_ms\": {:.3}, \"span_coverage\": {:.4}, \"events\": {}, ",
            "\"dropped_events\": {}}}"
        ),
        CHAIN_DEPTH,
        disabled_ms,
        enabled_ms,
        overhead,
        portfolio_ms,
        coverage,
        snapshot.events.len(),
        snapshot.dropped_events,
    )];
    emit_bench_json("trace_overhead", smoke, &entries);
    eprintln!(
        "deep-chain-{CHAIN_DEPTH} PDR: disabled {disabled_ms:.2} ms, \
         enabled {enabled_ms:.2} ms ({:+.2}%); traced portfolio {portfolio_ms:.2} ms, \
         span coverage {:.1}%",
        overhead * 100.0,
        coverage * 100.0
    );

    if trace.dir.is_some() || trace.profile {
        // The E12 artifacts come from the measured enabled run, not from a
        // separate tracer: re-emit through TraceArgs' tracer only when the
        // user asked for artifacts of *this* binary's own run.
        if let Some(dir) = &trace.dir {
            let (trace_path, profile_path) =
                report::write_artifacts(&snapshot, dir).expect("trace artifacts are writable");
            eprintln!(
                "trace artifacts: {} and {}",
                trace_path.display(),
                profile_path.display()
            );
        }
        if trace.profile {
            eprint!("{}", report::render_profile(&snapshot));
        }
    }
}
