//! Experiment E9: BMC scaling with unroll depth k.
//!
//! Sweeps the unroll depth of a falsification-free BMC run (the combined
//! specification at registered latency, which holds at every depth) on the
//! registered paper-example interlock, in both solver modes:
//!
//! * `incremental` — one solver shared across depths, property activation
//!   via assumptions, learned clauses retained;
//! * `scratch` — a fresh unrolling and solver per depth.
//!
//! Emits a `BENCH_*.json` document (one entry per `(mode, depth)` point)
//! with wall-clock solve time, clause counts and CDCL statistics —
//! cumulative over the run *and* the per-depth delta of the final depth's
//! base solve (isolated from the incremental stream via
//! `SolverStats::delta`) — to seed the benchmarking trajectory of the
//! repository. The incremental path should be measurably faster and its
//! advantage should grow with depth.
//!
//! `--smoke` shrinks the depth sweep for CI; `--trace <dir>` /
//! `--profile` / `--watch` enable the `ipcl-trace` observability layer
//! (see [`ipcl_bench::TraceArgs`]).

use std::time::Instant;

use ipcl_bench::{emit_bench_json, TraceArgs};
use ipcl_bmc::{check_property_traced, BmcOptions, Latency, PropertyKind, SequentialProperty};
use ipcl_core::example::ExampleArch;
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let trace = TraceArgs::from_env();
    let spec = ExampleArch::new().functional_spec();
    let synthesized = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);

    // One warm-up run so first-touch allocation noise stays out of depth 1.
    let _ = check_property_traced(
        &spec,
        synthesized.netlist(),
        &property,
        &BmcOptions::with_depth(2),
        None,
        &ipcl_trace::Tracer::disabled(),
    );

    let depths: &[usize] = if smoke {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 6, 8, 12, 16, 24, 32]
    };
    let mut entries = Vec::new();
    let mut incremental_total = 0.0f64;
    let mut scratch_total = 0.0f64;
    for &depth in depths {
        for (mode, incremental) in [("incremental", true), ("scratch", false)] {
            let options = BmcOptions {
                max_depth: depth,
                incremental,
                induction: false,
                ..Default::default()
            };
            // Median of three runs keeps scheduler noise out of the trend.
            let mut times = Vec::new();
            let mut last_stats = None;
            for _ in 0..3 {
                let start = Instant::now();
                let result = check_property_traced(
                    &spec,
                    synthesized.netlist(),
                    &property,
                    &options,
                    None,
                    trace.tracer(),
                )
                .expect("netlist elaborates");
                times.push(start.elapsed().as_secs_f64() * 1e3);
                assert!(
                    !result.outcome.is_falsified(),
                    "combined/registered property holds at every depth"
                );
                last_stats = Some(result.stats);
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let median_ms = times[1];
            let stats = last_stats.expect("three runs completed");
            if incremental {
                incremental_total += median_ms;
            } else {
                scratch_total += median_ms;
            }
            entries.push(format!(
                concat!(
                    "  {{\"experiment\": \"bmc_depth\", \"mode\": \"{}\", \"depth\": {}, ",
                    "\"solve_ms\": {:.3}, \"clauses\": {}, \"solve_calls\": {}, ",
                    "\"conflicts\": {}, \"propagations\": {}, ",
                    "\"last_depth_conflicts\": {}, \"last_depth_propagations\": {}}}"
                ),
                mode,
                depth,
                median_ms,
                stats.base_clauses,
                stats.solve_calls,
                stats.conflicts,
                stats.propagations,
                stats.last_depth_conflicts,
                stats.last_depth_propagations,
            ));
        }
    }
    emit_bench_json("bmc_depth", smoke, &entries);
    eprintln!(
        "total solve time: incremental {incremental_total:.1} ms, scratch {scratch_total:.1} ms \
         ({:.2}x)",
        scratch_total / incremental_total.max(1e-9)
    );
    assert!(
        incremental_total < scratch_total,
        "incremental BMC must beat from-scratch re-encoding across the sweep"
    );
    trace.finish();
}
