//! Experiment E2 (Figure 2): the functional specification of the example
//! architecture, in both the abstract and the fully bit-level operand
//! encodings, plus the Section 3.1 precondition report.

use ipcl_core::example::{ExampleArch, OperandStyle};
use ipcl_core::properties::check_preconditions;

fn main() {
    for (title, arch) in [
        ("abstract operand interlock", ExampleArch::new()),
        ("bit-level operand interlock", ExampleArch::bit_level()),
    ] {
        let spec = arch.functional_spec();
        println!("# Figure 2 — functional specification ({title})\n");
        print!("{}", spec.to_text());
        println!();
        ipcl_bench::header(&["stage", "stall rules", "rule labels"]);
        for stage in spec.stages() {
            ipcl_bench::row(&[
                stage.stage.prefix(),
                stage.rules.len().to_string(),
                stage
                    .rules
                    .iter()
                    .map(|r| r.label.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
            ]);
        }
        let report = check_preconditions(&spec);
        println!(
            "\npreconditions: monotone={} P1={} P2={} (pairs checked: {}), lock-step cycle={}\n",
            report.monotone,
            report.p1_all_stalled_satisfies,
            report.p2_disjunction_closed,
            report.p2_samples_checked,
            report.has_cycles
        );
        if matches!(arch.operand_style, OperandStyle::BitLevel) {
            println!(
                "environment signals after bit-level expansion: {}\n",
                spec.env_vars().len()
            );
        }
    }
}
