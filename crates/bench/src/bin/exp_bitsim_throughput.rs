//! Experiment E16: compiled bit-parallel simulation throughput.
//!
//! Measures what the `ipcl-bitsim` compilation buys over the interpreted
//! [`ipcl_rtl::Simulator`] as a *sweep engine*: scenario-cycles per
//! wall-second ("sweeps/sec"), where one sweep is one scenario advanced by
//! one clock cycle. The interpreter walks the gate graph once per scenario
//! per cycle; the compiled engine executes one levelized straight-line
//! pass over packed `u64` words and advances 64 scenarios at a time.
//!
//! Three design families, matching where the sweep pre-pass actually runs:
//!
//! * `interlock` — the paper's registered interlock controller (the design
//!   the checker's falsification pre-pass fuzzes before dispatching SAT);
//! * `deep_chain` — the deep wait-state chains of `ipcl_pdr::deep`, swept
//!   over `depth` (the id metric); long levelized register chains are the
//!   compiled engine's best case and the family the headline claim is
//!   asserted on;
//! * `synthetic` — a seeded random gate soup (mux/xor-heavy, one register
//!   fold-back), the shape the differential fuzz suite exercises.
//!
//! **Oracle discipline before any clock is read:** for every design the
//! harness first runs a differential check — all 64 lanes of the compiled
//! engine against 64 independently driven interpreter runs, every signal,
//! every cycle — and panics on the first mismatch. Timing a simulator that
//! disagrees with the oracle would be meaningless.
//!
//! Asserted invariant (full runs only; `--smoke` reports without
//! asserting): on every `deep_chain` design the compiled engine sustains
//! **≥ 20×** the interpreter's sweeps/sec. The observed ratio on a single
//! core is typically far higher (the 64 lanes compound with the cheaper
//! per-gate dispatch), so 20× leaves room for noisy shared runners.
//!
//! Emits a `BENCH_*.json` document on stdout; `--smoke` shrinks the sweep
//! for CI; `--trace` / `--profile` / `--watch` enable the observability
//! layer as in every other experiment binary.

use std::time::Instant;

use ipcl_bench::{emit_bench_json, TraceArgs};
use ipcl_bitsim::{BitSimulator, LANES};
use ipcl_core::example::ExampleArch;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_rtl::{Netlist, SignalId, SignalKind, Simulator};
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};
use ipcl_trace::Value;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The primary inputs of `netlist`, in id order.
fn primary_inputs(netlist: &Netlist) -> Vec<SignalId> {
    netlist
        .iter()
        .filter(|(_, signal)| matches!(signal.kind, SignalKind::Input))
        .map(|(id, _)| id)
        .collect()
}

/// A seeded random gate soup: `inputs` primary inputs, `gates` mixed
/// combinational gates, one register folding the last gate back in — the
/// same design family the differential fuzz suite draws from proptest.
fn synthetic_netlist(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut netlist = Netlist::new("synthetic");
    let mut nodes: Vec<SignalId> = (0..inputs)
        .map(|i| netlist.input(&format!("in{i}")))
        .collect();
    for j in 0..gates {
        let pick = |rng: &mut StdRng, nodes: &[SignalId]| {
            nodes[(rng.next_u64() % nodes.len() as u64) as usize]
        };
        let name = format!("g{j}");
        let a = pick(&mut rng, &nodes);
        let b = pick(&mut rng, &nodes);
        let c = pick(&mut rng, &nodes);
        let id = match rng.next_u64() % 6 {
            0 => netlist.buf_gate(&name, a),
            1 => netlist.not_gate(&name, a),
            2 => netlist.and_gate(&name, [a, b]),
            3 => netlist.or_gate(&name, [a, b]),
            4 => netlist.xor_gate(&name, a, b),
            _ => netlist.mux_gate(&name, a, b, c),
        };
        nodes.push(id);
    }
    let last = *nodes.last().expect("at least one input");
    let register = netlist.register("state", false);
    netlist
        .connect_register(register, last)
        .expect("combinational next");
    let out = netlist.or_gate("out", [register, last]);
    netlist.mark_output(out);
    netlist
}

/// The pre-timing oracle check: every lane of the compiled engine against
/// 64 independently driven interpreter runs, every signal, every cycle.
///
/// # Panics
///
/// On the first divergence — a simulator that disagrees with the oracle
/// must not be timed.
fn differential_check(netlist: &Netlist, cycles: usize, seed: u64) {
    let inputs = primary_inputs(netlist);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bits = BitSimulator::new(netlist).expect("design compiles");
    let mut interps: Vec<Simulator> = (0..LANES)
        .map(|_| Simulator::new(netlist).expect("design elaborates"))
        .collect();
    for cycle in 0..cycles {
        let frame: Vec<u64> = inputs.iter().map(|_| rng.next_u64()).collect();
        for (&input, &word) in inputs.iter().zip(&frame) {
            bits.set_input_word(input, word);
        }
        for (lane, interp) in interps.iter_mut().enumerate() {
            interp.set_inputs(
                inputs
                    .iter()
                    .zip(&frame)
                    .map(|(&input, &word)| (input, (word >> lane) & 1 == 1)),
            );
        }
        for (id, signal) in netlist.iter() {
            let word = bits.value_word(id);
            for (lane, interp) in interps.iter().enumerate() {
                assert_eq!(
                    (word >> lane) & 1 == 1,
                    interp.value(id),
                    "compiled simulator diverges from the interpreter oracle: \
                     cycle {cycle}, lane {lane}, signal '{}' of '{}'",
                    signal.name,
                    netlist.name()
                );
            }
        }
        bits.step();
        for interp in &mut interps {
            interp.step();
        }
    }
}

/// Interpreted sweep rate: one scenario per run, `steps` cycles of batched
/// random input driving per scenario, `reps` scenarios. Returns
/// scenario-cycles per second.
fn interpreted_rate(netlist: &Netlist, steps: usize, reps: usize, seed: u64) -> f64 {
    let inputs = primary_inputs(netlist);
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = Simulator::new(netlist).expect("design elaborates");
        for _ in 0..steps {
            sim.set_inputs(inputs.iter().map(|&input| (input, rng.next_u64() & 1 == 1)));
            sim.step();
        }
    }
    (reps * steps) as f64 / start.elapsed().as_secs_f64()
}

/// Compiled sweep rate: 64 scenarios per run, `steps` cycles of random
/// word driving, `reps` runs. Returns scenario-cycles per second.
fn compiled_rate(netlist: &Netlist, steps: usize, reps: usize, seed: u64) -> f64 {
    let inputs = primary_inputs(netlist);
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    for _ in 0..reps {
        let mut sim = BitSimulator::new(netlist).expect("design compiles");
        for _ in 0..steps {
            for &input in &inputs {
                sim.set_input_word(input, rng.next_u64());
            }
            sim.step();
        }
    }
    (reps * steps * LANES) as f64 / start.elapsed().as_secs_f64()
}

/// Median of three rate measurements (rates are noisy in the same way
/// timings are; the median discards the one-off outlier).
fn median_rate(measure: impl Fn() -> f64) -> f64 {
    let mut rates = [measure(), measure(), measure()];
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[1]
}

struct Design {
    label: &'static str,
    /// The `deep_chain` sweep parameter; `None` for the fixed designs.
    depth: Option<usize>,
    netlist: Netlist,
    /// Whether the ≥ 20× claim is asserted on this design (full runs).
    assert_speedup: bool,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let trace = TraceArgs::from_env();

    let spec = ExampleArch::new().functional_spec();
    let interlock = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    )
    .netlist()
    .clone();

    let depths: Vec<usize> = if smoke {
        vec![16, 32]
    } else {
        vec![64, 128, 256]
    };
    let (synth_gates, steps, reps) = if smoke {
        (256, 2_000, 1)
    } else {
        (2_048, 20_000, 2)
    };

    let mut designs = vec![Design {
        label: "interlock",
        depth: None,
        netlist: interlock,
        assert_speedup: false,
    }];
    for &depth in &depths {
        designs.push(Design {
            label: "deep_chain",
            depth: Some(depth),
            netlist: deep_pipeline(depth).1,
            assert_speedup: !smoke,
        });
    }
    designs.push(Design {
        label: "synthetic",
        depth: None,
        netlist: synthetic_netlist(8, synth_gates, 0xB175),
        assert_speedup: false,
    });

    let mut entries = Vec::new();
    for design in &designs {
        let tag = match design.depth {
            Some(depth) => format!("{} depth {depth}", design.label),
            None => design.label.to_owned(),
        };
        let signals = design.netlist.iter().count();

        // Oracle first, clock second.
        differential_check(&design.netlist, 4, 0x0DD5);

        let span = trace.tracer().span("bitsim_throughput.design");
        let interp = median_rate(|| interpreted_rate(&design.netlist, steps, reps, 0x5EED));
        let compiled = median_rate(|| compiled_rate(&design.netlist, steps, reps, 0x5EED));
        drop(span);
        let speedup = compiled / interp;

        trace.tracer().event(
            "bitsim_throughput.measured",
            &[
                ("design", Value::from(design.label)),
                ("signals", Value::U64(signals as u64)),
                ("interp_sweeps_per_sec", Value::F64(interp)),
                ("bitsim_sweeps_per_sec", Value::F64(compiled)),
                ("speedup", Value::F64(speedup)),
            ],
        );
        eprintln!(
            "{tag}: {signals} signals, interpreted {interp:.0} sweeps/s, \
             compiled {compiled:.0} sweeps/s, speedup {speedup:.1}x"
        );
        if design.assert_speedup {
            assert!(
                speedup >= 20.0,
                "{tag}: compiled engine must sustain >= 20x the interpreter \
                 ({compiled:.0} vs {interp:.0} sweeps/s = {speedup:.1}x)"
            );
        }

        let depth_field = design
            .depth
            .map(|depth| format!(", \"depth\": {depth}"))
            .unwrap_or_default();
        entries.push(format!(
            concat!(
                "  {{\"experiment\": \"bitsim_throughput\", \"design\": \"{}\"{}, ",
                "\"signals\": {}, \"steps\": {}, ",
                "\"interp_sweeps_per_sec\": {:.1}, \"bitsim_sweeps_per_sec\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            design.label, depth_field, signals, steps, interp, compiled, speedup,
        ));
    }

    emit_bench_json("bitsim_throughput", smoke, &entries);
    trace.finish();
}
