//! Criterion benchmark (ablation): BDD vs SAT engines for checking the
//! derived interlock against the combined specification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_checker::{check_derived_implementation, Engine};
use ipcl_core::ArchSpec;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("implementation_check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for arch in [
        ArchSpec::paper_example(),
        ArchSpec::synthetic(2, 6),
        ArchSpec::synthetic(4, 4),
        ArchSpec::firepath_like(),
    ] {
        let spec = arch.functional_spec().expect("well-formed");
        for engine in Engine::ALL {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), &arch.name),
                &spec,
                |b, spec| {
                    b.iter(|| {
                        let report = check_derived_implementation(spec, engine);
                        assert!(report.holds());
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
