//! Criterion benchmark: the IC3/PDR engine versus k-induction.
//!
//! Two regimes: on registered interlocks both engines prove quickly and the
//! bench compares their constant factors; on the deep wait-state chains
//! k-induction runs to its bound without an answer while PDR's cost is the
//! discovery of the chain lemmas — the gap the portfolio checker exists to
//! arbitrate. The `parallel_pdr` group measures the parallel engine's
//! scheduling overhead against the sequential engine and across worker
//! counts (wall-clock scaling itself is the domain of experiment E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_bmc::{check_property, BmcOptions, Latency, PropertyKind, SequentialProperty};
use ipcl_core::example::ExampleArch;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{
    check_property_pdr, check_property_pdr_parallel, check_property_portfolio, ParallelPdrOptions,
    PdrOptions,
};
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

fn bench_registered_example(c: &mut Criterion) {
    let spec = ExampleArch::new().functional_spec();
    let synthesized = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);

    let mut group = c.benchmark_group("proof_engines_registered_example");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("kinduction", |b| {
        b.iter(|| {
            let result = check_property(
                &spec,
                synthesized.netlist(),
                &property,
                &BmcOptions::with_depth(8),
            )
            .unwrap();
            assert!(result.outcome.is_proved());
        })
    });
    group.bench_function("pdr", |b| {
        b.iter(|| {
            let result = check_property_pdr(
                &spec,
                synthesized.netlist(),
                &property,
                &PdrOptions::default(),
            )
            .unwrap();
            assert!(result.outcome.is_proved());
        })
    });
    group.bench_function("portfolio", |b| {
        b.iter(|| {
            let result = check_property_portfolio(
                &spec,
                synthesized.netlist(),
                &property,
                &BmcOptions::with_depth(8),
                &PdrOptions::default(),
            )
            .unwrap();
            assert!(result.is_proved());
        })
    });
    group.finish();
}

fn bench_deep_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdr_deep_chain");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for depth in [6usize, 9, 12] {
        let (spec, netlist) = deep_pipeline(depth);
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        group.bench_with_input(BenchmarkId::new("pdr_prove", depth), &depth, |b, _| {
            b.iter(|| {
                let result =
                    check_property_pdr(&spec, &netlist, &property, &PdrOptions::default()).unwrap();
                assert!(result.outcome.is_proved());
            })
        });
        group.bench_with_input(
            BenchmarkId::new("kinduction_stuck", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    // k-induction pays its full bound and still has no
                    // answer — the baseline cost PDR replaces.
                    let result = check_property(
                        &spec,
                        &netlist,
                        &property,
                        &BmcOptions::with_depth(depth.saturating_sub(3)),
                    )
                    .unwrap();
                    assert!(!result.outcome.is_proved());
                    assert!(!result.outcome.is_falsified());
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_pdr(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_pdr");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let depth = 9usize;
    let (spec, netlist) = deep_pipeline(depth);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    group.bench_function(BenchmarkId::new("sequential", depth), |b| {
        b.iter(|| {
            let result =
                check_property_pdr(&spec, &netlist, &property, &PdrOptions::default()).unwrap();
            assert!(result.outcome.is_proved());
        })
    });
    for workers in [1usize, 2, 4] {
        let options = ParallelPdrOptions {
            threads: workers,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| {
                let result =
                    check_property_pdr_parallel(&spec, &netlist, &property, &options).unwrap();
                assert!(result.outcome.is_proved());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_registered_example,
    bench_deep_chain,
    bench_parallel_pdr
);
criterion_main!(benches);
