//! Criterion benchmark (substrate ablation): BDD construction for interlock
//! specifications under different variable-ordering heuristics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_bdd::{order_from_exprs, BddManager, OrderHeuristic};
use ipcl_core::ArchSpec;

fn bench_bdd_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build_combined_spec");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for arch in [
        ArchSpec::paper_example(),
        ArchSpec::synthetic(2, 6),
        ArchSpec::firepath_like(),
    ] {
        let spec = arch.functional_spec().expect("well-formed");
        let combined = spec.combined_expr();
        for heuristic in [
            OrderHeuristic::FirstOccurrence,
            OrderHeuristic::FrequencyFirst,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{heuristic:?}"), &arch.name),
                &combined,
                |b, combined| {
                    b.iter(|| {
                        let order = order_from_exprs([combined], heuristic);
                        let mut manager = BddManager::with_order(order);
                        let f = manager.from_expr(combined);
                        manager.size(f)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bdd_build);
criterion_main!(benches);
