//! Criterion benchmark: BMC depth sweeps — incremental solving (one solver,
//! clause retention across depths) versus re-encoding from scratch at every
//! depth, plus the cost of a full k-induction proof.
//!
//! The incremental path is the point of `ipcl-sat`'s
//! `solve_under_assumptions`: a falsification-free sweep to depth *d* does
//! O(d) encoding work instead of O(d²), and learned clauses from shallow
//! depths prune the deeper searches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_bmc::{check_property, BmcOptions, Latency, PropertyKind, SequentialProperty};
use ipcl_core::example::ExampleArch;
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

fn bench_depth_sweep(c: &mut Criterion) {
    let spec = ExampleArch::new().functional_spec();
    let synthesized = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );
    // Combined property at registered latency holds at every depth, so the
    // sweep runs to the full bound — the worst case BMC workload.
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);

    let mut group = c.benchmark_group("bmc_depth_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for depth in [4usize, 8, 16] {
        for (mode, incremental) in [("incremental", true), ("scratch", false)] {
            group.bench_with_input(BenchmarkId::new(mode, depth), &depth, |b, &depth| {
                let options = BmcOptions {
                    max_depth: depth,
                    incremental,
                    induction: false,
                    ..Default::default()
                };
                b.iter(|| {
                    let result =
                        check_property(&spec, synthesized.netlist(), &property, &options).unwrap();
                    assert!(!result.outcome.is_falsified());
                    result.stats.solve_calls
                })
            });
        }
    }
    group.finish();
}

fn bench_induction_proof(c: &mut Criterion) {
    let spec = ExampleArch::new().functional_spec();
    let combinational = ipcl_synth::synthesize_interlock(&spec);
    let registered = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("k_induction_proof");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, netlist, latency) in [
        (
            "combinational",
            combinational.netlist(),
            Latency::Combinational,
        ),
        ("registered", registered.netlist(), Latency::Registered),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), netlist, |b, netlist| {
            b.iter(|| {
                for property in SequentialProperty::for_spec(&spec, PropertyKind::Combined, latency)
                {
                    let result =
                        check_property(&spec, netlist, &property, &BmcOptions::default()).unwrap();
                    assert!(result.outcome.is_proved());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth_sweep, bench_induction_proof);
criterion_main!(benches);
