//! Criterion benchmark: specification-to-netlist synthesis and the
//! equivalence check of the result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_checker::{check_netlist, Engine};
use ipcl_core::ArchSpec;
use ipcl_synth::synthesize_interlock;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for arch in [
        ArchSpec::paper_example(),
        ArchSpec::synthetic(4, 6),
        ArchSpec::firepath_like(),
    ] {
        let spec = arch.functional_spec().expect("well-formed");
        group.bench_with_input(
            BenchmarkId::new("synthesize", &arch.name),
            &spec,
            |b, spec| b.iter(|| synthesize_interlock(spec)),
        );
        let synthesized = synthesize_interlock(&spec);
        group.bench_with_input(
            BenchmarkId::new("equivalence_bdd", &arch.name),
            &(&spec, synthesized.netlist()),
            |b, (spec, netlist)| {
                b.iter(|| {
                    check_netlist(spec, netlist, Engine::Bdd)
                        .expect("outputs present")
                        .holds()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
