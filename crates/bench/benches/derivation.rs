//! Criterion benchmark (E9): cost of the fixed-point derivation as the
//! architecture grows in pipe count and pipe depth, for both the concrete
//! (per-cycle) and the symbolic (closed-form) derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_core::fixpoint::{derive_concrete, derive_symbolic};
use ipcl_core::ArchSpec;
use ipcl_expr::Assignment;

fn bench_symbolic_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_symbolic");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (pipes, depth) in [(1u32, 4u32), (2, 4), (2, 8), (4, 6), (6, 6)] {
        let arch = ArchSpec::synthetic(pipes, depth);
        let spec = arch.functional_spec().expect("well-formed");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pipes}x{depth}")),
            &spec,
            |b, spec| b.iter(|| derive_symbolic(spec)),
        );
    }
    // The paper's example and the FirePath-like configuration.
    for arch in [ArchSpec::paper_example(), ArchSpec::firepath_like()] {
        let spec = arch.functional_spec().expect("well-formed");
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &spec, |b, spec| {
            b.iter(|| derive_symbolic(spec))
        });
    }
    group.finish();
}

fn bench_concrete_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_concrete");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for arch in [
        ArchSpec::paper_example(),
        ArchSpec::synthetic(4, 6),
        ArchSpec::firepath_like(),
    ] {
        let spec = arch.functional_spec().expect("well-formed");
        // A busy environment: every rtm and request asserted.
        let env: Assignment = spec
            .env_vars()
            .into_iter()
            .map(|v| {
                let name = spec.pool().name_or_fallback(v);
                (v, name.ends_with(".rtm") || name.ends_with(".req"))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &spec, |b, spec| {
            b.iter(|| derive_concrete(spec, &env))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_symbolic_derivation,
    bench_concrete_derivation
);
criterion_main!(benches);
