//! Criterion benchmark: compiled bit-parallel simulation vs the
//! interpreter.
//!
//! Two angles on the `ipcl-bitsim` engine: `step` measures steady-state
//! stepping cost per design (the interpreter advances one scenario per
//! step, the compiled engine 64 — the wall-clock gap is the whole point),
//! and `compile` measures the one-off netlist-to-program compilation so a
//! regression in the levelizer shows up separately from the run loop.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_bitsim::BitSimulator;
use ipcl_core::example::ExampleArch;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_rtl::{Netlist, Simulator};
use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

fn designs() -> Vec<(String, Netlist)> {
    let spec = ExampleArch::new().functional_spec();
    let interlock = synthesize_interlock_with(
        &spec,
        SynthesisOptions {
            registered_outputs: true,
            reset_value: true,
            ..Default::default()
        },
    )
    .netlist()
    .clone();
    vec![
        ("interlock".to_owned(), interlock),
        ("deep_chain_64".to_owned(), deep_pipeline(64).1),
    ]
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitsim_step");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    const STEPS: u64 = 1_000;
    for (label, netlist) in designs() {
        group.bench_with_input(
            BenchmarkId::new("interpreted", &label),
            &netlist,
            |b, netlist| {
                let mut sim = Simulator::new(netlist).expect("elaborates");
                b.iter(|| {
                    for _ in 0..STEPS {
                        sim.step();
                    }
                    black_box(sim.cycle())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_64_lanes", &label),
            &netlist,
            |b, netlist| {
                let mut sim = BitSimulator::new(netlist).expect("compiles");
                b.iter(|| {
                    for _ in 0..STEPS {
                        sim.step();
                    }
                    black_box(sim.cycle())
                })
            },
        );
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitsim_compile");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, netlist) in designs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(&label),
            &netlist,
            |b, netlist| b.iter(|| BitSimulator::new(black_box(netlist)).expect("compiles")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step, bench_compile);
criterion_main!(benches);
