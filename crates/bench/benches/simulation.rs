//! Criterion benchmark: cycle throughput of the pipeline simulator with the
//! maximal interlock, with and without a runtime assertion monitor attached.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_assertgen::{AssertionKind, SpecMonitor};
use ipcl_core::ArchSpec;
use ipcl_pipesim::{Machine, MaximalInterlock, WorkloadConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.sample_size(10);
    for arch in [ArchSpec::paper_example(), ArchSpec::firepath_like()] {
        let program = WorkloadConfig::for_arch(&arch, 0.8)
            .with_packets(300)
            .generate(1);
        group.bench_with_input(
            BenchmarkId::new("bare", &arch.name),
            &(&arch, &program),
            |b, (arch, program)| {
                b.iter(|| {
                    let mut machine =
                        Machine::new(arch, Box::new(MaximalInterlock)).expect("valid");
                    machine.run_program(program, 100_000)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("with_monitor", &arch.name),
            &(&arch, &program),
            |b, (arch, program)| {
                b.iter(|| {
                    let mut machine =
                        Machine::new(arch, Box::new(MaximalInterlock)).expect("valid");
                    let spec = machine.spec().clone();
                    let mut monitor = SpecMonitor::new(&spec, AssertionKind::Combined);
                    machine.run_program_with_observer(program, 100_000, |env, moe| {
                        monitor.check_cycle(env, moe);
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
