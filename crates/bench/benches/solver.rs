//! Criterion benchmark: the CDCL solver hot paths, optimized vs. baseline.
//!
//! Three regimes mirror the E11 experiment (`exp_solver_opts`):
//! pigeonhole for raw conflict-driven search (heap decisions,
//! minimization, Luby restarts, database reduction), an incremental
//! assumption stream for the persistent level-0 scheme PDR leans on, and
//! a PDR proof end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ipcl_bench::pigeonhole_cnf;
use ipcl_bmc::{Latency, PropertyKind, SequentialProperty};
use ipcl_expr::Lit;
use ipcl_pdr::deep::deep_pipeline;
use ipcl_pdr::{check_property_pdr, PdrOptions};
use ipcl_sat::{SatResult, Solver, SolverConfig};

fn configs() -> [(&'static str, SolverConfig); 2] {
    [
        ("optimized", SolverConfig::default()),
        ("baseline", SolverConfig::baseline()),
    ]
}

fn bench_pigeonhole(c: &mut Criterion) {
    let cnf = pigeonhole_cnf(8);
    let mut group = c.benchmark_group("solver_pigeonhole_8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &config| {
            b.iter(|| {
                let mut solver = Solver::from_cnf_with_config(&cnf, config);
                assert_eq!(solver.solve(), SatResult::Unsat);
            })
        });
    }
    group.finish();
}

/// A PDR-shaped query stream: one solver, many `solve_under_assumptions`
/// calls with no clause addition in between — the regime where the
/// persistent level-0 trail beats the per-call reset + unit re-scan.
fn bench_assumption_stream(c: &mut Criterion) {
    // A satisfiable chain with a selector per link.
    let num_vars = 60u32;
    let mut group = c.benchmark_group("solver_assumption_stream");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &config| {
            b.iter(|| {
                let mut solver = Solver::with_config(num_vars as usize, config);
                solver.add_clause([Lit::positive(0)]);
                for v in 1..num_vars {
                    solver.add_clause([Lit::negative(v - 1), Lit::positive(v)]);
                }
                for round in 0..200u32 {
                    let selector = Lit::new(round % num_vars, round % 3 != 0);
                    let _ = solver.solve_under_assumptions(&[selector]);
                }
            })
        });
    }
    group.finish();
}

fn bench_pdr_deep_chain(c: &mut Criterion) {
    let (spec, netlist) = deep_pipeline(10);
    let property =
        SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance, Latency::Combinational);
    let mut group = c.benchmark_group("solver_pdr_deep_chain_10");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &config| {
            let options = PdrOptions {
                solver: config,
                ..PdrOptions::default()
            };
            b.iter(|| {
                let result = check_property_pdr(&spec, &netlist, &property, &options).unwrap();
                assert!(result.outcome.is_proved());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_assumption_stream,
    bench_pdr_deep_chain
);
criterion_main!(benches);
