//! Signal traces: per-cycle recordings of simulation runs.
//!
//! Traces are what testbench monitors evaluate assertions over and what the
//! experiment harness dumps when a violation is found. A [`Trace`] records a
//! fixed set of named signals; every call to [`Trace::sample`] appends one
//! row.

use std::fmt;

use crate::netlist::SignalId;
use crate::sim::Simulator;

/// A recording of selected signals over consecutive cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    names: Vec<String>,
    signals: Vec<SignalId>,
    rows: Vec<Vec<bool>>,
    first_cycle: u64,
}

impl Trace {
    /// Creates a trace recording the given signals of `sim`'s netlist.
    pub fn new(sim: &Simulator, signals: &[SignalId]) -> Self {
        Trace {
            names: signals
                .iter()
                .map(|&s| sim.netlist().signal(s).name.clone())
                .collect(),
            signals: signals.to_vec(),
            rows: Vec::new(),
            first_cycle: sim.cycle(),
        }
    }

    /// Creates a trace recording every declared output of the netlist.
    pub fn of_outputs(sim: &Simulator) -> Self {
        Self::new(sim, sim.netlist().outputs())
    }

    /// Appends the current values of the recorded signals as a new row.
    pub fn sample(&mut self, sim: &Simulator) {
        self.rows
            .push(self.signals.iter().map(|&s| sim.value(s)).collect());
    }

    /// The recorded signal names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of recorded rows (cycles).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value of column `name` at `row`, if both exist.
    pub fn value(&self, row: usize, name: &str) -> Option<bool> {
        let column = self.names.iter().position(|n| n == name)?;
        self.rows.get(row).map(|r| r[column])
    }

    /// Iterates over rows as `(cycle, values)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[bool])> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(move |(i, row)| (self.first_cycle + i as u64, row.as_slice()))
    }

    /// Renders the trace as a VCD (value change dump) document.
    ///
    /// The output is accepted by standard waveform viewers; one timestep per
    /// recorded row.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$date ipcl trace $end\n$version ipcl-rtl $end\n$timescale 1ns $end\n");
        out.push_str("$scope module trace $end\n");
        for (i, name) in self.names.iter().enumerate() {
            let id = vcd_identifier(i);
            out.push_str(&format!("$var wire 1 {id} {name} $end\n"));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut previous: Option<&Vec<bool>> = None;
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("#{}\n", i));
            for (column, &value) in row.iter().enumerate() {
                let changed = previous.map(|prev| prev[column] != value).unwrap_or(true);
                if changed {
                    out.push_str(&format!(
                        "{}{}\n",
                        if value { '1' } else { '0' },
                        vcd_identifier(column)
                    ));
                }
            }
            previous = Some(row);
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycle  {}", self.names.join("  "))?;
        for (cycle, row) in self.iter() {
            write!(f, "{cycle:5}  ")?;
            for (name, value) in self.names.iter().zip(row) {
                let width = name.len().max(1);
                write!(f, "{:>width$}  ", if *value { 1 } else { 0 })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Printable single-character-ish VCD identifiers.
fn vcd_identifier(index: usize) -> String {
    // VCD identifiers are arbitrary printable strings; use base-94 ASCII.
    let mut i = index;
    let mut id = String::new();
    loop {
        id.push((33 + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::sim::Simulator;

    fn toggler() -> (Netlist, SignalId) {
        let mut n = Netlist::new("t");
        let r = n.register("toggle", false);
        let nr = n.not_gate("next", r);
        n.connect_register(r, nr).unwrap();
        n.mark_output(r);
        (n, r)
    }

    #[test]
    fn records_rows_in_order() {
        let (n, r) = toggler();
        let mut sim = Simulator::new(&n).unwrap();
        let mut trace = Trace::new(&sim, &[r]);
        for _ in 0..4 {
            trace.sample(&sim);
            sim.step();
        }
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.value(0, "toggle"), Some(false));
        assert_eq!(trace.value(1, "toggle"), Some(true));
        assert_eq!(trace.value(2, "toggle"), Some(false));
        assert_eq!(trace.value(3, "toggle"), Some(true));
        assert_eq!(trace.value(9, "toggle"), None);
        assert_eq!(trace.value(0, "missing"), None);
        assert!(!trace.is_empty());
        assert_eq!(trace.names(), &["toggle".to_owned()]);
        let cycles: Vec<u64> = trace.iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn of_outputs_uses_declared_outputs() {
        let (n, _) = toggler();
        let sim = Simulator::new(&n).unwrap();
        let trace = Trace::of_outputs(&sim);
        assert_eq!(trace.names(), &["toggle".to_owned()]);
        assert!(trace.is_empty());
    }

    #[test]
    fn vcd_output_is_well_formed() {
        let (n, r) = toggler();
        let mut sim = Simulator::new(&n).unwrap();
        let mut trace = Trace::new(&sim, &[r]);
        for _ in 0..3 {
            trace.sample(&sim);
            sim.step();
        }
        let vcd = trace.to_vcd();
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1 ! toggle $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#2"));
        // Value-change encoding: initial 0, change to 1 at cycle 1, back at 2.
        assert!(vcd.contains("0!"));
        assert!(vcd.contains("1!"));
    }

    #[test]
    fn display_renders_table() {
        let (n, r) = toggler();
        let mut sim = Simulator::new(&n).unwrap();
        let mut trace = Trace::new(&sim, &[r]);
        trace.sample(&sim);
        sim.step();
        trace.sample(&sim);
        let rendered = trace.to_string();
        assert!(rendered.contains("cycle"));
        assert!(rendered.contains("toggle"));
        assert!(rendered.lines().count() >= 3);
    }

    #[test]
    fn vcd_identifiers_are_unique_for_many_columns() {
        let ids: Vec<String> = (0..200).map(vcd_identifier).collect();
        let mut deduped = ids.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), ids.len());
    }
}
