//! Cycle-accurate two-phase simulation of netlists.

use crate::netlist::{Gate, Netlist, RtlError, SignalId, SignalKind};

/// A cycle-accurate simulator for one [`Netlist`].
///
/// Semantics per [`Simulator::step`]:
///
/// 1. combinational wires settle given the current inputs and register
///    outputs (phase 1),
/// 2. every register samples its next-state input simultaneously (phase 2),
/// 3. the cycle counter advances.
///
/// Inputs keep their value until changed. After construction (and after
/// [`Simulator::reset`]) registers hold their reset values and the
/// combinational network is already settled.
#[derive(Clone, Debug)]
pub struct Simulator {
    netlist: Netlist,
    eval_order: Vec<SignalId>,
    values: Vec<bool>,
    cycle: u64,
}

impl Simulator {
    /// Builds a simulator, elaborating the netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from [`Netlist::elaborate`] (unconnected
    /// registers, combinational cycles).
    pub fn new(netlist: &Netlist) -> Result<Self, RtlError> {
        let eval_order = netlist.elaborate()?;
        let mut sim = Simulator {
            netlist: netlist.clone(),
            eval_order,
            values: vec![false; netlist.len()],
            cycle: 0,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The number of completed cycles since construction or the last reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Applies the synchronous reset: registers take their init values,
    /// inputs are cleared to zero and the combinational network settles.
    pub fn reset(&mut self) {
        for (id, signal) in self.netlist.iter() {
            self.values[id.index()] = match &signal.kind {
                SignalKind::Register { init, .. } => *init,
                _ => false,
            };
        }
        self.cycle = 0;
        self.settle();
    }

    /// Drives a primary input. The new value is visible to combinational
    /// logic immediately.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not a primary input of the netlist.
    pub fn set_input(&mut self, input: SignalId, value: bool) {
        assert!(
            matches!(self.netlist.signal(input).kind, SignalKind::Input),
            "signal '{}' is not a primary input",
            self.netlist.signal(input).name
        );
        self.values[input.index()] = value;
        self.settle();
    }

    /// Drives a batch of primary inputs, settling the combinational
    /// network **once** at the end — driving `k` inputs through
    /// [`Simulator::set_input`] costs `k` settles, through here exactly
    /// one. This is the path every per-cycle drive loop (counterexample
    /// replay, random falsification, differential oracles) should take.
    ///
    /// # Panics
    ///
    /// Panics if any driven signal is not a primary input of the netlist.
    pub fn set_inputs<I: IntoIterator<Item = (SignalId, bool)>>(&mut self, inputs: I) {
        for (input, value) in inputs {
            assert!(
                matches!(self.netlist.signal(input).kind, SignalKind::Input),
                "signal '{}' is not a primary input",
                self.netlist.signal(input).name
            );
            self.values[input.index()] = value;
        }
        self.settle();
    }

    /// Current value of any signal (input, wire or register output).
    pub fn value(&self, signal: SignalId) -> bool {
        self.values[signal.index()]
    }

    /// Current value of a signal looked up by name.
    pub fn value_by_name(&self, name: &str) -> Option<bool> {
        self.netlist.find(name).map(|id| self.value(id))
    }

    /// Re-evaluates all combinational wires in topological order.
    fn settle(&mut self) {
        for index in 0..self.eval_order.len() {
            let id = self.eval_order[index];
            if let SignalKind::Wire(gate) = &self.netlist.signal(id).kind {
                let value = self.eval_gate(gate);
                self.values[id.index()] = value;
            }
        }
    }

    fn eval_gate(&self, gate: &Gate) -> bool {
        match gate {
            Gate::Const(b) => *b,
            Gate::Buf(a) => self.values[a.index()],
            Gate::Not(a) => !self.values[a.index()],
            Gate::And(ops) => ops.iter().all(|s| self.values[s.index()]),
            Gate::Or(ops) => ops.iter().any(|s| self.values[s.index()]),
            Gate::Xor(a, b) => self.values[a.index()] != self.values[b.index()],
            Gate::Mux { sel, high, low } => {
                if self.values[sel.index()] {
                    self.values[high.index()]
                } else {
                    self.values[low.index()]
                }
            }
        }
    }

    /// Advances one clock cycle (combinational settle, then simultaneous
    /// register update, then settle again for the new state).
    pub fn step(&mut self) {
        self.settle();
        // Sample all register next inputs before updating any register.
        let mut sampled: Vec<(SignalId, bool)> = Vec::new();
        for (id, signal) in self.netlist.iter() {
            if let SignalKind::Register {
                next: Some(next), ..
            } = signal.kind
            {
                sampled.push((id, self.values[next.index()]));
            }
        }
        for (id, value) in sampled {
            self.values[id.index()] = value;
        }
        self.cycle += 1;
        self.settle();
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn combinational_logic_settles_immediately() {
        let mut n = Netlist::new("comb");
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and_gate("and", [a, b]);
        let or = n.or_gate("or", [a, b]);
        let xor = n.xor_gate("xor", a, b);
        let nota = n.not_gate("nota", a);
        let mux = n.mux_gate("mux", a, b, nota);
        let cst = n.constant("one", true);
        let mut sim = Simulator::new(&n).unwrap();
        assert!(!sim.value(and));
        assert!(sim.value(cst));
        sim.set_input(a, true);
        sim.set_input(b, false);
        assert!(!sim.value(and));
        assert!(sim.value(or));
        assert!(sim.value(xor));
        assert!(!sim.value(nota));
        assert!(!sim.value(mux));
        sim.set_input(b, true);
        assert!(sim.value(and));
        assert!(!sim.value(xor));
        assert_eq!(sim.value_by_name("and"), Some(true));
        assert_eq!(sim.value_by_name("nonexistent"), None);
    }

    #[test]
    fn registers_update_simultaneously() {
        // Swap network: r1 <= r2, r2 <= r1. With r1=1, r2=0 initially the
        // values must exchange every cycle, which only works if sampling is
        // simultaneous.
        let mut n = Netlist::new("swap");
        let r1 = n.register("r1", true);
        let r2 = n.register("r2", false);
        n.connect_register(r1, r2).unwrap();
        n.connect_register(r2, r1).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!((sim.value(r1), sim.value(r2)), (true, false));
        sim.step();
        assert_eq!((sim.value(r1), sim.value(r2)), (false, true));
        sim.step();
        assert_eq!((sim.value(r1), sim.value(r2)), (true, false));
        assert_eq!(sim.cycle(), 2);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut n = Netlist::new("reset");
        let r = n.register("r", false);
        let nr = n.not_gate("nr", r);
        n.connect_register(r, nr).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        sim.run(3);
        assert_eq!(sim.cycle(), 3);
        assert!(sim.value(r));
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        assert!(!sim.value(r));
    }

    #[test]
    fn register_init_values_respected() {
        let mut n = Netlist::new("init");
        let high = n.register("high", true);
        let low = n.register("low", false);
        n.connect_register(high, high).unwrap();
        n.connect_register(low, low).unwrap();
        let sim = Simulator::new(&n).unwrap();
        assert!(sim.value(high));
        assert!(!sim.value(low));
    }

    #[test]
    fn batched_set_inputs_matches_sequential_sets() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let and = n.and_gate("and", [a, b]);
        let out = n.or_gate("out", [and, c]);
        let mut one_by_one = Simulator::new(&n).unwrap();
        one_by_one.set_input(a, true);
        one_by_one.set_input(b, true);
        one_by_one.set_input(c, false);
        let mut batched = Simulator::new(&n).unwrap();
        batched.set_inputs([(a, true), (b, true), (c, false)]);
        for id in [a, b, c, and, out] {
            assert_eq!(batched.value(id), one_by_one.value(id));
        }
        assert!(batched.value(out));
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn batched_driving_a_wire_panics() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let w = n.not_gate("w", a);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_inputs([(a, true), (w, true)]);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn driving_a_wire_panics() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let w = n.not_gate("w", a);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(w, true);
    }

    #[test]
    fn pipeline_register_chain_delays_input() {
        let mut n = Netlist::new("chain");
        let input = n.input("in");
        let s1 = n.register("s1", false);
        let s2 = n.register("s2", false);
        let s3 = n.register("s3", false);
        n.connect_register(s1, input).unwrap();
        n.connect_register(s2, s1).unwrap();
        n.connect_register(s3, s2).unwrap();
        n.mark_output(s3);
        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(input, true);
        sim.step();
        sim.set_input(input, false);
        assert!(sim.value(s1));
        assert!(!sim.value(s3));
        sim.step();
        assert!(sim.value(s2));
        sim.step();
        assert!(sim.value(s3));
        sim.step();
        assert!(!sim.value(s3));
    }
}
