//! Register-transfer-level netlists and cycle-accurate simulation.
//!
//! `ipcl-rtl` is the hardware substrate of the workspace: the synthesised
//! interlock controllers produced by `ipcl-synth` are netlists of this crate,
//! the testbench monitors of `ipcl-assertgen` observe its simulation traces,
//! and the property checker extracts boolean expressions from netlists to
//! compare an implementation against its specification.
//!
//! A [`Netlist`] contains input ports, combinational gates and registers.
//! [`Simulator`] evaluates it cycle by cycle with two-phase semantics
//! (combinational settle, then simultaneous register update), [`Trace`]
//! records signal histories, [`Netlist::to_verilog`] emits synthesisable
//! Verilog and [`Netlist::signal_expr`] recovers the boolean function of any
//! signal in terms of inputs and register outputs.
//!
//! # Example
//!
//! ```
//! use ipcl_rtl::{Netlist, Simulator};
//!
//! let mut netlist = Netlist::new("toggler");
//! let toggle = netlist.register("toggle", false);
//! let inverted = netlist.not_gate("next_toggle", toggle);
//! netlist.connect_register(toggle, inverted)?;
//! netlist.mark_output(toggle);
//!
//! let mut sim = Simulator::new(&netlist)?;
//! assert_eq!(sim.value(toggle), false);
//! sim.step();
//! assert_eq!(sim.value(toggle), true);
//! sim.step();
//! assert_eq!(sim.value(toggle), false);
//! # Ok::<(), ipcl_rtl::RtlError>(())
//! ```

pub mod digest;
pub mod extract;
pub mod netlist;
pub mod sim;
pub mod trace;
pub mod unroll;
pub mod verilog;

pub use digest::{sha256_hex, structural_digest};
pub use netlist::{Gate, Netlist, RtlError, Signal, SignalId, SignalKind};
pub use sim::Simulator;
pub use trace::Trace;
pub use unroll::{InitialState, Unroller};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_counter() {
        // Two-bit counter out of registers and gates.
        let mut n = Netlist::new("counter2");
        let bit0 = n.register("bit0", false);
        let bit1 = n.register("bit1", false);
        let next0 = n.not_gate("next0", bit0);
        let carry = bit0;
        let next1 = n.xor_gate("next1", bit1, carry);
        n.connect_register(bit0, next0).unwrap();
        n.connect_register(bit1, next1).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push((sim.value(bit1), sim.value(bit0)));
            sim.step();
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (false, true),
                (true, false),
                (true, true),
                (false, false)
            ]
        );
    }
}
