//! Canonical structural digests of netlists — the cache key of
//! verification-as-a-service.
//!
//! A proof cache (`ipcl-serve`) must recognise a re-submitted design even
//! when the client renamed its internal wires or emitted the signals in a
//! different order, yet must *never* identify two netlists whose observable
//! behaviour differs. [`structural_digest`] walks the cone of influence of
//! a set of *interface* signals (the signals a specification or property
//! refers to by name) and hashes the graph structure, not the text:
//!
//! * every signal gets an iteratively refined colour — a 64-bit hash of its
//!   gate kind and its children's colours, seeded by the only semantic
//!   per-node facts (input-ness, register reset values, constants) — in the
//!   spirit of Weisfeiler–Leman graph colouring, with enough rounds to
//!   traverse the longest register chain in the cone;
//! * commutative gates (`And`, `Or`) sort their children's colours, so
//!   operand order cannot leak into the digest; `Buf` is transparent;
//! * the final digest is a SHA-256 over the sorted `(interface name,
//!   colour)` pairs — interface names *do* participate, because the
//!   property text refers to them, while internal wire names never do.
//!
//! The digest is **renaming- and reordering-invariant** (pinned by
//! proptests in `tests/digest.rs`) and sensitive to every semantic
//! mutation the workspace's bug-injection matrix produces. It is *not* a
//! semantic equivalence check — two structurally different encodings of
//! the same function digest differently, and a hash collision between
//! different functions is theoretically possible — which is exactly why
//! `ipcl-serve` re-validates every cached certificate and replays every
//! cached trace before serving it: the digest only decides where to look,
//! never what to trust.

use std::collections::BTreeSet;

use crate::netlist::{Gate, Netlist, SignalId, SignalKind};

/// A tiny, dependency-free SHA-256 (FIPS 180-4). Only used to finalise
/// digests — the per-round colour refinement uses cheap 64-bit mixing.
struct Sha256 {
    state: [u32; 8],
    buffer: Vec<u8>,
    length: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: Vec::with_capacity(64),
            length: 0,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        self.buffer.extend_from_slice(bytes);
        while self.buffer.len() >= 64 {
            let block: [u8; 64] = self.buffer[..64].try_into().expect("64-byte block");
            self.compress(&block);
            self.buffer.drain(..64);
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer.len() != 56 {
            self.update(&[0]);
        }
        // The padding bytes above were counted into `length`; the encoded
        // length must reflect only the message, so it was captured first.
        let block_tail = bit_length.to_be_bytes();
        self.buffer.extend_from_slice(&block_tail);
        let block: [u8; 64] = self.buffer[..64].try_into().expect("final block");
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// SHA-256 of `bytes`, as lowercase hex. Public so `ipcl-serve` can derive
/// composite cache keys (netlist digest ‖ property text) with the same
/// primitive.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut sha = Sha256::new();
    sha.update(bytes);
    let digest = sha.finish();
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// splitmix64 — the per-round colour mixer. Strong enough avalanche that
/// iterated refinement separates non-isomorphic cones; collisions are
/// caught downstream by certificate re-validation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn combine(tag: u64, parts: &[u64]) -> u64 {
    let mut acc = mix(tag ^ 0x1bc1_5eed_0f0f_a7a7);
    for &part in parts {
        acc = mix(acc ^ part);
    }
    acc
}

fn hash_str(s: &str) -> u64 {
    let mut acc = 0xcbf29ce484222325;
    for byte in s.bytes() {
        acc = mix(acc ^ byte as u64);
    }
    acc
}

/// The cone of influence of `roots`: every signal reachable through gate
/// inputs *and* register next-state edges. Sequential behaviour flows
/// through registers, so the cone must cross them.
fn cone_of(netlist: &Netlist, roots: &[SignalId]) -> BTreeSet<SignalId> {
    let mut cone = BTreeSet::new();
    let mut stack: Vec<SignalId> = roots.to_vec();
    while let Some(signal) = stack.pop() {
        if !cone.insert(signal) {
            continue;
        }
        match &netlist.signal(signal).kind {
            SignalKind::Input => {}
            SignalKind::Wire(gate) => stack.extend(gate.inputs()),
            SignalKind::Register { next, .. } => {
                if let Some(next) = next {
                    stack.push(*next);
                }
            }
        }
    }
    cone
}

/// One refinement round: recompute every cone signal's colour from its
/// kind tag and its children's previous colours.
fn refine(netlist: &Netlist, cone: &BTreeSet<SignalId>, colors: &mut [u64]) {
    let previous = colors.to_owned();
    let of = |id: SignalId| previous[id.index()];
    for &signal in cone {
        let color = match &netlist.signal(signal).kind {
            // Inputs keep their seed: they have no structure to refine.
            SignalKind::Input => previous[signal.index()],
            SignalKind::Register { init, next } => {
                let next_color = next.map(of).unwrap_or(0);
                combine(hash_str("register"), &[*init as u64, next_color])
            }
            SignalKind::Wire(gate) => match gate {
                Gate::Const(value) => combine(hash_str("const"), &[*value as u64]),
                // A buffer is the identity: fully transparent, so inserting
                // or removing buffers cannot change the digest.
                Gate::Buf(a) => of(*a),
                Gate::Not(a) => combine(hash_str("not"), &[of(*a)]),
                Gate::And(ops) => {
                    let mut child: Vec<u64> = ops.iter().map(|&op| of(op)).collect();
                    child.sort_unstable();
                    combine(hash_str("and"), &child)
                }
                Gate::Or(ops) => {
                    let mut child: Vec<u64> = ops.iter().map(|&op| of(op)).collect();
                    child.sort_unstable();
                    combine(hash_str("or"), &child)
                }
                Gate::Xor(a, b) => {
                    let mut child = [of(*a), of(*b)];
                    child.sort_unstable();
                    combine(hash_str("xor"), &child)
                }
                Gate::Mux { sel, high, low } => {
                    combine(hash_str("mux"), &[of(*sel), of(*high), of(*low)])
                }
            },
        };
        colors[signal.index()] = color;
    }
}

/// Canonical structural digest of the cone of influence of the named
/// interface signals, as 64 hex characters.
///
/// `interface` is the set of signal names an external observer (a
/// specification, a property, a testbench) refers to — typically the `moe`
/// outputs plus the environment inputs. Names absent from the netlist are
/// folded into the digest as explicitly absent, so "implements the signal"
/// vs "leaves it to an auxiliary variable" are distinct cache keys.
///
/// Guarantees (see the module docs for the caveat on hash collisions):
///
/// * independent of internal wire/register *names* and of signal
///   *declaration order*;
/// * independent of the module name and of signals outside the cone;
/// * sensitive to gate structure, register reset values, constants and the
///   interface binding itself.
pub fn structural_digest(netlist: &Netlist, interface: &[String]) -> String {
    // Deduplicate and sort the interface: the digest must not depend on
    // how the caller ordered the names.
    let names: BTreeSet<&str> = interface.iter().map(String::as_str).collect();
    let mut bound: Vec<(&str, SignalId)> = Vec::new();
    let mut absent: Vec<&str> = Vec::new();
    for name in names {
        match netlist.find(name) {
            Some(signal) => bound.push((name, signal)),
            None => absent.push(name),
        }
    }

    let roots: Vec<SignalId> = bound.iter().map(|&(_, signal)| signal).collect();
    let cone = cone_of(netlist, &roots);

    // Seed colours: interface signals start from their (external) name so
    // that swapping two symmetric interface nets changes the digest;
    // everything else starts from a kind tag only.
    let mut colors = vec![0u64; netlist.len()];
    for &signal in &cone {
        colors[signal.index()] = match &netlist.signal(signal).kind {
            SignalKind::Input => hash_str("input"),
            SignalKind::Register { init, .. } => combine(hash_str("register"), &[*init as u64]),
            SignalKind::Wire(_) => hash_str("wire"),
        };
    }
    for &(name, signal) in &bound {
        colors[signal.index()] =
            combine(hash_str("iface"), &[hash_str(name), colors[signal.index()]]);
    }

    // Enough rounds for a colour to traverse the longest simple path in the
    // cone — registers included, since behaviour crosses them: the cone
    // size bounds that path, and two extra rounds separate near-fixpoints.
    let rounds = cone.len() + 2;
    for _ in 0..rounds {
        refine(netlist, &cone, &mut colors);
        // Re-pin the interface names after each round: refinement rebuilds
        // a bound signal's colour from pure structure, and the binding is
        // part of what the digest must witness.
        for &(name, signal) in &bound {
            colors[signal.index()] =
                combine(hash_str("iface"), &[hash_str(name), colors[signal.index()]]);
        }
    }

    let mut sha = Sha256::new();
    sha.update(b"ipcl-structural-digest-v1\n");
    for (name, signal) in &bound {
        sha.update(name.as_bytes());
        sha.update(b"=");
        sha.update(&colors[signal.index()].to_be_bytes());
        sha.update(b"\n");
    }
    for name in &absent {
        sha.update(name.as_bytes());
        sha.update(b"=absent\n");
    }
    let digest = sha.finish();
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// FIPS 180-4 test vectors.
    #[test]
    fn sha256_matches_reference_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Crosses one 64-byte block boundary.
        let long = "a".repeat(100);
        assert_eq!(
            sha256_hex(long.as_bytes()),
            "2816597888e4a0d3a36b82b83316ab32680eb8f00f8cd3b904d681246d285a0e"
        );
    }

    fn toggler(names: [&str; 2]) -> Netlist {
        let mut n = Netlist::new("toggler");
        let toggle = n.register(names[0], false);
        let inverted = n.not_gate(names[1], toggle);
        n.connect_register(toggle, inverted).unwrap();
        n.mark_output(toggle);
        n
    }

    #[test]
    fn digest_ignores_internal_names_and_module_name() {
        let a = toggler(["t", "t_next"]);
        let mut b = Netlist::new("другое_имя");
        let toggle = b.register("t", false);
        let inverted = b.not_gate("completely_different", toggle);
        b.connect_register(toggle, inverted).unwrap();
        b.mark_output(toggle);
        let interface = vec!["t".to_owned()];
        assert_eq!(
            structural_digest(&a, &interface),
            structural_digest(&b, &interface)
        );
    }

    #[test]
    fn digest_sees_reset_values_and_gate_structure() {
        let a = toggler(["t", "t_next"]);
        let interface = vec!["t".to_owned()];
        let base = structural_digest(&a, &interface);

        // Flipped reset value.
        let mut b = Netlist::new("toggler");
        let toggle = b.register("t", true);
        let inverted = b.not_gate("t_next", toggle);
        b.connect_register(toggle, inverted).unwrap();
        assert_ne!(structural_digest(&b, &interface), base);

        // Different gate (buffer instead of inverter = a constant flop).
        let mut c = Netlist::new("toggler");
        let toggle = c.register("t", false);
        let buffered = c.buf_gate("t_next", toggle);
        c.connect_register(toggle, buffered).unwrap();
        assert_ne!(structural_digest(&c, &interface), base);
    }

    #[test]
    fn digest_ignores_logic_outside_the_cone() {
        let mut a = toggler(["t", "t_next"]);
        let interface = vec!["t".to_owned()];
        let base = structural_digest(&a, &interface);
        // Dangling logic unrelated to the interface.
        let x = a.input("x");
        let _ = a.not_gate("unrelated", x);
        assert_eq!(structural_digest(&a, &interface), base);
    }

    #[test]
    fn digest_distinguishes_interface_bindings() {
        // Two symmetric registers; binding the interface name to one vs the
        // other must digest differently even though the graph is symmetric
        // modulo the binding.
        let build = |bind_first: bool| {
            let mut n = Netlist::new("pair");
            let r0 = n.register(if bind_first { "out" } else { "other" }, false);
            let r1 = n.register(if bind_first { "other" } else { "out" }, true);
            let n0 = n.not_gate("n0", r0);
            let n1 = n.not_gate("n1", r1);
            n.connect_register(r0, n0).unwrap();
            n.connect_register(r1, n1).unwrap();
            n
        };
        let interface = vec!["out".to_owned()];
        assert_ne!(
            structural_digest(&build(true), &interface),
            structural_digest(&build(false), &interface)
        );
    }

    #[test]
    fn digest_marks_absent_interface_signals() {
        let n = toggler(["t", "t_next"]);
        let with = structural_digest(&n, &["t".to_owned(), "missing".to_owned()]);
        let without = structural_digest(&n, &["t".to_owned()]);
        assert_ne!(with, without);
    }

    #[test]
    fn digest_is_order_invariant_in_the_interface_list() {
        let n = toggler(["t", "t_next"]);
        let ab = structural_digest(&n, &["t".to_owned(), "t_next".to_owned()]);
        let ba = structural_digest(&n, &["t_next".to_owned(), "t".to_owned()]);
        assert_eq!(ab, ba);
    }
}
