//! Symbolic time-frame unrolling of netlists into CNF.
//!
//! Bounded model checking asks "is there an input sequence of length *k*
//! driving the circuit into a bad state?". To answer it with a SAT solver,
//! the sequential netlist is *unrolled*: each signal gets one CNF literal per
//! time frame, combinational gates are encoded with their Tseitin clauses in
//! every frame, and each register's frame-*t* literal is the frame-*t−1*
//! literal of its next-state signal. Frame 0 registers either take their
//! reset values ([`InitialState::Reset`], the BMC base case) or are left
//! unconstrained ([`InitialState::Free`], the k-induction step case).
//!
//! The [`Unroller`] is deliberately *incremental*: frames are appended one at
//! a time and the clause database only ever grows, so a BMC driver can push
//! the newly added clauses into an incremental SAT solver and keep all
//! learned clauses from shallower depths.
//!
//! # Example
//!
//! ```
//! use ipcl_rtl::{Netlist, unroll::{InitialState, Unroller}};
//!
//! let mut n = Netlist::new("toggler");
//! let t = n.register("t", false);
//! let nt = n.not_gate("nt", t);
//! n.connect_register(t, nt)?;
//!
//! let mut unroller = Unroller::new(&n, InitialState::Reset)?;
//! unroller.add_frame();
//! unroller.add_frame();
//! // Frame 0 is the reset frame; the register literal of frame 1 is the
//! // frame-0 literal of its next-state cone.
//! assert_eq!(unroller.num_frames(), 2);
//! assert_eq!(unroller.lit(1, t), unroller.lit(0, nt));
//! # Ok::<(), ipcl_rtl::RtlError>(())
//! ```

use std::collections::HashMap;

use ipcl_expr::{Cnf, Lit};

use crate::netlist::{Gate, Netlist, RtlError, SignalId, SignalKind};

/// Key of the structural-hashing gate cache: a normalized gate shape over
/// already-encoded literals. Two gates with the same key denote the same
/// function, so they share one definition literal and one set of clauses.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GateKey {
    /// Conjunction over sorted, deduplicated operands.
    And(Vec<Lit>),
    /// Exclusive or over an ordered pair.
    Xor(Lit, Lit),
    /// Multiplexer `if sel { high } else { low }`.
    Mux(Lit, Lit, Lit),
}

/// Encode-path counters of an [`Unroller`]: how much work the unrolling
/// did and how much the structural-hashing cache saved (surfaced as
/// `unroll.*` metrics by the observability layer).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct UnrollStats {
    /// Time frames appended.
    pub frames: u64,
    /// Distinct gates defined (cache misses across and/xor/mux).
    pub gates: u64,
    /// Gate definitions answered from the structural-hashing cache.
    pub cache_hits: u64,
}

/// How frame-0 registers are constrained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitialState {
    /// Registers take their declared reset values (paths start at reset —
    /// the bounded-model-checking base case).
    Reset,
    /// Registers are unconstrained (paths start anywhere — the inductive
    /// step case).
    Free,
}

/// Incremental time-frame unroller producing CNF over a growing number of
/// frames. See the module docs for the encoding.
#[derive(Clone, Debug)]
pub struct Unroller {
    netlist: Netlist,
    /// Signal kinds snapshot, indexed by signal id — cloned once at
    /// construction so `add_frame` can walk the circuit while emitting
    /// clauses without re-cloning the netlist per frame.
    kinds: Vec<SignalKind>,
    /// Topological order of combinational wires from elaboration.
    order: Vec<SignalId>,
    initial: InitialState,
    cnf: Cnf,
    /// `frames[t][signal.index()]` is the literal of the signal in frame `t`.
    frames: Vec<Vec<Lit>>,
    const_true: Lit,
    /// Structural-hashing cache: normalized gate shape → definition
    /// literal. Hit whenever the same function over the same frame
    /// literals is requested again — duplicate gates inside one frame,
    /// and the repeated property-instance/cube encodings BMC and PDR
    /// issue over a fixed unrolling — so the duplicate definitional
    /// clauses are never emitted.
    gate_cache: HashMap<GateKey, Lit>,
    stats: UnrollStats,
}

impl Unroller {
    /// Builds an unroller for `netlist` with no frames yet.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`]s from elaboration (unconnected registers,
    /// combinational cycles).
    pub fn new(netlist: &Netlist, initial: InitialState) -> Result<Self, RtlError> {
        let order = netlist.elaborate()?;
        let mut cnf = Cnf::new(0);
        let true_var = cnf.fresh_var();
        cnf.add_clause([Lit::positive(true_var)]);
        Ok(Unroller {
            kinds: netlist.iter().map(|(_, s)| s.kind.clone()).collect(),
            netlist: netlist.clone(),
            order,
            initial,
            cnf,
            frames: Vec::new(),
            const_true: Lit::positive(true_var),
            gate_cache: HashMap::new(),
            stats: UnrollStats::default(),
        })
    }

    /// The unrolled netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// How frame-0 registers are constrained.
    pub fn initial_state(&self) -> InitialState {
        self.initial
    }

    /// Number of frames added so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Encode-path counters accumulated so far.
    pub fn stats(&self) -> UnrollStats {
        self.stats
    }

    /// The accumulated CNF. Clauses are append-only, so an incremental
    /// driver can remember how many clauses it has already transferred to a
    /// solver and push only the suffix after each [`Unroller::add_frame`].
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// A literal that is constrained true in every model.
    pub fn const_true(&self) -> Lit {
        self.const_true
    }

    /// The literal of `signal` in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame has not been added or the signal is foreign.
    pub fn lit(&self, frame: usize, signal: SignalId) -> Lit {
        self.frames[frame][signal.index()]
    }

    /// The literal of a named signal in `frame`, if the signal exists.
    pub fn lit_by_name(&self, frame: usize, name: &str) -> Option<Lit> {
        self.netlist.find(name).map(|s| self.lit(frame, s))
    }

    /// Allocates a fresh unconstrained literal (for property encodings that
    /// need auxiliary variables, e.g. specification inputs the netlist does
    /// not implement).
    pub fn fresh_lit(&mut self) -> Lit {
        Lit::positive(self.cnf.fresh_var())
    }

    /// Adds a clause to the unrolling (environment constraints, property
    /// activation literals, …).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I) {
        self.cnf.add_clause(literals);
    }

    /// The register-output literals of `frame`, in [`Netlist::registers`]
    /// order — the circuit's state vector, used for simple-path constraints.
    pub fn register_lits(&self, frame: usize) -> Vec<Lit> {
        self.netlist
            .registers()
            .into_iter()
            .map(|r| self.lit(frame, r))
            .collect()
    }

    /// Appends one time frame and returns its index.
    ///
    /// Inputs get fresh literals; registers take their reset-value constant
    /// (frame 0, [`InitialState::Reset`]), a fresh literal (frame 0,
    /// [`InitialState::Free`]) or the previous frame's next-state literal;
    /// gates are Tseitin-encoded on top.
    pub fn add_frame(&mut self) -> usize {
        let frame = self.frames.len();
        let mut lits = vec![self.const_true; self.netlist.len()];
        // Sources first: inputs and register outputs. The kinds snapshot is
        // swapped out for the duration so clause emission can borrow `self`
        // mutably without cloning the circuit per frame.
        let kinds = std::mem::take(&mut self.kinds);
        for (index, kind) in kinds.iter().enumerate() {
            match kind {
                SignalKind::Input => lits[index] = self.fresh_lit(),
                SignalKind::Register { init, next } => {
                    lits[index] = if frame == 0 {
                        match self.initial {
                            InitialState::Reset => {
                                if *init {
                                    self.const_true
                                } else {
                                    self.const_true.negated()
                                }
                            }
                            InitialState::Free => self.fresh_lit(),
                        }
                    } else {
                        let next = next.expect("elaboration checked connections");
                        self.frames[frame - 1][next.index()]
                    };
                }
                SignalKind::Wire(_) => {}
            }
        }
        // Then wires in topological order.
        for index in 0..self.order.len() {
            let id = self.order[index];
            let SignalKind::Wire(gate) = &kinds[id.index()] else {
                unreachable!("evaluation order contains only wires");
            };
            lits[id.index()] = self.encode_gate(gate, &lits);
        }
        self.kinds = kinds;
        self.frames.push(lits);
        self.stats.frames += 1;
        frame
    }

    fn encode_gate(&mut self, gate: &Gate, lits: &[Lit]) -> Lit {
        match gate {
            Gate::Const(true) => self.const_true,
            Gate::Const(false) => self.const_true.negated(),
            Gate::Buf(a) => lits[a.index()],
            Gate::Not(a) => lits[a.index()].negated(),
            Gate::And(ops) => {
                let operands: Vec<Lit> = ops.iter().map(|s| lits[s.index()]).collect();
                self.define_and(&operands)
            }
            Gate::Or(ops) => {
                let negated: Vec<Lit> = ops.iter().map(|s| lits[s.index()].negated()).collect();
                self.define_and(&negated).negated()
            }
            Gate::Xor(a, b) => self.define_xor(lits[a.index()], lits[b.index()]),
            Gate::Mux { sel, high, low } => {
                self.define_mux(lits[sel.index()], lits[high.index()], lits[low.index()])
            }
        }
    }

    /// Defines `g ↔ AND(operands)` over a fresh literal `g` (public so
    /// property encoders can build formulas over frame literals).
    ///
    /// Constant operands are folded, duplicates removed and complementary
    /// pairs collapse to `false`; structurally identical conjunctions
    /// share one definition through the gate cache.
    pub fn define_and(&mut self, operands: &[Lit]) -> Lit {
        let mut ops: Vec<Lit> = Vec::with_capacity(operands.len());
        for &lit in operands {
            if lit == self.const_true {
                continue;
            }
            if lit == self.const_true.negated() {
                return self.const_true.negated();
            }
            ops.push(lit);
        }
        ops.sort_unstable();
        ops.dedup();
        if ops
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
        {
            // x ∧ … ∧ ¬x is false.
            return self.const_true.negated();
        }
        match ops.len() {
            0 => self.const_true,
            1 => ops[0],
            _ => {
                if let Some(&g) = self.gate_cache.get(&GateKey::And(ops.clone())) {
                    self.stats.cache_hits += 1;
                    return g;
                }
                self.stats.gates += 1;
                let g = self.fresh_lit();
                for &lit in &ops {
                    self.cnf.add_clause([g.negated(), lit]);
                }
                let mut clause: Vec<Lit> = ops.iter().map(|l| l.negated()).collect();
                clause.push(g);
                self.cnf.add_clause(clause);
                self.gate_cache.insert(GateKey::And(ops), g);
                g
            }
        }
    }

    /// Defines `g ↔ (a ⊕ b)` over a fresh literal `g`, with constant
    /// folding and structural hashing (the operand pair is normalized by
    /// literal code, and `a ⊕ b = ¬a ⊕ ¬b = ¬(¬a ⊕ b)` reuse one gate).
    pub fn define_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.const_true {
            return b.negated();
        }
        if a == self.const_true.negated() {
            return b;
        }
        if b == self.const_true {
            return a.negated();
        }
        if b == self.const_true.negated() {
            return a;
        }
        if a == b {
            return self.const_true.negated();
        }
        if a == b.negated() {
            return self.const_true;
        }
        // Normalize to positive literals of the two variables; each
        // negation flips the result's sign.
        let flip = !a.is_positive() ^ !b.is_positive();
        let (mut x, mut y) = (Lit::positive(a.var()), Lit::positive(b.var()));
        if y.code() < x.code() {
            std::mem::swap(&mut x, &mut y);
        }
        let g = match self.gate_cache.get(&GateKey::Xor(x, y)) {
            Some(&g) => {
                self.stats.cache_hits += 1;
                g
            }
            None => {
                self.stats.gates += 1;
                let g = self.fresh_lit();
                self.cnf.add_clause([g.negated(), x, y]);
                self.cnf.add_clause([g.negated(), x.negated(), y.negated()]);
                self.cnf.add_clause([g, x.negated(), y]);
                self.cnf.add_clause([g, x, y.negated()]);
                self.gate_cache.insert(GateKey::Xor(x, y), g);
                g
            }
        };
        if flip {
            g.negated()
        } else {
            g
        }
    }

    /// Defines `g ↔ if sel { high } else { low }` over a fresh literal `g`,
    /// with constant folding and structural hashing.
    pub fn define_mux(&mut self, sel: Lit, high: Lit, low: Lit) -> Lit {
        if sel == self.const_true {
            return high;
        }
        if sel == self.const_true.negated() {
            return low;
        }
        if high == low {
            return high;
        }
        if let Some(&g) = self.gate_cache.get(&GateKey::Mux(sel, high, low)) {
            self.stats.cache_hits += 1;
            return g;
        }
        self.stats.gates += 1;
        let g = self.fresh_lit();
        self.cnf.add_clause([sel.negated(), high.negated(), g]);
        self.cnf.add_clause([sel.negated(), high, g.negated()]);
        self.cnf.add_clause([sel, low.negated(), g]);
        self.cnf.add_clause([sel, low, g.negated()]);
        // Redundant but propagation-strengthening: if both branches agree the
        // output is known without the select.
        self.cnf.add_clause([high.negated(), low.negated(), g]);
        self.cnf.add_clause([high, low, g.negated()]);
        self.gate_cache.insert(GateKey::Mux(sel, high, low), g);
        g
    }

    /// Defines a fresh literal true iff the register states of two frames
    /// differ — the building block of loop-free (simple) path constraints
    /// for k-induction. Returns `None` for stateless netlists.
    pub fn state_difference(&mut self, frame_a: usize, frame_b: usize) -> Option<Lit> {
        let a = self.register_lits(frame_a);
        let b = self.register_lits(frame_b);
        if a.is_empty() {
            return None;
        }
        let diffs: Vec<Lit> = a
            .into_iter()
            .zip(b)
            .map(|(la, lb)| self.define_xor(la, lb))
            .collect();
        // diff ↔ OR(diffs)
        let negated: Vec<Lit> = diffs.iter().map(|l| l.negated()).collect();
        Some(self.define_and(&negated).negated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use ipcl_sat::{SatResult, Solver};

    /// Two-bit counter with an enable input.
    fn counter() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut n = Netlist::new("counter2");
        let enable = n.input("enable");
        let bit0 = n.register("bit0", false);
        let bit1 = n.register("bit1", false);
        let flip0 = n.xor_gate("flip0", bit0, enable);
        let carry = n.and_gate("carry", [bit0, enable]);
        let flip1 = n.xor_gate("flip1", bit1, carry);
        n.connect_register(bit0, flip0).unwrap();
        n.connect_register(bit1, flip1).unwrap();
        (n, enable, bit0, bit1)
    }

    fn model_of(unroller: &Unroller) -> Vec<bool> {
        let mut solver = Solver::from_cnf(unroller.cnf());
        match solver.solve() {
            SatResult::Sat(model) => model,
            SatResult::Unsat => panic!("unrolling must be satisfiable"),
        }
    }

    fn lit_value(model: &[bool], lit: Lit) -> bool {
        model[lit.var() as usize] == lit.is_positive()
    }

    #[test]
    fn reset_unrolling_matches_simulation() {
        let (n, enable, bit0, bit1) = counter();
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        for _ in 0..5 {
            let frame = unroller.add_frame();
            // Force enable high in every frame.
            let enable_lit = unroller.lit(frame, enable);
            unroller.add_clause([enable_lit]);
        }
        let model = model_of(&unroller);

        let mut sim = Simulator::new(&n).unwrap();
        sim.set_input(enable, true);
        for frame in 0..5 {
            assert_eq!(
                lit_value(&model, unroller.lit(frame, bit0)),
                sim.value(bit0),
                "bit0 frame {frame}"
            );
            assert_eq!(
                lit_value(&model, unroller.lit(frame, bit1)),
                sim.value(bit1),
                "bit1 frame {frame}"
            );
            sim.step();
        }
    }

    #[test]
    fn reset_state_is_forced() {
        let (n, _, bit0, _) = counter();
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        // bit0 resets to false: asserting it true at frame 0 is unsat.
        let bit0_lit = unroller.lit(0, bit0);
        let mut solver = Solver::from_cnf(unroller.cnf());
        assert_eq!(
            solver.solve_under_assumptions(&[bit0_lit]),
            SatResult::Unsat
        );
        assert!(solver
            .solve_under_assumptions(&[bit0_lit.negated()])
            .is_sat());
    }

    #[test]
    fn free_initial_state_is_unconstrained() {
        let (n, _, bit0, bit1) = counter();
        let mut unroller = Unroller::new(&n, InitialState::Free).unwrap();
        unroller.add_frame();
        let mut solver = Solver::from_cnf(unroller.cnf());
        // Any initial state is reachable in the free encoding.
        for (v0, v1) in [(false, false), (true, false), (false, true), (true, true)] {
            let assumptions = [
                if v0 {
                    unroller.lit(0, bit0)
                } else {
                    unroller.lit(0, bit0).negated()
                },
                if v1 {
                    unroller.lit(0, bit1)
                } else {
                    unroller.lit(0, bit1).negated()
                },
            ];
            assert!(solver.solve_under_assumptions(&assumptions).is_sat());
        }
    }

    #[test]
    fn registers_tie_to_previous_frame() {
        let mut n = Netlist::new("chain");
        let input = n.input("in");
        let r = n.register("r", false);
        n.connect_register(r, input).unwrap();
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        unroller.add_frame();
        assert_eq!(unroller.lit(1, r), unroller.lit(0, input));
    }

    #[test]
    fn state_difference_distinguishes_states() {
        let (n, enable, _, _) = counter();
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        unroller.add_frame();
        let enable_lit = unroller.lit(0, enable);
        let diff = unroller.state_difference(0, 1).unwrap();
        let mut solver = Solver::from_cnf(unroller.cnf());
        // With enable high the counter advances: states differ.
        assert_eq!(
            solver.solve_under_assumptions(&[enable_lit, diff.negated()]),
            SatResult::Unsat
        );
        // With enable low the state repeats: difference is unsatisfiable.
        assert_eq!(
            solver.solve_under_assumptions(&[enable_lit.negated(), diff]),
            SatResult::Unsat
        );
    }

    #[test]
    fn gate_definitions_are_hash_consed() {
        let (n, enable, bit0, _) = counter();
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        let a = unroller.lit(0, enable);
        let b = unroller.lit(0, bit0);
        let g1 = unroller.define_and(&[a, b]);
        let clauses = unroller.cnf().len();
        // Same conjunction (any operand order): same literal, no new clauses.
        assert_eq!(unroller.define_and(&[b, a]), g1);
        assert_eq!(unroller.cnf().len(), clauses);
        // XOR is sign-normalized: ¬a ⊕ b reuses the a ⊕ b gate, negated.
        let x = unroller.define_xor(a, b);
        assert_eq!(unroller.define_xor(a.negated(), b), x.negated());
        assert_eq!(unroller.define_xor(b, a), x);
        // Constants fold instead of spending gates.
        let t = unroller.const_true();
        assert_eq!(unroller.define_and(&[a, t]), a);
        assert_eq!(unroller.define_and(&[a, a.negated()]), t.negated());
        assert_eq!(unroller.define_xor(a, t), a.negated());
        assert_eq!(unroller.define_mux(t, a, b), a);
        assert_eq!(unroller.define_mux(a, b, b), b);
    }

    #[test]
    fn stateless_netlists_have_no_state_difference() {
        let mut n = Netlist::new("comb");
        let a = n.input("a");
        let b = n.not_gate("b", a);
        n.mark_output(b);
        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        unroller.add_frame();
        assert!(unroller.state_difference(0, 1).is_none());
    }

    #[test]
    fn all_gate_kinds_encode_consistently() {
        // A netlist exercising every gate, checked against simulation for
        // all four input combinations in one frame.
        let mut n = Netlist::new("gates");
        let a = n.input("a");
        let b = n.input("b");
        let t = n.constant("t", true);
        let f = n.constant("f", false);
        let and = n.and_gate("and", [a, b, t]);
        let or = n.or_gate("or", [a, b, f]);
        let xor = n.xor_gate("xor", a, b);
        let mux = n.mux_gate("mux", a, b, xor);
        let buf = n.buf_gate("buf", mux);
        let outputs = [and, or, xor, mux, buf];

        let mut unroller = Unroller::new(&n, InitialState::Reset).unwrap();
        unroller.add_frame();
        let mut solver = Solver::from_cnf(unroller.cnf());
        let mut sim = Simulator::new(&n).unwrap();
        for mask in 0..4u8 {
            let va = mask & 1 != 0;
            let vb = mask & 2 != 0;
            sim.set_input(a, va);
            sim.set_input(b, vb);
            let assumptions = [
                if va {
                    unroller.lit(0, a)
                } else {
                    unroller.lit(0, a).negated()
                },
                if vb {
                    unroller.lit(0, b)
                } else {
                    unroller.lit(0, b).negated()
                },
            ];
            match solver.solve_under_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for &out in &outputs {
                        let lit = unroller.lit(0, out);
                        let value = model[lit.var() as usize] == lit.is_positive();
                        assert_eq!(value, sim.value(out), "{} mask {mask}", n.signal(out).name);
                    }
                }
                SatResult::Unsat => panic!("frame must be satisfiable"),
            }
        }
    }
}
