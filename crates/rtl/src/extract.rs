//! Extraction of boolean expressions from netlists.
//!
//! The property checker compares an interlock *implementation* (a netlist)
//! against its *specification* (an expression). To do so it needs the boolean
//! function each output computes in terms of the primary inputs and register
//! outputs; [`Netlist::signal_expr`] recovers exactly that by walking the
//! combinational fan-in cone.

use std::collections::HashMap;

use ipcl_expr::{Expr, VarPool};

use crate::netlist::{Gate, Netlist, SignalId, SignalKind};

impl Netlist {
    /// The boolean function of `signal` in terms of primary inputs and
    /// register outputs, as an `ipcl-expr` expression.
    ///
    /// Inputs and register outputs are interned in `pool` under their signal
    /// names, so the same pool can be shared with the specification the
    /// implementation is checked against.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (call
    /// [`Netlist::elaborate`] first to validate).
    pub fn signal_expr(&self, signal: SignalId, pool: &mut VarPool) -> Expr {
        let mut cache: HashMap<SignalId, Expr> = HashMap::new();
        self.expr_rec(signal, pool, &mut cache, 0)
    }

    /// The boolean functions of every declared output, keyed by signal name.
    pub fn output_exprs(&self, pool: &mut VarPool) -> Vec<(String, Expr)> {
        self.outputs()
            .iter()
            .map(|&s| (self.signal(s).name.clone(), self.signal_expr(s, pool)))
            .collect()
    }

    /// The next-state function of a register in terms of inputs and register
    /// outputs, or `None` if `register` is not a register or is unconnected.
    pub fn register_next_expr(&self, register: SignalId, pool: &mut VarPool) -> Option<Expr> {
        match self.signal(register).kind {
            SignalKind::Register {
                next: Some(next), ..
            } => Some(self.signal_expr(next, pool)),
            _ => None,
        }
    }

    fn expr_rec(
        &self,
        signal: SignalId,
        pool: &mut VarPool,
        cache: &mut HashMap<SignalId, Expr>,
        depth: usize,
    ) -> Expr {
        assert!(
            depth <= self.len(),
            "combinational cycle reached while extracting expression"
        );
        if let Some(cached) = cache.get(&signal) {
            return cached.clone();
        }
        let result = match &self.signal(signal).kind {
            // Inputs and register outputs are the free variables of the
            // extracted function.
            SignalKind::Input | SignalKind::Register { .. } => {
                Expr::var(pool.var(&self.signal(signal).name))
            }
            SignalKind::Wire(gate) => match gate {
                Gate::Const(b) => Expr::Const(*b),
                Gate::Buf(a) => self.expr_rec(*a, pool, cache, depth + 1),
                Gate::Not(a) => Expr::not(self.expr_rec(*a, pool, cache, depth + 1)),
                Gate::And(ops) => Expr::and(
                    ops.iter()
                        .map(|&s| self.expr_rec(s, pool, cache, depth + 1))
                        .collect::<Vec<_>>(),
                ),
                Gate::Or(ops) => Expr::or(
                    ops.iter()
                        .map(|&s| self.expr_rec(s, pool, cache, depth + 1))
                        .collect::<Vec<_>>(),
                ),
                Gate::Xor(a, b) => Expr::xor(
                    self.expr_rec(*a, pool, cache, depth + 1),
                    self.expr_rec(*b, pool, cache, depth + 1),
                ),
                Gate::Mux { sel, high, low } => Expr::ite(
                    self.expr_rec(*sel, pool, cache, depth + 1),
                    self.expr_rec(*high, pool, cache, depth + 1),
                    self.expr_rec(*low, pool, cache, depth + 1),
                ),
            },
        };
        cache.insert(signal, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, semantically_equal};

    #[test]
    fn extracts_combinational_function() {
        let mut n = Netlist::new("m");
        let req = n.input("req");
        let gnt = n.input("gnt");
        let ngnt = n.not_gate("ngnt", gnt);
        let stall = n.and_gate("stall", [req, ngnt]);
        n.mark_output(stall);

        let mut pool = VarPool::new();
        let extracted = n.signal_expr(stall, &mut pool);
        let expected = parse_expr("req & !gnt", &mut pool).unwrap();
        assert!(semantically_equal(&extracted, &expected));
    }

    #[test]
    fn register_outputs_are_free_variables() {
        let mut n = Netlist::new("m");
        let moe_next = n.input("moe_next_in");
        let moe = n.register("moe", true);
        n.connect_register(moe, moe_next).unwrap();
        let use_of_reg = n.not_gate("stalled", moe);
        n.mark_output(use_of_reg);

        let mut pool = VarPool::new();
        let extracted = n.signal_expr(use_of_reg, &mut pool);
        let expected = parse_expr("!moe", &mut pool).unwrap();
        assert!(semantically_equal(&extracted, &expected));

        let next = n.register_next_expr(moe, &mut pool).unwrap();
        let expected_next = parse_expr("moe_next_in", &mut pool).unwrap();
        assert!(semantically_equal(&next, &expected_next));
        assert!(n.register_next_expr(moe_next, &mut pool).is_none());
    }

    #[test]
    fn output_exprs_cover_all_outputs() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and_gate("and_ab", [a, b]);
        let or = n.or_gate("or_ab", [a, b]);
        n.mark_output(and);
        n.mark_output(or);
        let mut pool = VarPool::new();
        let outputs = n.output_exprs(&mut pool);
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].0, "and_ab");
        assert_eq!(outputs[1].0, "or_ab");
    }

    #[test]
    fn extraction_handles_all_gate_kinds() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let t = n.constant("t", true);
        let buf = n.buf_gate("buf0", a);
        let xor = n.xor_gate("x", a, b);
        let mux = n.mux_gate("m0", a, b, c);
        let both = n.and_gate("both", [t, buf, xor, mux]);
        n.mark_output(both);
        let mut pool = VarPool::new();
        let extracted = n.signal_expr(both, &mut pool);
        let expected = parse_expr("a & (a ^ b) & (if a then b else c)", &mut pool).unwrap();
        assert!(semantically_equal(&extracted, &expected));
    }

    #[test]
    fn shared_fanin_uses_cache() {
        // Build a deep chain with shared sub-cones; extraction must stay
        // polynomial (the cache collapses shared nodes).
        let mut n = Netlist::new("m");
        let mut current = n.input("x0");
        for i in 1..60 {
            let other = n.not_gate(&format!("n{i}"), current);
            current = n.and_gate(&format!("a{i}"), [current, other]);
        }
        n.mark_output(current);
        let mut pool = VarPool::new();
        let e = n.signal_expr(current, &mut pool);
        // The extracted cone contains x0 and !x0 at the top level, so the
        // simplifier reduces the whole function to false; the point of the
        // test is that extraction terminates quickly on deep shared fan-in.
        assert!(ipcl_expr::simplify::simplify(&e).is_false());
    }
}
