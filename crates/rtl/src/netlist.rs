//! Netlist construction: signals, gates and registers.

use std::collections::HashMap;
use std::fmt;

/// Handle to a signal in a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Index of the signal in its netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A combinational gate driving a wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Gate {
    /// Constant driver.
    Const(bool),
    /// Buffer (identity).
    Buf(SignalId),
    /// Inverter.
    Not(SignalId),
    /// N-ary AND.
    And(Vec<SignalId>),
    /// N-ary OR.
    Or(Vec<SignalId>),
    /// Two-input XOR.
    Xor(SignalId, SignalId),
    /// Multiplexer: `if sel { high } else { low }`.
    Mux {
        /// Select input.
        sel: SignalId,
        /// Value when `sel` is high.
        high: SignalId,
        /// Value when `sel` is low.
        low: SignalId,
    },
}

impl Gate {
    /// The input signals of the gate.
    pub fn inputs(&self) -> Vec<SignalId> {
        match self {
            Gate::Const(_) => Vec::new(),
            Gate::Buf(a) | Gate::Not(a) => vec![*a],
            Gate::And(ops) | Gate::Or(ops) => ops.clone(),
            Gate::Xor(a, b) => vec![*a, *b],
            Gate::Mux { sel, high, low } => vec![*sel, *high, *low],
        }
    }
}

/// What drives a signal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SignalKind {
    /// Primary input, driven by the testbench/simulator user.
    Input,
    /// Combinational wire driven by a gate.
    Wire(Gate),
    /// Register output with a reset value; `next` is the signal sampled at
    /// every clock edge (unconnected until [`Netlist::connect_register`]).
    Register {
        /// Value after reset.
        init: bool,
        /// Signal sampled into the register each cycle.
        next: Option<SignalId>,
    },
}

/// A named signal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signal {
    /// Signal name as it appears in emitted Verilog and traces.
    pub name: String,
    /// What drives it.
    pub kind: SignalKind,
}

/// Errors reported while building or elaborating a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtlError {
    /// A signal name was used twice.
    DuplicateName(String),
    /// [`Netlist::connect_register`] was called on a non-register signal.
    NotARegister(String),
    /// A register's next-state input was never connected.
    UnconnectedRegister(String),
    /// The combinational logic contains a cycle through the named signal.
    CombinationalCycle(String),
    /// A signal id referenced a different netlist.
    UnknownSignal(SignalId),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::DuplicateName(name) => write!(f, "duplicate signal name '{name}'"),
            RtlError::NotARegister(name) => write!(f, "signal '{name}' is not a register"),
            RtlError::UnconnectedRegister(name) => {
                write!(f, "register '{name}' has no next-state connection")
            }
            RtlError::CombinationalCycle(name) => {
                write!(f, "combinational cycle through signal '{name}'")
            }
            RtlError::UnknownSignal(id) => write!(f, "unknown signal {id}"),
        }
    }
}

impl std::error::Error for RtlError {}

/// A synchronous netlist: inputs, combinational gates and registers sharing a
/// single implicit clock and synchronous reset.
///
/// See the crate-level example for typical usage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    signals: Vec<Signal>,
    names: HashMap<String, SignalId>,
    outputs: Vec<SignalId>,
}

impl Netlist {
    /// Creates an empty netlist named `name` (the emitted Verilog module
    /// name).
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_signal(&mut self, name: &str, kind: SignalKind) -> SignalId {
        // Disambiguate duplicate names rather than erroring: generated logic
        // frequently re-uses rule names, and the suffix keeps Verilog legal.
        let unique_name = if self.names.contains_key(name) {
            let mut i = 1;
            loop {
                let candidate = format!("{name}_{i}");
                if !self.names.contains_key(&candidate) {
                    break candidate;
                }
                i += 1;
            }
        } else {
            name.to_owned()
        };
        let id = SignalId(self.signals.len() as u32);
        self.names.insert(unique_name.clone(), id);
        self.signals.push(Signal {
            name: unique_name,
            kind,
        });
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str) -> SignalId {
        self.add_signal(name, SignalKind::Input)
    }

    /// Declares a register with the given reset value. Connect its next-state
    /// input later with [`Netlist::connect_register`].
    pub fn register(&mut self, name: &str, init: bool) -> SignalId {
        self.add_signal(name, SignalKind::Register { init, next: None })
    }

    /// Connects the next-state input of `register` to `next`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::NotARegister`] if `register` is not a register and
    /// [`RtlError::UnknownSignal`] if either id is out of range.
    pub fn connect_register(&mut self, register: SignalId, next: SignalId) -> Result<(), RtlError> {
        if next.index() >= self.signals.len() {
            return Err(RtlError::UnknownSignal(next));
        }
        let signal = self
            .signals
            .get_mut(register.index())
            .ok_or(RtlError::UnknownSignal(register))?;
        match &mut signal.kind {
            SignalKind::Register { next: slot, .. } => {
                *slot = Some(next);
                Ok(())
            }
            _ => Err(RtlError::NotARegister(signal.name.clone())),
        }
    }

    /// Adds a wire driven by an arbitrary gate.
    pub fn wire(&mut self, name: &str, gate: Gate) -> SignalId {
        self.add_signal(name, SignalKind::Wire(gate))
    }

    /// Constant driver.
    pub fn constant(&mut self, name: &str, value: bool) -> SignalId {
        self.wire(name, Gate::Const(value))
    }

    /// Buffer (identity) gate.
    pub fn buf_gate(&mut self, name: &str, a: SignalId) -> SignalId {
        self.wire(name, Gate::Buf(a))
    }

    /// Inverter.
    pub fn not_gate(&mut self, name: &str, a: SignalId) -> SignalId {
        self.wire(name, Gate::Not(a))
    }

    /// N-ary AND gate.
    pub fn and_gate<I: IntoIterator<Item = SignalId>>(
        &mut self,
        name: &str,
        inputs: I,
    ) -> SignalId {
        self.wire(name, Gate::And(inputs.into_iter().collect()))
    }

    /// N-ary OR gate.
    pub fn or_gate<I: IntoIterator<Item = SignalId>>(&mut self, name: &str, inputs: I) -> SignalId {
        self.wire(name, Gate::Or(inputs.into_iter().collect()))
    }

    /// Two-input XOR gate.
    pub fn xor_gate(&mut self, name: &str, a: SignalId, b: SignalId) -> SignalId {
        self.wire(name, Gate::Xor(a, b))
    }

    /// Multiplexer gate.
    pub fn mux_gate(
        &mut self,
        name: &str,
        sel: SignalId,
        high: SignalId,
        low: SignalId,
    ) -> SignalId {
        self.wire(name, Gate::Mux { sel, high, low })
    }

    /// Marks a signal as a module output (it is kept in emitted Verilog and
    /// recorded by default in traces).
    pub fn mark_output(&mut self, signal: SignalId) {
        if !self.outputs.contains(&signal) {
            self.outputs.push(signal);
        }
    }

    /// The declared outputs, in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Whether the netlist has no signals.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }

    /// The signal record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Looks a signal up by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.names.get(name).copied()
    }

    /// Iterates over all `(id, signal)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &Signal)> + '_ {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    /// All register signals.
    pub fn registers(&self) -> Vec<SignalId> {
        self.iter()
            .filter(|(_, s)| matches!(s.kind, SignalKind::Register { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// All primary inputs.
    pub fn inputs(&self) -> Vec<SignalId> {
        self.iter()
            .filter(|(_, s)| matches!(s.kind, SignalKind::Input))
            .map(|(id, _)| id)
            .collect()
    }

    /// Validates the netlist and returns a topological evaluation order of
    /// the combinational wires.
    ///
    /// # Errors
    ///
    /// * [`RtlError::UnconnectedRegister`] if a register has no next input.
    /// * [`RtlError::CombinationalCycle`] if the gates form a cycle.
    pub fn elaborate(&self) -> Result<Vec<SignalId>, RtlError> {
        for (_, signal) in self.iter() {
            if let SignalKind::Register { next: None, .. } = signal.kind {
                return Err(RtlError::UnconnectedRegister(signal.name.clone()));
            }
        }
        // Kahn's algorithm over combinational wires only; inputs and register
        // outputs are sources.
        let mut in_degree: Vec<usize> = vec![0; self.signals.len()];
        let mut dependents: Vec<Vec<SignalId>> = vec![Vec::new(); self.signals.len()];
        for (id, signal) in self.iter() {
            if let SignalKind::Wire(gate) = &signal.kind {
                for input in gate.inputs() {
                    if matches!(self.signals[input.index()].kind, SignalKind::Wire(_)) {
                        in_degree[id.index()] += 1;
                    }
                    dependents[input.index()].push(id);
                }
            }
        }
        let mut ready: Vec<SignalId> = self
            .iter()
            .filter(|(id, s)| matches!(s.kind, SignalKind::Wire(_)) && in_degree[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::new();
        while let Some(id) = ready.pop() {
            order.push(id);
            for &dependent in &dependents[id.index()] {
                if matches!(self.signals[dependent.index()].kind, SignalKind::Wire(_)) {
                    in_degree[dependent.index()] -= 1;
                    if in_degree[dependent.index()] == 0 {
                        ready.push(dependent);
                    }
                }
            }
        }
        let wire_count = self
            .iter()
            .filter(|(_, s)| matches!(s.kind, SignalKind::Wire(_)))
            .count();
        if order.len() != wire_count {
            // Some wire was never released: it is on a cycle.
            let stuck = self
                .iter()
                .find(|(id, s)| matches!(s.kind, SignalKind::Wire(_)) && !order.contains(id))
                .map(|(_, s)| s.name.clone())
                .unwrap_or_default();
            return Err(RtlError::CombinationalCycle(stuck));
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and_gate("g", [a, b]);
        n.mark_output(g);
        n.mark_output(g);
        assert_eq!(n.name(), "m");
        assert_eq!(n.len(), 3);
        assert_eq!(n.find("g"), Some(g));
        assert_eq!(n.find("missing"), None);
        assert_eq!(n.outputs(), &[g]);
        assert_eq!(n.inputs(), vec![a, b]);
        assert!(n.registers().is_empty());
        assert_eq!(n.signal(g).name, "g");
        assert!(!n.is_empty());
    }

    #[test]
    fn duplicate_names_are_disambiguated() {
        let mut n = Netlist::new("m");
        let first = n.input("x");
        let second = n.input("x");
        assert_ne!(first, second);
        assert_eq!(n.signal(second).name, "x_1");
        let third = n.input("x");
        assert_eq!(n.signal(third).name, "x_2");
    }

    #[test]
    fn connect_register_errors() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let r = n.register("r", false);
        assert_eq!(
            n.connect_register(a, r),
            Err(RtlError::NotARegister("a".into()))
        );
        assert_eq!(
            n.connect_register(SignalId(99), a),
            Err(RtlError::UnknownSignal(SignalId(99)))
        );
        assert_eq!(
            n.connect_register(r, SignalId(99)),
            Err(RtlError::UnknownSignal(SignalId(99)))
        );
        assert_eq!(n.connect_register(r, a), Ok(()));
    }

    #[test]
    fn elaborate_detects_unconnected_register() {
        let mut n = Netlist::new("m");
        let _ = n.register("r", true);
        match n.elaborate() {
            Err(RtlError::UnconnectedRegister(name)) => assert_eq!(name, "r"),
            other => panic!("expected unconnected register, got {other:?}"),
        }
    }

    #[test]
    fn elaborate_detects_combinational_cycle() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        // w1 depends on w2 and vice versa.
        let w1 = n.wire("w1", Gate::And(vec![a]));
        let w2 = n.or_gate("w2", [w1, a]);
        // Rewire w1 to close the loop by rebuilding: emulate by adding a
        // buffer cycle.
        let w3 = n.buf_gate("w3", w2);
        // Manually create the cycle: w4 -> w5 -> w4.
        let w4 = n.wire("w4", Gate::Buf(SignalId(n.len() as u32 + 1)));
        let w5 = n.buf_gate("w5", w4);
        let _ = w3;
        let _ = w5;
        match n.elaborate() {
            Err(RtlError::CombinationalCycle(_)) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn elaborate_orders_wires_topologically() {
        let mut n = Netlist::new("m");
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and_gate("and", [a, b]);
        let not = n.not_gate("not", and);
        let or = n.or_gate("or", [not, a]);
        let order = n.elaborate().unwrap();
        let pos = |id: SignalId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(and) < pos(not));
        assert!(pos(not) < pos(or));
    }

    #[test]
    fn gate_inputs() {
        let a = SignalId(0);
        let b = SignalId(1);
        let c = SignalId(2);
        assert!(Gate::Const(true).inputs().is_empty());
        assert_eq!(Gate::Buf(a).inputs(), vec![a]);
        assert_eq!(Gate::Not(a).inputs(), vec![a]);
        assert_eq!(Gate::And(vec![a, b]).inputs(), vec![a, b]);
        assert_eq!(Gate::Or(vec![a, b]).inputs(), vec![a, b]);
        assert_eq!(Gate::Xor(a, b).inputs(), vec![a, b]);
        assert_eq!(
            Gate::Mux {
                sel: a,
                high: b,
                low: c
            }
            .inputs(),
            vec![a, b, c]
        );
    }

    #[test]
    fn error_display() {
        assert!(RtlError::DuplicateName("x".into())
            .to_string()
            .contains("x"));
        assert!(RtlError::UnconnectedRegister("r".into())
            .to_string()
            .contains("r"));
        assert!(RtlError::CombinationalCycle("w".into())
            .to_string()
            .contains("w"));
        assert!(RtlError::UnknownSignal(SignalId(5))
            .to_string()
            .contains("s5"));
        assert!(RtlError::NotARegister("a".into()).to_string().contains("a"));
    }
}
