//! End-to-end tests of the `ipcl-tracetool` binary: artifact files in,
//! exit codes out.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use ipcl_trace::{report, TraceConfig, Tracer, Value};

fn tracetool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ipcl-tracetool"))
        .args(args)
        .output()
        .expect("the binary runs")
}

/// A scratch directory unique to this test run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipcl-tracetool-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small real traced run: nested spans, an event, metrics.
fn sample_tracer(extra_span_iters: usize) -> Tracer {
    let tracer = Tracer::new(TraceConfig::enabled());
    {
        let _check = tracer.span("check");
        tracer.event("solver_restart", &[("conflicts", Value::U64(3))]);
        for _ in 0..=extra_span_iters {
            let _solve = tracer.span("solve");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    tracer
}

#[test]
fn export_writes_chrome_and_folded_artifacts() {
    let dir = scratch("export");
    let snapshot = sample_tracer(0).snapshot().unwrap();
    let (trace_path, profile_path) =
        report::write_artifacts(&snapshot, &dir).expect("artifacts written");

    let output = tracetool(&[
        "export",
        "--trace",
        trace_path.to_str().unwrap(),
        "--profile",
        profile_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{output:?}");

    let chrome = fs::read_to_string(trace_path.with_extension("chrome.json")).unwrap();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\": \"B\""));
    assert!(chrome.contains("solver_restart"));
    let folded = fs::read_to_string(profile_path.with_extension("folded")).unwrap();
    assert!(
        folded.lines().any(|l| l.starts_with("check;solve ")),
        "{folded}"
    );
}

#[test]
fn diff_gate_exits_nonzero_only_on_regression() {
    let dir = scratch("diff");
    let before = dir.join("before.json");
    let after = dir.join("after.json");
    fs::write(
        &before,
        report::profile_json(&sample_tracer(0).snapshot().unwrap()),
    )
    .unwrap();
    fs::write(
        &after,
        report::profile_json(&sample_tracer(30).snapshot().unwrap()),
    )
    .unwrap();

    // Identical inputs: clean gate, and the rendering reports full
    // attribution of a zero delta.
    let same = tracetool(&[
        "diff",
        "--gate",
        before.to_str().unwrap(),
        before.to_str().unwrap(),
    ]);
    assert!(same.status.success(), "{same:?}");

    // A real regression (the solve span grew ~30x): gate trips.
    let worse = tracetool(&[
        "diff",
        "--gate",
        "--threshold",
        "0.5",
        "--min-us",
        "1000",
        before.to_str().unwrap(),
        after.to_str().unwrap(),
    ]);
    assert_eq!(worse.status.code(), Some(1), "{worse:?}");
    let stdout = String::from_utf8(worse.stdout).unwrap();
    assert!(stdout.contains("check / solve"), "{stdout}");

    // The JSON output parses.
    let json = tracetool(&[
        "diff",
        "--json",
        before.to_str().unwrap(),
        after.to_str().unwrap(),
    ]);
    assert!(json.status.success());
    let text = String::from_utf8(json.stdout).unwrap();
    assert!(text.trim_start().starts_with('{'), "{text}");
}

#[test]
fn regress_gate_fails_on_regressed_history_and_passes_on_baseline() {
    let baseline_dir = scratch("regress-baseline");
    let current_dir = scratch("regress-current");
    let baseline = r#"{
      "schema_version": 1, "experiment": "solver_opts", "smoke": true, "commit": null,
      "entries": [
        {"workload": "pigeonhole-7", "config": "optimized", "ms": 10.0, "conflicts": 500},
        {"workload": "pigeonhole-7", "config": "baseline", "ms": 40.0, "conflicts": 2000}
      ]
    }"#;
    fs::write(baseline_dir.join("BENCH_solver_opts.json"), baseline).unwrap();

    // Identical current run: clean exit.
    fs::write(current_dir.join("BENCH_solver_opts.json"), baseline).unwrap();
    let clean = tracetool(&[
        "regress",
        "--baseline",
        baseline_dir.to_str().unwrap(),
        "--current",
        current_dir.to_str().unwrap(),
    ]);
    assert!(clean.status.success(), "{clean:?}");
    let stdout = String::from_utf8(clean.stdout).unwrap();
    assert!(stdout.contains("PASS"), "{stdout}");

    // Synthetically regressed history: the optimized config slowed 3x.
    let regressed = baseline.replace("\"ms\": 10.0", "\"ms\": 30.0");
    fs::write(current_dir.join("BENCH_solver_opts.json"), regressed).unwrap();
    let failing = tracetool(&[
        "regress",
        "--baseline",
        baseline_dir.to_str().unwrap(),
        "--current",
        current_dir.to_str().unwrap(),
    ]);
    assert_eq!(failing.status.code(), Some(1), "{failing:?}");
    let stdout = String::from_utf8(failing.stdout).unwrap();
    assert!(stdout.contains("REGRESSED ms"), "{stdout}");
    assert!(stdout.contains("config=optimized"), "{stdout}");

    // A generous tolerance file waves the same history through.
    let tolerances = baseline_dir.join("tolerances.json");
    fs::write(&tolerances, r#"{"default_rel": 5.0}"#).unwrap();
    let waved = tracetool(&[
        "regress",
        "--baseline",
        baseline_dir.to_str().unwrap(),
        "--current",
        current_dir.to_str().unwrap(),
        "--tolerances",
        tolerances.to_str().unwrap(),
    ]);
    assert!(waved.status.success(), "{waved:?}");

    // Unknown files / malformed input: usage error, not a gate verdict.
    let missing = tracetool(&[
        "regress",
        "--baseline",
        "/nonexistent",
        "--current",
        "/nonexistent",
    ]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
}
