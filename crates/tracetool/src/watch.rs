//! Live proof progress: render the engines' `heartbeat` events as an
//! in-flight status line.
//!
//! The engines (`ipcl-sat`, `ipcl-bmc`, `ipcl-pdr`, the portfolio racer)
//! emit rate-limited `heartbeat` events through their [`Tracer`] while
//! solving. [`Watcher::spawn`] polls the tracer's event log from a
//! background thread and redraws one status line on stderr — stdout
//! stays clean for the experiment's JSON. With tracing (or event
//! recording) disabled the engines emit nothing, the poll sees nothing,
//! and the watcher prints nothing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ipcl_trace::{Event, Tracer, Value};

fn field_text(event: &Event, name: &str) -> Option<String> {
    event.field(name).map(|value| match value {
        Value::U64(v) => v.to_string(),
        Value::I64(v) => v.to_string(),
        Value::F64(v) => format!("{v:.2}"),
        Value::Bool(v) => v.to_string(),
        Value::Str(v) => v.to_string(),
    })
}

/// Renders the freshest heartbeat per engine as one status line, e.g.
///
/// ```text
/// [12.3s] bmc depth=7/40 | pdr frame=4 queue=3 | sat conflicts=+812 restarts=+3
/// ```
///
/// The parallel PDR engine's heartbeats carry a `worker` field (the master
/// scheduler is worker 0, each solver thread its own id); those render as
/// one entry per worker:
///
/// ```text
/// [4.2s] pdr:w0 frame=6 queue=2 clauses=911 | pdr:w1 queue=3 solved=48 imported=12 exported=9
/// ```
///
/// Returns `None` when `events` holds no heartbeats yet.
pub fn progress_line(events: &[Event]) -> Option<String> {
    // Freshest heartbeat per engine (split per worker for the parallel
    // PDR engine), in first-seen order.
    let mut latest: BTreeMap<String, &Event> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for event in events.iter().filter(|e| e.kind == "heartbeat") {
        let engine = field_text(event, "engine").unwrap_or_else(|| "?".to_owned());
        let key = match field_text(event, "worker") {
            Some(worker) if engine == "pdr" => format!("{engine}:w{worker}"),
            _ => engine,
        };
        if !latest.contains_key(&key) {
            order.push(key.clone());
        }
        latest.insert(key, event);
    }
    let newest = latest.values().map(|e| e.t_us).max()?;
    let mut out = format!("[{:.1}s]", newest as f64 / 1e6);
    for key in &order {
        let event = latest[key];
        let _ = write!(out, " {key}");
        let engine = key.split(':').next().unwrap_or(key);
        match engine {
            "bmc" => {
                if let (Some(depth), Some(max)) =
                    (field_text(event, "depth"), field_text(event, "max_depth"))
                {
                    let _ = write!(out, " depth={depth}/{max}");
                }
            }
            "pdr" => {
                // The master's beat carries frame/queue/clauses; a solver
                // worker's beat carries queue/solved and its clause-exchange
                // counters. Render whichever are present.
                for field in [
                    "frame", "queue", "clauses", "solved", "imported", "exported",
                ] {
                    if let Some(v) = field_text(event, field) {
                        let _ = write!(out, " {field}={v}");
                    }
                }
            }
            "sat" => {
                for field in ["conflicts", "restarts"] {
                    if let Some(v) = field_text(event, field) {
                        let _ = write!(out, " {field}=+{v}");
                    }
                }
            }
            "serve" => {
                // Worker-pool beats: queue shape plus the cache hit-rate.
                if let (Some(queued), Some(running), Some(done)) = (
                    field_text(event, "queued"),
                    field_text(event, "running"),
                    field_text(event, "done"),
                ) {
                    let _ = write!(out, " jobs {queued}q/{running}r/{done}d");
                }
                let hits = field_text(event, "hits").and_then(|v| v.parse::<u64>().ok());
                let misses = field_text(event, "misses").and_then(|v| v.parse::<u64>().ok());
                if let (Some(hits), Some(misses)) = (hits, misses) {
                    if hits + misses > 0 {
                        let rate = 100.0 * hits as f64 / (hits + misses) as f64;
                        let _ = write!(out, " hit-rate={rate:.0}%");
                    }
                }
            }
            _ => {
                if let Some(v) = field_text(event, "property") {
                    let _ = write!(out, " {v}");
                }
            }
        }
        out.push_str(" |");
    }
    out.pop();
    out.pop();
    Some(out)
}

/// A background thread redrawing the progress line while a traced run is
/// in flight. Created by experiment binaries under `--watch`.
pub struct Watcher {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Watcher {
    /// Spawns the poller. `tracer` is the (cheaply cloned) handle the
    /// engines write through; `interval` is the redraw period.
    pub fn spawn(tracer: Tracer, interval: Duration) -> Watcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut seq_floor = 0u64;
            let mut events: Vec<Event> = Vec::new();
            let mut last_line = String::new();
            let mut drew = false;
            while !stop_flag.load(Ordering::Relaxed) {
                thread::sleep(interval);
                let fresh = tracer.events_since(seq_floor);
                if let Some(last) = fresh.last() {
                    seq_floor = last.seq + 1;
                }
                events.extend(fresh);
                if let Some(line) = progress_line(&events) {
                    if line != last_line {
                        // \r + clear-to-end keeps the redraw on one line.
                        eprint!("\r\x1b[K{line}");
                        let _ = std::io::stderr().flush();
                        last_line = line;
                        drew = true;
                    }
                }
            }
            if drew {
                eprintln!();
            }
        });
        Watcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the poller and waits for its final redraw.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_trace::{TraceConfig, Tracer};

    #[test]
    fn progress_line_summarizes_the_freshest_heartbeat_per_engine() {
        let tracer = Tracer::new(TraceConfig::enabled());
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("bmc")),
                ("depth", Value::U64(3)),
                ("max_depth", Value::U64(40)),
            ],
        );
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("bmc")),
                ("depth", Value::U64(7)),
                ("max_depth", Value::U64(40)),
            ],
        );
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("sat")),
                ("conflicts", Value::U64(812)),
                ("restarts", Value::U64(3)),
            ],
        );
        tracer.event("solver_restart", &[("conflicts", Value::U64(9))]);
        let snapshot = tracer.snapshot().unwrap();
        let line = progress_line(&snapshot.events).expect("heartbeats present");
        assert!(
            line.contains("bmc depth=7/40"),
            "freshest beat wins: {line}"
        );
        assert!(!line.contains("depth=3"), "stale beat dropped: {line}");
        assert!(line.contains("sat conflicts=+812 restarts=+3"), "{line}");
    }

    #[test]
    fn progress_line_renders_server_queue_and_hit_rate() {
        let tracer = Tracer::new(TraceConfig::enabled());
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("serve")),
                ("queued", Value::U64(12)),
                ("running", Value::U64(2)),
                ("done", Value::U64(30)),
                ("hits", Value::U64(9)),
                ("misses", Value::U64(3)),
            ],
        );
        let snapshot = tracer.snapshot().unwrap();
        let line = progress_line(&snapshot.events).expect("heartbeats present");
        assert!(line.contains("serve jobs 12q/2r/30d"), "{line}");
        assert!(line.contains("hit-rate=75%"), "{line}");
    }

    #[test]
    fn progress_line_splits_parallel_pdr_heartbeats_per_worker() {
        let tracer = Tracer::new(TraceConfig::enabled());
        // The master scheduler's beat (worker 0) and two solver workers',
        // as tagged by `ipcl_trace::set_worker` in the parallel engine.
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("frame", Value::U64(6)),
                ("queue", Value::U64(2)),
                ("worker", Value::U64(0)),
            ],
        );
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("queue", Value::U64(3)),
                ("solved", Value::U64(40)),
                ("imported", Value::U64(12)),
                ("worker", Value::U64(1)),
            ],
        );
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("queue", Value::U64(1)),
                ("solved", Value::U64(48)),
                ("worker", Value::U64(1)),
            ],
        );
        tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("queue", Value::U64(5)),
                ("solved", Value::U64(39)),
                ("worker", Value::U64(2)),
            ],
        );
        let snapshot = tracer.snapshot().unwrap();
        let line = progress_line(&snapshot.events).expect("heartbeats present");
        assert!(line.contains("pdr:w0 frame=6 queue=2"), "{line}");
        assert!(
            line.contains("pdr:w1 queue=1 solved=48"),
            "freshest beat per worker wins: {line}"
        );
        assert!(!line.contains("solved=40"), "stale worker beat: {line}");
        assert!(line.contains("pdr:w2 queue=5 solved=39"), "{line}");
        // An untagged (sequential-engine) beat keeps its plain key.
        tracer.event(
            "heartbeat",
            &[("engine", Value::from("pdr")), ("frame", Value::U64(9))],
        );
        let snapshot = tracer.snapshot().unwrap();
        let line = progress_line(&snapshot.events).expect("heartbeats present");
        assert!(line.contains(" pdr frame=9"), "{line}");
    }

    #[test]
    fn progress_line_is_none_without_heartbeats() {
        let tracer = Tracer::new(TraceConfig::enabled());
        tracer.event("solver_restart", &[]);
        let snapshot = tracer.snapshot().unwrap();
        assert_eq!(progress_line(&snapshot.events), None);
        assert_eq!(progress_line(&[]), None);
    }

    #[test]
    fn watcher_drains_the_log_and_stops_cleanly() {
        let tracer = Tracer::new(TraceConfig::enabled());
        let watcher = Watcher::spawn(tracer.clone(), Duration::from_millis(1));
        tracer.event(
            "heartbeat",
            &[("engine", Value::from("pdr")), ("frame", Value::U64(2))],
        );
        thread::sleep(Duration::from_millis(10));
        watcher.stop();
    }

    #[test]
    fn watcher_on_a_disabled_tracer_sees_nothing() {
        let tracer = Tracer::disabled();
        let watcher = Watcher::spawn(tracer.clone(), Duration::from_millis(1));
        thread::sleep(Duration::from_millis(5));
        assert!(tracer.events_since(0).is_empty());
        watcher.stop();
    }
}
