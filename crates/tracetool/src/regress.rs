//! The performance-regression gate: compare a current `BENCH_*.json`
//! run against a committed baseline, metric by metric, under per-metric
//! tolerances.
//!
//! Entries are aligned by their identity fields ([`BenchEntry::id`]), so
//! a sweep that adds points is fine — only entries present in **both**
//! files are compared. A metric regresses when its relative change past
//! the baseline is **strictly** greater than the tolerance: a metric
//! sitting exactly on the boundary passes, which keeps the gate's
//! behaviour exact and testable.

use std::fmt::Write as _;

use crate::benchfile::{BenchEntry, BenchFile};
use crate::json::{write_json_string, Json};

/// Tolerance configuration for [`check`].
#[derive(Clone, PartialEq, Debug)]
pub struct Tolerances {
    /// Relative tolerance for metrics without a per-metric entry
    /// (0.25 = +25% allowed).
    pub default_rel: f64,
    /// Per-metric overrides. A name matches a metric either exactly or as
    /// a `_`-separated suffix (`"ms"` covers `solve_ms` and `total_ms`);
    /// exact beats suffix, longer suffix beats shorter.
    pub per_metric: Vec<(String, f64)>,
    /// Identity fields excluded from entry alignment (e.g. the
    /// portfolio's nondeterministic `winner`).
    pub ignore_fields: Vec<String>,
    /// Metrics never checked (noisy or informational).
    pub ignore_metrics: Vec<String>,
    /// Numeric fields that are sweep parameters, not measurements: they
    /// join the entry identity (e.g. `depth`) and are never
    /// tolerance-checked.
    pub id_metrics: Vec<String>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            default_rel: 0.25,
            per_metric: Vec::new(),
            ignore_fields: Vec::new(),
            ignore_metrics: Vec::new(),
            id_metrics: Vec::new(),
        }
    }
}

impl Tolerances {
    /// Parses a tolerance config document:
    ///
    /// ```json
    /// {
    ///   "default_rel": 0.25,
    ///   "per_metric": {"ms": 1.0, "clauses": 0.0},
    ///   "ignore_fields": ["winner"],
    ///   "ignore_metrics": ["speedup"],
    ///   "id_metrics": ["depth"]
    /// }
    /// ```
    pub fn parse(text: &str) -> Result<Tolerances, String> {
        let doc = Json::parse(text)?;
        let mut tolerances = Tolerances::default();
        if let Some(v) = doc.get("default_rel").and_then(Json::as_f64) {
            tolerances.default_rel = v;
        }
        if let Some(members) = doc.get("per_metric").and_then(Json::as_object) {
            for (name, value) in members {
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("per_metric.{name} is not a number"))?;
                tolerances.per_metric.push((name.clone(), v));
            }
        }
        let names = |key: &str| -> Vec<String> {
            doc.get(key)
                .and_then(Json::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect()
                })
                .unwrap_or_default()
        };
        tolerances.ignore_fields = names("ignore_fields");
        tolerances.ignore_metrics = names("ignore_metrics");
        tolerances.id_metrics = names("id_metrics");
        Ok(tolerances)
    }

    /// The tolerance applied to `metric`: an exact per-metric entry if
    /// present, else the longest matching `_`-suffix entry, else the
    /// default.
    pub fn tolerance_for(&self, metric: &str) -> f64 {
        if let Some((_, v)) = self.per_metric.iter().find(|(name, _)| name == metric) {
            return *v;
        }
        self.per_metric
            .iter()
            .filter(|(name, _)| {
                metric
                    .strip_suffix(name.as_str())
                    .is_some_and(|head| head.ends_with('_'))
            })
            .max_by_key(|(name, _)| name.len())
            .map(|(_, v)| *v)
            .unwrap_or(self.default_rel)
    }

    fn checks(&self, metric: &str) -> bool {
        !self.ignore_metrics.iter().any(|m| m == metric)
            && !self.id_metrics.iter().any(|m| m == metric)
    }
}

/// One metric of one entry that moved past its tolerance.
#[derive(Clone, PartialEq, Debug)]
pub struct Regression {
    /// The entry's identity (`key=value,...`).
    pub entry: String,
    /// The regressed metric.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change, `(current - baseline) / baseline`.
    pub rel_change: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
}

/// The outcome of one baseline-vs-current comparison.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RegressReport {
    /// Experiment id both files belong to.
    pub experiment: String,
    /// Metrics that moved past tolerance, worst relative change first.
    pub regressions: Vec<Regression>,
    /// (entry, metric) pairs compared.
    pub checked: usize,
    /// Baseline entry ids with no counterpart in the current run.
    pub missing: Vec<String>,
}

impl RegressReport {
    /// True when the gate passes: nothing regressed and every baseline
    /// entry was matched.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// A human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "regress {}: {} ({} checks, {} regressions, {} missing entries)",
            self.experiment,
            verdict,
            self.checked,
            self.regressions.len(),
            self.missing.len()
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSED {} [{}]: {} -> {} ({:+.1}% > {:.1}% allowed)",
                r.metric,
                r.entry,
                r.baseline,
                r.current,
                r.rel_change * 100.0,
                r.tolerance * 100.0
            );
        }
        for entry in &self.missing {
            let _ = writeln!(out, "  MISSING baseline entry [{entry}]");
        }
        out
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": ");
        write_json_string(&mut out, &self.experiment);
        let _ = write!(
            out,
            ",\n  \"passed\": {},\n  \"checked\": {},\n  \"regressions\": [",
            self.passed(),
            self.checked
        );
        for (i, r) in self.regressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"entry\": ");
            write_json_string(&mut out, &r.entry);
            out.push_str(", \"metric\": ");
            write_json_string(&mut out, &r.metric);
            let _ = write!(
                out,
                ", \"baseline\": {}, \"current\": {}, \"rel_change\": {:.6}, \"tolerance\": {}}}",
                r.baseline, r.current, r.rel_change, r.tolerance
            );
        }
        if !self.regressions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"missing\": [");
        for (i, entry) in self.missing.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(&mut out, entry);
        }
        out.push_str("]\n}\n");
        out
    }
}

fn entry_with_id<'a>(
    entries: &'a [BenchEntry],
    tolerances: &Tolerances,
    id: &str,
) -> Option<&'a BenchEntry> {
    entries
        .iter()
        .find(|e| e.id(&tolerances.ignore_fields, &tolerances.id_metrics) == id)
}

/// Compares `current` against `baseline` under `tolerances`.
///
/// Every baseline entry must reappear in the current run (extra current
/// entries are ignored — sweeps may grow). For each shared entry, each
/// non-ignored metric present in both regresses when
/// `(current - baseline) / baseline` is strictly greater than its
/// tolerance; a zero baseline regresses only if the current value is
/// positive and the tolerance is finite.
pub fn check(baseline: &BenchFile, current: &BenchFile, tolerances: &Tolerances) -> RegressReport {
    let mut report = RegressReport {
        experiment: baseline.experiment.clone(),
        ..RegressReport::default()
    };
    for base_entry in &baseline.entries {
        let id = base_entry.id(&tolerances.ignore_fields, &tolerances.id_metrics);
        let Some(cur_entry) = entry_with_id(&current.entries, tolerances, &id) else {
            report.missing.push(id);
            continue;
        };
        for (metric, &base_value) in &base_entry.metrics {
            if !tolerances.checks(metric) {
                continue;
            }
            let Some(&cur_value) = cur_entry.metrics.get(metric) else {
                continue;
            };
            report.checked += 1;
            let tolerance = tolerances.tolerance_for(metric);
            let rel_change = if base_value != 0.0 {
                (cur_value - base_value) / base_value.abs()
            } else if cur_value > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if rel_change > tolerance {
                report.regressions.push(Regression {
                    entry: id.clone(),
                    metric: metric.clone(),
                    baseline: base_value,
                    current: cur_value,
                    rel_change,
                    tolerance,
                });
            }
        }
    }
    report
        .regressions
        .sort_by(|a, b| b.rel_change.total_cmp(&a.rel_change));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(entries_json: &str) -> BenchFile {
        BenchFile::parse(&format!(
            "{{\"schema_version\": 1, \"experiment\": \"test\", \"smoke\": false, \
             \"commit\": null, \"entries\": {entries_json}}}"
        ))
        .unwrap()
    }

    #[test]
    fn flags_only_metrics_strictly_past_tolerance() {
        let baseline = bench(r#"[{"w": "a", "solve_ms": 100, "clauses": 1000}]"#);
        // solve_ms exactly on the +50% boundary passes; clauses +10% with
        // a 0 tolerance fails.
        let current = bench(r#"[{"w": "a", "solve_ms": 150, "clauses": 1100}]"#);
        let tolerances = Tolerances {
            default_rel: 0.5,
            per_metric: vec![("clauses".to_owned(), 0.0)],
            ..Tolerances::default()
        };
        let report = check(&baseline, &current, &tolerances);
        assert_eq!(report.checked, 2);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "clauses");
        assert!(!report.passed());

        // One microsecond past the boundary trips the gate.
        let just_over = bench(r#"[{"w": "a", "solve_ms": 150.001, "clauses": 1000}]"#);
        let report = check(&baseline, &just_over, &tolerances);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "solve_ms");
    }

    #[test]
    fn suffix_tolerances_cover_metric_families() {
        let tolerances = Tolerances {
            default_rel: 0.1,
            per_metric: vec![
                ("ms".to_owned(), 1.0),
                ("total_ms".to_owned(), 2.0),
                ("clauses".to_owned(), 0.0),
            ],
            ..Tolerances::default()
        };
        assert_eq!(tolerances.tolerance_for("ms"), 1.0); // exact
        assert_eq!(tolerances.tolerance_for("solve_ms"), 1.0); // suffix
        assert_eq!(tolerances.tolerance_for("total_ms"), 2.0); // exact beats shorter suffix
        assert_eq!(tolerances.tolerance_for("grand_total_ms"), 2.0); // longest suffix
        assert_eq!(tolerances.tolerance_for("rooms"), 0.1); // 'ms' is not a _-suffix here
        assert_eq!(tolerances.tolerance_for("conflicts"), 0.1); // default
    }

    #[test]
    fn missing_entries_fail_and_extra_entries_are_ignored() {
        let baseline = bench(r#"[{"w": "a", "ms": 10}, {"w": "b", "ms": 10}]"#);
        let current = bench(r#"[{"w": "a", "ms": 10}, {"w": "c", "ms": 999}]"#);
        let report = check(&baseline, &current, &Tolerances::default());
        assert_eq!(report.missing, vec!["w=b".to_owned()]);
        assert!(report.regressions.is_empty());
        assert!(!report.passed());
    }

    #[test]
    fn ignored_fields_align_nondeterministic_entries() {
        let baseline = bench(r#"[{"w": "a", "winner": "pdr", "ms": 10}]"#);
        let current = bench(r#"[{"w": "a", "winner": "kind", "ms": 10}]"#);
        let strict = check(&baseline, &current, &Tolerances::default());
        assert!(!strict.passed(), "winner mismatch breaks alignment");
        let tolerances = Tolerances {
            ignore_fields: vec!["winner".to_owned()],
            ..Tolerances::default()
        };
        let report = check(&baseline, &current, &tolerances);
        assert!(report.passed());
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn numeric_sweep_parameters_can_join_the_identity() {
        // Without id_metrics, both depths collapse onto one id and the
        // depth-8 row aligns against the depth-1 row.
        let baseline = bench(
            r#"[{"mode": "incremental", "depth": 1, "ms": 1},
                {"mode": "incremental", "depth": 8, "ms": 100}]"#,
        );
        let tolerances = Tolerances {
            id_metrics: vec!["depth".to_owned()],
            ..Tolerances::default()
        };
        let report = check(&baseline, &baseline.clone(), &tolerances);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.checked, 2, "depth itself is identity, not a metric");

        // A regression at one depth is pinned to that depth's entry.
        let slower = bench(
            r#"[{"mode": "incremental", "depth": 1, "ms": 1},
                {"mode": "incremental", "depth": 8, "ms": 300}]"#,
        );
        let report = check(&baseline, &slower, &tolerances);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].entry, "depth=8,mode=incremental");
    }

    #[test]
    fn improvements_and_zero_baselines_behave() {
        let baseline = bench(r#"[{"w": "a", "ms": 100, "errors": 0}]"#);
        let faster = bench(r#"[{"w": "a", "ms": 1, "errors": 0}]"#);
        assert!(check(&baseline, &faster, &Tolerances::default()).passed());
        let erroring = bench(r#"[{"w": "a", "ms": 100, "errors": 1}]"#);
        let report = check(&baseline, &erroring, &Tolerances::default());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "errors");
        assert!(report.regressions[0].rel_change.is_infinite());
    }

    #[test]
    fn report_renders_and_serializes() {
        let baseline = bench(r#"[{"w": "a", "ms": 100}]"#);
        let current = bench(r#"[{"w": "a", "ms": 300}]"#);
        let report = check(&baseline, &current, &Tolerances::default());
        let text = report.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("REGRESSED ms"));
        let json = Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(json.get("passed").unwrap().as_bool(), Some(false));
        assert_eq!(
            json.get("regressions").unwrap().as_array().unwrap().len(),
            1
        );
        let parsed = Tolerances::parse(
            r#"{"default_rel": 0.5, "per_metric": {"ms": 1.0},
                "ignore_fields": ["winner"], "ignore_metrics": ["speedup"]}"#,
        )
        .unwrap();
        assert_eq!(parsed.default_rel, 0.5);
        assert_eq!(parsed.tolerance_for("solve_ms"), 1.0);
        assert!(!parsed.checks("speedup"));
    }
}
