//! A small recursive-descent JSON parser for the artifacts this crate
//! consumes (`profile.json`, `BENCH_*.json`, its own Chrome-trace output
//! in tests).
//!
//! The workspace builds offline and the in-tree `serde` stand-in is
//! marker-traits only, so — like `ipcl_trace::report`'s flat-object JSONL
//! parser — this module is hand-rolled. Unlike that parser it handles the
//! full recursive grammar (nested arrays/objects), which the profile and
//! bench documents need. Numbers are held as `f64`: every metric in the
//! artifacts is a count or a duration well inside the 2^53 exact-integer
//! range.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected literal '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.expect(b'}')?;
            return Ok(Json::Obj(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            if !members.iter().any(|(k, _)| *k == key) {
                members.push((key, value));
            }
            match self.peek() {
                Some(b',') => self.expect(b',')?,
                Some(b'}') => {
                    self.expect(b'}')?;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.expect(b',')?,
                Some(b']') => {
                    self.expect(b']')?;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b => {
                    let start = self.pos - 1;
                    let width = match b {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a value at byte {start}"));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(
            r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}, "f": []}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(
            doc.get("b").unwrap().get("d").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(doc.get("f").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_the_trace_crates_profile_output() {
        // The exact shape `ipcl_trace::report::profile_json` emits.
        let text = "{\n  \"wall_us\": 123,\n  \"root_span_us\": 100,\n  \"dropped_events\": 0,\n  \
                    \"spans\": [\n    {\"path\": [\"solve\"], \"total_us\": 100, \"self_us\": 40, \
                    \"count\": 1}\n  ],\n  \"counters\": {\n    \"sat.conflicts\": 12\n  },\n  \
                    \"gauges\": {\n    \"depth\": 3.5\n  }\n}\n";
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.get("wall_us").unwrap().as_u64(), Some(123));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("sat.conflicts")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("depth").unwrap().as_f64(),
            Some(3.5)
        );
    }
}
