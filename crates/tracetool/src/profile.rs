//! The parsed form of a `profile.json` artifact (and its in-process
//! equivalent built straight from a [`TraceSnapshot`]), the common input
//! of the [`crate::diff`] machinery.

use std::collections::BTreeMap;

use ipcl_trace::TraceSnapshot;

use crate::json::Json;

/// One span path of a profile document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileSpan {
    /// Span path from a root span down.
    pub path: Vec<String>,
    /// Total wall time at this exact path, microseconds.
    pub total_us: u64,
    /// Total minus the children's total — time in the span itself.
    pub self_us: u64,
    /// Completed spans at this path.
    pub count: u64,
}

/// A parsed `profile.json`: the span tree plus the run's unified metrics.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProfileDoc {
    /// Microseconds from tracer creation to the snapshot.
    pub wall_us: u64,
    /// Total of the root spans (may exceed `wall_us` under racing threads).
    pub root_span_us: u64,
    /// The flattened span tree, in path order.
    pub spans: Vec<ProfileSpan>,
    /// Counters (exact integers, held as `f64` alongside the gauges).
    pub counters: BTreeMap<String, f64>,
    /// Gauges.
    pub gauges: BTreeMap<String, f64>,
}

impl ProfileDoc {
    /// Parses the output of [`ipcl_trace::report::profile_json`].
    pub fn parse(text: &str) -> Result<ProfileDoc, String> {
        let doc = Json::parse(text)?;
        let wall_us = doc
            .get("wall_us")
            .and_then(Json::as_u64)
            .ok_or("profile.json: missing wall_us")?;
        let root_span_us = doc
            .get("root_span_us")
            .and_then(Json::as_u64)
            .ok_or("profile.json: missing root_span_us")?;
        let mut spans = Vec::new();
        for span in doc
            .get("spans")
            .and_then(Json::as_array)
            .ok_or("profile.json: missing spans")?
        {
            let path = span
                .get("path")
                .and_then(Json::as_array)
                .ok_or("span without path")?
                .iter()
                .map(|seg| {
                    seg.as_str()
                        .map(str::to_owned)
                        .ok_or("non-string path segment")
                })
                .collect::<Result<Vec<_>, _>>()?;
            spans.push(ProfileSpan {
                path,
                total_us: span
                    .get("total_us")
                    .and_then(Json::as_u64)
                    .ok_or("span without total_us")?,
                self_us: span
                    .get("self_us")
                    .and_then(Json::as_u64)
                    .ok_or("span without self_us")?,
                count: span
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("span without count")?,
            });
        }
        let numbers = |key: &str| -> Result<BTreeMap<String, f64>, String> {
            let mut out = BTreeMap::new();
            if let Some(members) = doc.get(key).and_then(Json::as_object) {
                for (name, value) in members {
                    if let Some(v) = value.as_f64() {
                        out.insert(name.clone(), v);
                    }
                }
            }
            Ok(out)
        };
        Ok(ProfileDoc {
            wall_us,
            root_span_us,
            spans,
            counters: numbers("counters")?,
            gauges: numbers("gauges")?,
        })
    }

    /// Builds the document straight from a snapshot (no JSON round-trip),
    /// for in-process diffing and tests.
    pub fn from_snapshot(snapshot: &TraceSnapshot) -> ProfileDoc {
        ProfileDoc {
            wall_us: snapshot.wall_us,
            root_span_us: snapshot.root_span_us(),
            spans: snapshot
                .spans
                .iter()
                .map(|span| ProfileSpan {
                    path: span.path.clone(),
                    total_us: span.total_us,
                    self_us: snapshot.self_us(&span.path),
                    count: span.count,
                })
                .collect(),
            counters: snapshot
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v as f64))
                .collect(),
            gauges: snapshot.gauges.clone(),
        }
    }

    /// The span at exactly `path`, if present.
    pub fn span(&self, path: &[String]) -> Option<&ProfileSpan> {
        self.spans.iter().find(|s| s.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_trace::{report, MetricSink, TraceConfig, Tracer};

    #[test]
    fn parse_round_trips_from_snapshot_through_profile_json() {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let _outer = tracer.span("solve");
            let _inner = tracer.span("propagate");
            tracer.counter("sat.conflicts", 12);
            tracer.gauge("depth", 3.5);
        }
        let snapshot = tracer.snapshot().unwrap();
        let parsed = ProfileDoc::parse(&report::profile_json(&snapshot)).expect("parses");
        assert_eq!(parsed, ProfileDoc::from_snapshot(&snapshot));
        assert_eq!(parsed.counters["sat.conflicts"], 12.0);
        assert_eq!(parsed.gauges["depth"], 3.5);
        let root = parsed.span(&["solve".to_owned()]).unwrap();
        assert_eq!(root.count, 1);
        assert!(root.total_us >= root.self_us);
    }
}
