//! Profile diffing: align two runs' span trees and attribute the
//! wall-clock (and metric) delta to span paths.
//!
//! The output answers "where did the time go": every span path present in
//! either run gets a before/after row, sorted by **self-time regression**
//! (largest slowdown first), and the headline `attributed` ratio states
//! how much of the end-to-end wall-clock delta the span tree accounts for
//! — on a well-instrumented single-engine run (span coverage ≈ 100%, the
//! E12 gate) this is ≥ 95%, so a regression can always be pinned to a
//! path instead of "somewhere".

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::write_json_string;
use crate::profile::ProfileDoc;

/// Before/after comparison of one span path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanDelta {
    /// The span path (present in at least one of the two runs).
    pub path: Vec<String>,
    /// `total_us` before / after (0 when the path is absent from a run).
    pub total_before_us: u64,
    /// See `total_before_us`.
    pub total_after_us: u64,
    /// `self_us` before / after.
    pub self_before_us: u64,
    /// See `self_before_us`.
    pub self_after_us: u64,
    /// Span count before / after.
    pub count_before: u64,
    /// See `count_before`.
    pub count_after: u64,
}

impl SpanDelta {
    /// Change in total time (positive = regression).
    pub fn total_delta_us(&self) -> i64 {
        self.total_after_us as i64 - self.total_before_us as i64
    }

    /// Change in self time (positive = regression).
    pub fn self_delta_us(&self) -> i64 {
        self.self_after_us as i64 - self.self_before_us as i64
    }

    /// Relative change of the self time (`after/before - 1`; infinite for
    /// a path new in the after run).
    pub fn self_ratio(&self) -> f64 {
        if self.self_before_us == 0 {
            if self.self_after_us == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.self_after_us as f64 / self.self_before_us as f64 - 1.0
        }
    }

    fn path_string(&self) -> String {
        self.path.join(" / ")
    }
}

/// Before/after comparison of one counter or gauge.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value before (0 when absent).
    pub before: f64,
    /// Value after (0 when absent).
    pub after: f64,
}

impl MetricDelta {
    /// Absolute change.
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }
}

/// The aligned diff of two profile documents.
#[derive(Clone, PartialEq, Debug)]
pub struct ProfileDiff {
    /// Wall-clock change, after minus before, microseconds.
    pub wall_delta_us: i64,
    /// Per-path rows, sorted by self-time regression (largest first, ties
    /// by path).
    pub spans: Vec<SpanDelta>,
    /// Counter rows, sorted by absolute change (largest first).
    pub counters: Vec<MetricDelta>,
    /// Gauge rows, same order.
    pub gauges: Vec<MetricDelta>,
    /// Fraction of the wall-clock delta attributed to span paths: the sum
    /// of the root spans' total deltas over the wall delta. 1.0 when both
    /// deltas are zero.
    pub attributed: f64,
}

fn metric_rows(before: &BTreeMap<String, f64>, after: &BTreeMap<String, f64>) -> Vec<MetricDelta> {
    let mut names: Vec<&String> = before.keys().chain(after.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<MetricDelta> = names
        .into_iter()
        .map(|name| MetricDelta {
            name: name.clone(),
            before: before.get(name).copied().unwrap_or(0.0),
            after: after.get(name).copied().unwrap_or(0.0),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta()
            .abs()
            .partial_cmp(&a.delta().abs())
            .expect("finite metrics")
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

impl ProfileDiff {
    /// Aligns `after` against `before` and computes every row.
    pub fn compute(before: &ProfileDoc, after: &ProfileDoc) -> ProfileDiff {
        let mut paths: Vec<&Vec<String>> = before
            .spans
            .iter()
            .map(|s| &s.path)
            .chain(after.spans.iter().map(|s| &s.path))
            .collect();
        paths.sort();
        paths.dedup();

        let mut spans: Vec<SpanDelta> = paths
            .into_iter()
            .map(|path| {
                let b = before.span(path);
                let a = after.span(path);
                SpanDelta {
                    path: path.clone(),
                    total_before_us: b.map_or(0, |s| s.total_us),
                    total_after_us: a.map_or(0, |s| s.total_us),
                    self_before_us: b.map_or(0, |s| s.self_us),
                    self_after_us: a.map_or(0, |s| s.self_us),
                    count_before: b.map_or(0, |s| s.count),
                    count_after: a.map_or(0, |s| s.count),
                }
            })
            .collect();
        spans.sort_by(|a, b| {
            b.self_delta_us()
                .cmp(&a.self_delta_us())
                .then_with(|| a.path.cmp(&b.path))
        });

        let wall_delta_us = after.wall_us as i64 - before.wall_us as i64;
        let root_delta_us: i64 = spans
            .iter()
            .filter(|s| s.path.len() == 1)
            .map(SpanDelta::total_delta_us)
            .sum();
        let attributed = if wall_delta_us == 0 {
            if root_delta_us == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            root_delta_us as f64 / wall_delta_us as f64
        };

        ProfileDiff {
            wall_delta_us,
            spans,
            counters: metric_rows(&before.counters, &after.counters),
            gauges: metric_rows(&before.gauges, &after.gauges),
            attributed,
        }
    }

    /// The span rows regressing beyond the gate: self time grew by more
    /// than `threshold` (relative, e.g. `0.10` = +10%) *and* by at least
    /// `min_us` (absolute floor, so a 2 µs path cannot trip a 10% gate
    /// with measurement noise).
    pub fn regressions(&self, threshold: f64, min_us: u64) -> Vec<&SpanDelta> {
        self.spans
            .iter()
            .filter(|s| s.self_delta_us() >= min_us.max(1) as i64 && s.self_ratio() > threshold)
            .collect()
    }

    /// Whether every span row is identical before and after (the empty
    /// diff of two runs of the same artifact).
    pub fn is_empty(&self) -> bool {
        self.wall_delta_us == 0
            && self.spans.iter().all(|s| {
                s.total_delta_us() == 0 && s.self_delta_us() == 0 && s.count_before == s.count_after
            })
            && self.counters.iter().all(|m| m.delta() == 0.0)
            && self.gauges.iter().all(|m| m.delta() == 0.0)
    }

    /// Human-readable rendering: the headline attribution, then one row
    /// per span path (skipping unchanged rows), then the metric deltas
    /// (top `max_metrics` by absolute change).
    pub fn render(&self, max_metrics: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall delta {:+.3} ms, {:.1}% attributed to span paths",
            self.wall_delta_us as f64 / 1_000.0,
            self.attributed * 100.0
        );
        let changed: Vec<&SpanDelta> = self
            .spans
            .iter()
            .filter(|s| s.total_delta_us() != 0 || s.self_delta_us() != 0)
            .collect();
        if !changed.is_empty() {
            let _ = writeln!(
                out,
                "  {:<52} {:>12} {:>12} {:>9}",
                "span", "self Δms", "total Δms", "self ×"
            );
            for span in changed {
                let ratio = span.self_ratio();
                let _ = writeln!(
                    out,
                    "  {:<52} {:>+12.3} {:>+12.3} {:>9}",
                    span.path_string(),
                    span.self_delta_us() as f64 / 1_000.0,
                    span.total_delta_us() as f64 / 1_000.0,
                    if ratio.is_infinite() {
                        "new".to_owned()
                    } else {
                        format!("{:+.1}%", ratio * 100.0)
                    },
                );
            }
        }
        let metrics: Vec<&MetricDelta> = self
            .counters
            .iter()
            .chain(&self.gauges)
            .filter(|m| m.delta() != 0.0)
            .take(max_metrics)
            .collect();
        if !metrics.is_empty() {
            let _ = writeln!(out, "  metrics:");
            for metric in metrics {
                let _ = writeln!(
                    out,
                    "    {:<50} {:>14.3} -> {:>14.3} ({:+.3})",
                    metric.name,
                    metric.before,
                    metric.after,
                    metric.delta()
                );
            }
        }
        out
    }

    /// Machine-readable rendering of the full diff.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"wall_delta_us\": {},\n  \"attributed\": {:.6},\n  \"spans\": [",
            self.wall_delta_us, self.attributed
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"path\": [");
            for (j, seg) in span.path.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_json_string(&mut out, seg);
            }
            let _ = write!(
                out,
                "], \"self_before_us\": {}, \"self_after_us\": {}, \"total_before_us\": {}, \
                 \"total_after_us\": {}, \"count_before\": {}, \"count_after\": {}}}",
                span.self_before_us,
                span.self_after_us,
                span.total_before_us,
                span.total_after_us,
                span.count_before,
                span.count_after
            );
        }
        out.push_str("\n  ],\n  \"metrics\": [");
        for (i, metric) in self.counters.iter().chain(&self.gauges).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            write_json_string(&mut out, &metric.name);
            let _ = write!(
                out,
                ", \"before\": {}, \"after\": {}}}",
                metric.before, metric.after
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileSpan;

    fn doc(spans: &[(&[&str], u64, u64, u64)], wall_us: u64) -> ProfileDoc {
        ProfileDoc {
            wall_us,
            root_span_us: spans
                .iter()
                .filter(|(path, ..)| path.len() == 1)
                .map(|&(_, total, _, _)| total)
                .sum(),
            spans: spans
                .iter()
                .map(|&(path, total_us, self_us, count)| ProfileSpan {
                    path: path.iter().map(|s| (*s).to_owned()).collect(),
                    total_us,
                    self_us,
                    count,
                })
                .collect(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    #[test]
    fn injected_regression_is_reported_first_and_attributed() {
        let before = doc(
            &[
                (&["check"], 1000, 100, 1),
                (&["check", "encode"], 400, 400, 1),
                (&["check", "solve"], 500, 500, 10),
            ],
            1000,
        );
        // The solve path doubles (+500 µs); everything else unchanged.
        let after = doc(
            &[
                (&["check"], 1500, 100, 1),
                (&["check", "encode"], 400, 400, 1),
                (&["check", "solve"], 1000, 1000, 10),
            ],
            1500,
        );
        let diff = ProfileDiff::compute(&before, &after);
        assert_eq!(diff.wall_delta_us, 500);
        assert_eq!(diff.spans[0].path, ["check", "solve"]);
        assert_eq!(diff.spans[0].self_delta_us(), 500);
        assert_eq!(diff.spans[0].self_ratio(), 1.0);
        assert_eq!(diff.attributed, 1.0, "the root span carries the full delta");
        let regressions = diff.regressions(0.10, 50);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].path, ["check", "solve"]);
        assert!(diff.render(10).contains("check / solve"));
    }

    #[test]
    fn identical_runs_produce_an_empty_diff() {
        let run = doc(&[(&["check"], 1000, 1000, 1)], 1000);
        let diff = ProfileDiff::compute(&run, &run.clone());
        assert!(diff.is_empty());
        assert!(diff.regressions(0.0, 0).is_empty());
        assert_eq!(diff.attributed, 1.0);
    }

    #[test]
    fn threshold_gate_respects_relative_and_absolute_floors() {
        let before = doc(
            &[(&["a"], 100, 100, 1), (&["b"], 10_000, 10_000, 1)],
            10_100,
        );
        let after = doc(
            &[(&["a"], 200, 200, 1), (&["b"], 10_500, 10_500, 1)],
            10_700,
        );
        let diff = ProfileDiff::compute(&before, &after);
        // a: +100 µs (+100%), b: +500 µs (+5%).
        assert_eq!(
            diff.regressions(0.10, 1).len(),
            1,
            "b is inside the 10% gate"
        );
        assert_eq!(
            diff.regressions(0.10, 200).len(),
            0,
            "a is under the 200 µs floor"
        );
        assert_eq!(diff.regressions(0.04, 1).len(), 2, "a 4% gate catches both");
    }

    #[test]
    fn paths_absent_from_one_run_align_against_zero() {
        let before = doc(&[(&["a"], 100, 100, 1)], 100);
        let after = doc(&[(&["c"], 300, 300, 2)], 300);
        let diff = ProfileDiff::compute(&before, &after);
        let gone = diff.spans.iter().find(|s| s.path == ["a"]).unwrap();
        assert_eq!(gone.self_delta_us(), -100);
        let new = diff.spans.iter().find(|s| s.path == ["c"]).unwrap();
        assert_eq!(new.self_delta_us(), 300);
        assert!(new.self_ratio().is_infinite());
        assert_eq!(
            diff.spans[0].path,
            ["c"],
            "the new path is the biggest regression"
        );
    }

    #[test]
    fn diff_json_parses_back() {
        let before = doc(&[(&["a"], 100, 100, 1)], 100);
        let after = doc(&[(&["a"], 150, 150, 1)], 150);
        let diff = ProfileDiff::compute(&before, &after);
        let doc = crate::json::Json::parse(&diff.to_json()).expect("diff JSON parses");
        assert_eq!(doc.get("wall_delta_us").unwrap().as_f64(), Some(50.0));
    }
}
