//! The parsed form of a `BENCH_*.json` experiment artifact.
//!
//! Since the shared-header satellite of ISSUE 7, every experiment binary
//! emits one object (`ipcl_bench::emit_bench_json`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "bmc_depth",
//!   "smoke": true,
//!   "commit": "abc123...",        // or null
//!   "entries": [ { ... one measurement point ... }, ... ]
//! }
//! ```
//!
//! Earlier commits' artifacts were a bare JSON array of entries; those
//! parse as `schema_version` 0 with the experiment name recovered from
//! the entries' own `"experiment"` field, so `tracetool regress` ingests
//! the whole history uniformly.

use std::collections::BTreeMap;

use crate::json::Json;

/// One measurement point of an experiment run, split into its identity
/// fields (strings/bools — workload, engine, mode, …) and its numeric
/// metrics (times, counts, ratios). Array-valued fields are dropped.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BenchEntry {
    /// String- and bool-valued fields (bools as `"true"`/`"false"`),
    /// minus the `"experiment"` tag carried in the file header.
    pub fields: BTreeMap<String, String>,
    /// Numeric fields.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchEntry {
    /// The entry's identity: its non-numeric fields as `key=value`, sorted
    /// by key, skipping any key in `ignore` (volatile fields like the
    /// portfolio's race `winner`), plus any metric named in `numeric_ids`
    /// — the sweep parameters (`depth`, …) that distinguish points but
    /// parse as numbers.
    pub fn id(&self, ignore: &[String], numeric_ids: &[String]) -> String {
        let mut parts: Vec<String> = self
            .fields
            .iter()
            .filter(|(key, _)| !ignore.iter().any(|i| i == *key))
            .map(|(key, value)| format!("{key}={value}"))
            .chain(
                self.metrics
                    .iter()
                    .filter(|(key, _)| numeric_ids.iter().any(|i| i == *key))
                    .map(|(key, value)| format!("{key}={value}")),
            )
            .collect();
        parts.sort();
        parts.join(",")
    }
}

/// One parsed `BENCH_*.json` file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BenchFile {
    /// Header schema version (0 for pre-header bare-array files).
    pub schema_version: u64,
    /// Experiment id (`bmc_depth`, `pdr_vs_kinduction`, …).
    pub experiment: String,
    /// Whether the run was a CI smoke (shrunk sweep).
    pub smoke: bool,
    /// Commit hash the run came from, when the environment provided one.
    pub commit: Option<String>,
    /// The measurement points.
    pub entries: Vec<BenchEntry>,
}

fn parse_entry(value: &Json) -> Option<BenchEntry> {
    let members = value.as_object()?;
    let mut entry = BenchEntry::default();
    for (key, value) in members {
        match value {
            Json::Num(v) => {
                entry.metrics.insert(key.clone(), *v);
            }
            Json::Str(s) if key != "experiment" => {
                entry.fields.insert(key.clone(), s.clone());
            }
            Json::Bool(b) => {
                entry.fields.insert(key.clone(), b.to_string());
            }
            _ => {} // arrays, nulls, nested objects, the experiment tag
        }
    }
    Some(entry)
}

impl BenchFile {
    /// Parses a `BENCH_*.json` document — the v1 header object or a
    /// legacy bare array.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let doc = Json::parse(text)?;
        let (header, raw_entries) = match &doc {
            Json::Obj(_) => {
                let entries = doc
                    .get("entries")
                    .and_then(Json::as_array)
                    .ok_or("BENCH header without entries")?;
                (Some(&doc), entries)
            }
            Json::Arr(items) => (None, items.as_slice()),
            _ => return Err("BENCH file is neither an object nor an array".to_owned()),
        };
        let entries: Vec<BenchEntry> = raw_entries.iter().filter_map(parse_entry).collect();
        let experiment = header
            .and_then(|h| h.get("experiment"))
            .and_then(Json::as_str)
            .map(str::to_owned)
            .or_else(|| {
                // Legacy files tag each entry instead.
                raw_entries
                    .first()
                    .and_then(|e| e.get("experiment"))
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            })
            .ok_or("cannot determine the experiment id")?;
        Ok(BenchFile {
            schema_version: header
                .and_then(|h| h.get("schema_version"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            experiment,
            smoke: header
                .and_then(|h| h.get("smoke"))
                .and_then(Json::as_bool)
                .unwrap_or(false),
            commit: header
                .and_then(|h| h.get("commit"))
                .and_then(Json::as_str)
                .map(str::to_owned),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_v1_header_files() {
        let file = BenchFile::parse(
            r#"{
              "schema_version": 1,
              "experiment": "bmc_depth",
              "smoke": true,
              "commit": "abc123",
              "entries": [
                {"experiment": "bmc_depth", "mode": "incremental", "depth": 4,
                 "solve_ms": 1.25, "clauses": 900, "per_frame": [1, 2]}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(file.schema_version, 1);
        assert_eq!(file.experiment, "bmc_depth");
        assert!(file.smoke);
        assert_eq!(file.commit.as_deref(), Some("abc123"));
        assert_eq!(file.entries.len(), 1);
        let entry = &file.entries[0];
        assert_eq!(entry.id(&[], &[]), "mode=incremental");
        assert_eq!(
            entry.id(&[], &["depth".to_owned()]),
            "depth=4,mode=incremental",
            "sweep parameters can join the identity"
        );
        assert_eq!(entry.metrics["depth"], 4.0);
        assert_eq!(entry.metrics["solve_ms"], 1.25);
        assert!(
            !entry.metrics.contains_key("per_frame"),
            "arrays are dropped"
        );
    }

    #[test]
    fn parses_legacy_bare_arrays_as_schema_zero() {
        let file = BenchFile::parse(
            r#"[
              {"experiment": "pdr_vs_kinduction", "workload": "deep-chain-16",
               "engine": "pdr", "phase_saving": true, "ms": 77.0, "winner": "pdr"}
            ]"#,
        )
        .unwrap();
        assert_eq!(file.schema_version, 0);
        assert_eq!(file.experiment, "pdr_vs_kinduction");
        assert!(!file.smoke);
        assert_eq!(file.commit, None);
        let entry = &file.entries[0];
        assert_eq!(
            entry.id(&["winner".to_owned()], &[]),
            "engine=pdr,phase_saving=true,workload=deep-chain-16"
        );
    }
}
