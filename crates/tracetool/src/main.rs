//! `ipcl-tracetool` — the command-line surface of the trace analytics
//! crate.
//!
//! ```text
//! ipcl-tracetool export --trace trace.jsonl [--chrome out] [--profile profile.json --folded out]
//! ipcl-tracetool diff <before-profile.json> <after-profile.json> [--threshold R] [--min-us N] [--json] [--gate]
//! ipcl-tracetool regress --baseline <file|dir> --current <file|dir> [--tolerances file] [--json]
//! ```
//!
//! `diff --gate` and `regress` exit non-zero when the comparison trips,
//! so both slot directly into CI.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ipcl_tracetool::{
    check, chrome_trace, folded_stacks_from_profile, BenchFile, ProfileDiff, ProfileDoc, Tolerances,
};

const USAGE: &str = "usage:
  ipcl-tracetool export --trace <trace.jsonl> [--chrome <out.json>]
                        [--profile <profile.json>] [--folded <out.folded>]
  ipcl-tracetool diff <before-profile.json> <after-profile.json>
                        [--threshold <rel>] [--min-us <us>] [--json] [--gate]
  ipcl-tracetool regress --baseline <file|dir> --current <file|dir>
                        [--tolerances <file>] [--json]";

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn write(path: &Path, text: &str) -> Result<(), String> {
    fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

/// `--flag value` extraction: removes the pair from `args`.
fn take_option(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if at + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Ok(Some(value))
}

/// Bare `--flag` extraction.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(at);
    true
}

fn cmd_export(mut args: Vec<String>) -> Result<(), String> {
    let trace_path = take_option(&mut args, "--trace")?;
    let chrome_path = take_option(&mut args, "--chrome")?;
    let profile_path = take_option(&mut args, "--profile")?;
    let folded_path = take_option(&mut args, "--folded")?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument '{extra}'"));
    }
    if trace_path.is_none() && profile_path.is_none() {
        return Err("export needs --trace and/or --profile".to_owned());
    }
    if let Some(trace_path) = trace_path {
        let trace_path = PathBuf::from(trace_path);
        let events = ipcl_trace::report::parse_jsonl(&read(&trace_path)?)?;
        let chrome = chrome_trace(&events)?;
        let out = chrome_path
            .map(PathBuf::from)
            .unwrap_or_else(|| trace_path.with_extension("chrome.json"));
        write(&out, &chrome)?;
        println!("wrote {} ({} events)", out.display(), events.len());
    }
    if let Some(profile_path) = profile_path {
        let profile_path = PathBuf::from(profile_path);
        let doc = ProfileDoc::parse(&read(&profile_path)?)?;
        let folded = folded_stacks_from_profile(&doc);
        let out = folded_path
            .map(PathBuf::from)
            .unwrap_or_else(|| profile_path.with_extension("folded"));
        write(&out, &folded)?;
        println!(
            "wrote {} ({} stacks)",
            out.display(),
            folded.lines().count()
        );
    }
    Ok(())
}

fn cmd_diff(mut args: Vec<String>) -> Result<bool, String> {
    let threshold = take_option(&mut args, "--threshold")?
        .map(|v| v.parse::<f64>().map_err(|e| format!("--threshold: {e}")))
        .transpose()?
        .unwrap_or(0.10);
    let min_us = take_option(&mut args, "--min-us")?
        .map(|v| v.parse::<u64>().map_err(|e| format!("--min-us: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let as_json = take_flag(&mut args, "--json");
    let gate = take_flag(&mut args, "--gate");
    let [before_path, after_path]: [String; 2] = args
        .try_into()
        .map_err(|_| "diff needs exactly two profile.json paths".to_owned())?;
    let before = ProfileDoc::parse(&read(Path::new(&before_path))?)?;
    let after = ProfileDoc::parse(&read(Path::new(&after_path))?)?;
    let diff = ProfileDiff::compute(&before, &after);
    if as_json {
        print!("{}", diff.to_json());
    } else {
        print!("{}", diff.render(8));
    }
    let regressed = diff.regressions(threshold, min_us);
    if gate && !regressed.is_empty() {
        eprintln!(
            "diff gate: {} span path(s) regressed more than {:.0}% (and {min_us}us)",
            regressed.len(),
            threshold * 100.0
        );
        return Ok(false);
    }
    Ok(true)
}

/// `BENCH_*.json` files under `path` (or just `path` itself for a file),
/// parsed, sorted by file name.
fn load_bench_files(path: &Path) -> Result<Vec<(PathBuf, BenchFile)>, String> {
    let mut paths = Vec::new();
    if path.is_dir() {
        let entries = fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
        for entry in entries {
            let entry_path = entry.map_err(|e| e.to_string())?.path();
            let name = entry_path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("");
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                paths.push(entry_path);
            }
        }
        paths.sort();
        if paths.is_empty() {
            return Err(format!("{}: no BENCH_*.json files", path.display()));
        }
    } else {
        paths.push(path.to_path_buf());
    }
    paths
        .into_iter()
        .map(|p| {
            let parsed =
                BenchFile::parse(&read(&p)?).map_err(|e| format!("{}: {e}", p.display()))?;
            Ok((p, parsed))
        })
        .collect()
}

fn cmd_regress(mut args: Vec<String>) -> Result<bool, String> {
    let baseline_path = take_option(&mut args, "--baseline")?.ok_or("regress needs --baseline")?;
    let current_path = take_option(&mut args, "--current")?.ok_or("regress needs --current")?;
    let tolerances = match take_option(&mut args, "--tolerances")? {
        Some(path) => Tolerances::parse(&read(Path::new(&path))?)?,
        None => Tolerances::default(),
    };
    let as_json = take_flag(&mut args, "--json");
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument '{extra}'"));
    }
    let baselines = load_bench_files(Path::new(&baseline_path))?;
    let currents = load_bench_files(Path::new(&current_path))?;
    let mut all_passed = true;
    for (base_file, baseline) in &baselines {
        let matching: Vec<_> = currents
            .iter()
            .filter(|(_, c)| c.experiment == baseline.experiment)
            .collect();
        if matching.is_empty() {
            eprintln!(
                "regress {}: FAIL (no current BENCH file for baseline {})",
                baseline.experiment,
                base_file.display()
            );
            all_passed = false;
            continue;
        }
        for (_, current) in matching {
            let report = check(baseline, current, &tolerances);
            if as_json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            all_passed &= report.passed();
        }
    }
    Ok(all_passed)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let outcome = match command.as_str() {
        "export" => cmd_export(args).map(|()| true),
        "diff" => cmd_diff(args),
        "regress" => cmd_regress(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("ipcl-tracetool: {message}");
            ExitCode::from(2)
        }
    }
}
