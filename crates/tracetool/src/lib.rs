//! Analysis and consumption tooling for `ipcl-trace` artifacts.
//!
//! The tracing layer (`ipcl-trace`) records what the solve stack did;
//! this crate turns those recordings into answers:
//!
//! * [`export`] — Chrome Trace Event JSON (Perfetto / `chrome://tracing`)
//!   from an event stream, and folded stacks (`flamegraph.pl`,
//!   speedscope) from a span profile.
//! * [`diff`] — align two `profile.json` runs span-path by span-path and
//!   attribute the wall-clock and metric deltas, worst regression first.
//! * [`regress`] — gate a current `BENCH_*.json` run against a committed
//!   baseline under per-metric tolerances.
//! * [`watch`] — render the engines' rate-limited `heartbeat` events as a
//!   live progress line while a proof is in flight.
//!
//! The `ipcl-tracetool` binary exposes export/diff/regress on the command
//! line; [`watch::Watcher`] is embedded by the experiment binaries'
//! `--watch` flag.

pub mod benchfile;
pub mod diff;
pub mod export;
pub mod json;
pub mod profile;
pub mod regress;
pub mod watch;

pub use benchfile::{BenchEntry, BenchFile};
pub use diff::{MetricDelta, ProfileDiff, SpanDelta};
pub use export::{chrome_trace, folded_stacks, folded_stacks_from_profile};
pub use profile::{ProfileDoc, ProfileSpan};
pub use regress::{check, RegressReport, Regression, Tolerances};
pub use watch::{progress_line, Watcher};
