//! Export of trace artifacts into standard visualization formats.
//!
//! * [`chrome_trace`] — the Chrome Trace Event format (a `traceEvents`
//!   array of `B`/`E` duration events plus `i` instants), loadable by
//!   Perfetto / `chrome://tracing`. Span begin/end pairs are emitted per
//!   thread in sequence order and validated with a stack machine, so a
//!   malformed event stream is an error instead of a silently broken
//!   visualization.
//! * [`folded_stacks`] — the semicolon-separated folded-stack format
//!   consumed by `flamegraph.pl` / speedscope / inferno: one line per
//!   span path with its **self** time in microseconds (flamegraph
//!   renderers re-accumulate children onto parents, so emitting self
//!   time keeps totals exact).

use std::fmt::Write as _;

use ipcl_trace::{Event, TraceSnapshot, Value};

use crate::json::write_json_string;

fn write_value_json(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(v) => write_json_string(out, v),
    }
}

/// One Chrome trace event line: the common envelope plus `ph`-specific
/// fields. `args` members come from the source event's typed fields.
fn write_chrome_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts: u64,
    tid: u64,
    args: &[(&str, &Value)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    {\"name\": ");
    write_json_string(out, name);
    let _ = write!(
        out,
        ", \"ph\": \"{ph}\", \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}"
    );
    if ph == 'i' {
        // Thread-scoped instant: rendered as a marker on its own track.
        out.push_str(", \"s\": \"t\"");
    }
    if !args.is_empty() {
        out.push_str(", \"args\": {");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_json_string(out, key);
            out.push_str(": ");
            write_value_json(out, value);
        }
        out.push('}');
    }
    out.push('}');
}

/// Converts an event stream (as recorded by a [`ipcl_trace::Tracer`] or
/// re-parsed from `trace.jsonl`) into Chrome Trace Event JSON.
///
/// `span_enter` becomes a `B` (begin) and `span_exit` an `E` (end) event
/// on the source thread's track; every other event kind becomes a
/// thread-scoped instant (`i`) carrying its fields as `args`. Events are
/// grouped per thread and replayed in sequence-number order — the order
/// the thread recorded them — so begin/end nesting is exact even when the
/// portfolio's racing engines interleaved their streams.
///
/// # Errors
///
/// If any thread's `span_enter`/`span_exit` events do not pair up (a
/// truncated dump, or a trace whose event log overflowed and dropped
/// exits), with a message naming the thread and span.
pub fn chrome_trace(events: &[Event]) -> Result<String, String> {
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for &thread in &threads {
        let mut thread_events: Vec<&Event> = events.iter().filter(|e| e.thread == thread).collect();
        thread_events.sort_by_key(|e| e.seq);
        // The begin/end stack machine: every E must close the innermost
        // open B of its thread.
        let mut stack: Vec<&str> = Vec::new();
        for event in thread_events {
            match event.kind.as_ref() {
                "span_enter" => {
                    let Some(Value::Str(name)) = event.field("name") else {
                        return Err(format!("span_enter without a name: {event:?}"));
                    };
                    stack.push(name.as_ref());
                    write_chrome_event(&mut out, &mut first, name, 'B', event.t_us, thread, &[]);
                }
                "span_exit" => {
                    let Some(Value::Str(name)) = event.field("name") else {
                        return Err(format!("span_exit without a name: {event:?}"));
                    };
                    match stack.pop() {
                        Some(top) if top == name.as_ref() => {}
                        Some(top) => {
                            return Err(format!(
                                "thread {thread}: span_exit '{name}' but '{top}' is open"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "thread {thread}: span_exit '{name}' with no open span"
                            ));
                        }
                    }
                    write_chrome_event(&mut out, &mut first, name, 'E', event.t_us, thread, &[]);
                }
                kind => {
                    let args: Vec<(&str, &Value)> =
                        event.fields.iter().map(|(n, v)| (n.as_ref(), v)).collect();
                    write_chrome_event(&mut out, &mut first, kind, 'i', event.t_us, thread, &args);
                }
            }
        }
        if !stack.is_empty() {
            return Err(format!("thread {thread}: unclosed spans {stack:?}"));
        }
    }
    out.push_str("\n  ]\n}\n");
    Ok(out)
}

/// Renders the snapshot's span profile as folded stacks, one line per
/// span path: `root;child;leaf <self_us>`.
///
/// Self time (total minus children) is emitted, so a flamegraph
/// renderer's re-accumulated frame widths equal the profile's `total_us`
/// at every node; zero-self paths (pure parents) are skipped. Lines are
/// sorted by path, matching the snapshot's span order.
pub fn folded_stacks(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    for span in &snapshot.spans {
        let self_us = snapshot.self_us(&span.path);
        if self_us == 0 {
            continue;
        }
        let _ = writeln!(out, "{} {}", span.path.join(";"), self_us);
    }
    out
}

/// [`folded_stacks`] over an already-parsed `profile.json` — the CLI
/// path, where no live snapshot exists.
pub fn folded_stacks_from_profile(doc: &crate::profile::ProfileDoc) -> String {
    let mut out = String::new();
    for span in &doc.spans {
        if span.self_us == 0 {
            continue;
        }
        let _ = writeln!(out, "{} {}", span.path.join(";"), span.self_us);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::profile::ProfileDoc;
    use ipcl_trace::{TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let tracer = Tracer::new(TraceConfig::enabled());
        {
            let _outer = tracer.span("solve");
            tracer.event("solver_restart", &[("conflicts", Value::U64(7))]);
            {
                let _inner = tracer.span("propagate");
            }
            let _other = tracer.span("analyze");
        }
        tracer.snapshot().unwrap()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_paired_begin_end() {
        let snapshot = sample_snapshot();
        let text = chrome_trace(&snapshot.events).expect("balanced stream");
        let doc = Json::parse(&text).expect("chrome trace is valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!(begins, 3);
        assert_eq!(begins, ends);
        let instant = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .expect("the restart event becomes an instant");
        assert_eq!(
            instant.get("name").unwrap().as_str(),
            Some("solver_restart")
        );
        assert_eq!(
            instant
                .get("args")
                .unwrap()
                .get("conflicts")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }

    #[test]
    fn chrome_trace_rejects_unbalanced_streams() {
        let mut events = sample_snapshot().events;
        let exit_at = events
            .iter()
            .position(|e| e.kind == "span_exit")
            .expect("has exits");
        events.remove(exit_at);
        assert!(chrome_trace(&events).is_err());
    }

    #[test]
    fn folded_stack_totals_equal_the_profile_totals() {
        let snapshot = sample_snapshot();
        let folded = folded_stacks(&snapshot);
        let total: u64 = folded
            .lines()
            .map(|line| line.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, snapshot.root_span_us());
        // Re-accumulating children under the root reproduces its total.
        let root_accumulated: u64 = folded
            .lines()
            .filter(|line| line.starts_with("solve"))
            .map(|line| line.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(
            root_accumulated,
            snapshot.span(&["solve"]).unwrap().total_us
        );
        // The profile-document path produces the same folded stacks.
        assert_eq!(
            folded_stacks_from_profile(&ProfileDoc::from_snapshot(&snapshot)),
            folded
        );
    }
}
