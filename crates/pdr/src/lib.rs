//! IC3 / property-directed reachability for sequential interlock
//! verification, with certified inductive invariants and a BMC/PDR
//! portfolio checker.
//!
//! The k-induction engine of `ipcl-bmc` proves a property only when some
//! small unrolling depth makes it inductive. Deep wait-state interactions —
//! a scoreboard entry marching through a long pipe before it can justify a
//! stall — defeat every small `k`, exactly the silicon-bound bug territory
//! of the paper's case study. This crate closes that gap:
//!
//! * [`check_property_pdr`] decides a [`SequentialProperty`] over an
//!   `ipcl-rtl` netlist with **no unrolling bound**, by growing a trailing
//!   sequence of frames over the incremental CDCL solver of `ipcl-sat`
//!   (per-frame activation literals, proof-obligation queue, SAT-based cube
//!   generalisation, clause propagation with fixpoint detection);
//! * every proof ships an explicit [`Certificate`] — the inductive
//!   invariant as clauses over the netlist's registers — which
//!   [`Certificate::validate`] re-checks with independent initiation,
//!   consecution and safety SAT queries, so a "proved" verdict is
//!   self-auditing rather than trusted;
//! * [`check_property_portfolio`] races BMC falsification against PDR proof
//!   on scoped threads with cooperative cancellation: buggy designs get
//!   BMC-speed (minimal) counterexamples, correct designs get unbounded
//!   proofs, whichever engine finishes first.
//!
//! The user-facing entry point is `ipcl_checker::check_netlist_sequential`
//! with `Engine::Pdr` or `Engine::Portfolio`.
//!
//! # Example
//!
//! ```
//! use ipcl_pdr::{check_property_pdr, deep::deep_pipeline, PdrOptions};
//! use ipcl_bmc::{check_property, BmcOptions, Latency, PropertyKind, SequentialProperty};
//!
//! // A sticky wait-state chain: correct from reset, but not k-inductive
//! // for any k ≤ depth − 2 …
//! let (spec, netlist) = deep_pipeline(8);
//! let property = SequentialProperty::for_stage(&spec, 0, PropertyKind::Performance,
//!     Latency::Combinational);
//! let bmc = check_property(&spec, &netlist, &property,
//!     &BmcOptions::with_depth(5)).unwrap();
//! assert!(!bmc.outcome.is_proved(), "k-induction is stuck below the chain depth");
//!
//! // … while PDR proves it outright, with a validated certificate.
//! let pdr = check_property_pdr(&spec, &netlist, &property,
//!     &PdrOptions::default()).unwrap();
//! assert!(pdr.outcome.is_proved());
//! assert!(pdr.validation.unwrap().ok());
//! ```

pub mod certificate;
pub mod deep;
pub mod engine;
pub mod parallel;
pub mod portfolio;

pub use certificate::{Certificate, CertificateCheck, StateLiteral};
pub use engine::{
    check_property_pdr, check_property_pdr_traced, check_property_pdr_with_cancel, PdrOptions,
    PdrOutcome, PdrResult, PdrStats,
};
pub use parallel::{
    check_property_pdr_parallel, check_property_pdr_parallel_traced, default_threads,
    ParallelPdrOptions,
};
pub use portfolio::{
    check_property_portfolio, check_property_portfolio_parallel,
    check_property_portfolio_parallel_traced, check_property_portfolio_parallel_with_cancel,
    check_property_portfolio_traced, check_property_portfolio_with_cancel, PortfolioResult,
    PortfolioWinner,
};

// Re-exported so callers can name the shared vocabulary without a direct
// `ipcl-bmc` dependency.
pub use ipcl_bmc::{BmcError, Counterexample, Latency, PropertyKind, SequentialProperty};

#[cfg(test)]
mod tests {
    use super::*;
    use deep::deep_pipeline;
    use ipcl_bmc::{check_property, BmcOptions, BmcOutcome};
    use ipcl_core::example::ExampleArch;
    use ipcl_core::FunctionalSpec;
    use ipcl_pipesim::BrokenVariant;
    use ipcl_synth::{
        synthesize_broken_interlock, synthesize_interlock, synthesize_interlock_with,
        SynthesisOptions,
    };

    fn spec() -> FunctionalSpec {
        ExampleArch::new().functional_spec()
    }

    #[test]
    fn pdr_proves_combinational_interlock_with_trivial_certificate() {
        let spec = spec();
        let synthesized = synthesize_interlock(&spec);
        for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
            let result = check_property_pdr(
                &spec,
                synthesized.netlist(),
                &property,
                &PdrOptions::default(),
            )
            .unwrap();
            assert!(result.outcome.is_proved(), "{}", property.name);
            let certificate = result.outcome.certificate().unwrap();
            assert!(
                certificate.is_trivial(),
                "stateless netlists need no invariant: {}",
                certificate.render()
            );
            assert!(result.validation.unwrap().ok());
        }
    }

    #[test]
    fn pdr_proves_registered_interlock_at_registered_latency() {
        let spec = spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        for property in SequentialProperty::both_directions(&spec, Latency::Registered) {
            let result = check_property_pdr(
                &spec,
                synthesized.netlist(),
                &property,
                &PdrOptions::default(),
            )
            .unwrap();
            assert!(
                result.outcome.is_proved(),
                "{}: {:?}",
                property.name,
                result.outcome
            );
            assert!(result.validation.unwrap().ok(), "{}", property.name);
        }
    }

    #[test]
    fn pdr_falsifies_wrong_reset_with_replayable_trace() {
        let spec = spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: false,
                ..Default::default()
            },
        );
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        let result = check_property_pdr(
            &spec,
            synthesized.netlist(),
            &property,
            &PdrOptions::default(),
        )
        .unwrap();
        let cex = result.outcome.counterexample().expect("wrong reset fails");
        let replay = cex.replay(&spec, synthesized.netlist(), &property).unwrap();
        assert!(replay.violation_reproduced, "{}", cex.render());
    }

    #[test]
    fn pdr_falsifies_forced_reset_chain_with_multi_cycle_trace() {
        // BadResetValues needs the obligation machinery: the bug is armed by
        // a register chain, so the violation lies a transition away from
        // reset and the trace is reconstructed from the obligation chain.
        let spec = spec();
        let broken =
            synthesize_broken_interlock(&spec, BrokenVariant::BadResetValues { cycles: 2 });
        let mut falsified = 0;
        for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
            let result =
                check_property_pdr(&spec, broken.netlist(), &property, &PdrOptions::default())
                    .unwrap();
            if let Some(cex) = result.outcome.counterexample() {
                falsified += 1;
                let replay = cex.replay(&spec, broken.netlist(), &property).unwrap();
                assert!(replay.violation_reproduced, "{}", cex.render());
            }
        }
        assert!(falsified > 0, "forced flags must miss required stalls");
    }

    #[test]
    fn pdr_proves_deep_chain_where_k_induction_is_stuck() {
        // The ISSUE acceptance criterion: a correct-interlock property where
        // k-induction fails for all k ≤ 10 but PDR proves, with a validated
        // non-trivial certificate.
        let (spec, netlist) = deep_pipeline(13);
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        let bmc = check_property(&spec, &netlist, &property, &BmcOptions::with_depth(10)).unwrap();
        assert!(
            matches!(bmc.outcome, BmcOutcome::Unknown { .. }),
            "k-induction must be stuck for every k ≤ 10, got {:?}",
            bmc.outcome
        );

        let pdr = check_property_pdr(&spec, &netlist, &property, &PdrOptions::default()).unwrap();
        let PdrOutcome::Proved { certificate, .. } = &pdr.outcome else {
            panic!("PDR must prove the deep chain, got {:?}", pdr.outcome);
        };
        assert!(!certificate.is_trivial(), "the proof needs real lemmas");
        let check = certificate.validate(&spec, &netlist, &property).unwrap();
        assert!(check.ok(), "{check}");
        assert_eq!(pdr.validation, Some(check));
    }

    #[test]
    fn generalization_ablation_agrees_and_drops_literals() {
        let (spec, netlist) = deep_pipeline(7);
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        let with = check_property_pdr(&spec, &netlist, &property, &PdrOptions::default()).unwrap();
        let without = check_property_pdr(
            &spec,
            &netlist,
            &property,
            &PdrOptions {
                generalize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.outcome.is_proved());
        assert!(without.outcome.is_proved());
        assert!(with.stats.generalization_drops > 0);
        assert_eq!(without.stats.generalization_drops, 0);
    }

    #[test]
    fn portfolio_returns_bmc_trace_on_buggy_and_pdr_proof_on_deep() {
        let spec = spec();
        let broken = synthesize_broken_interlock(&spec, BrokenVariant::IgnoreScoreboard);
        let mut falsified = 0;
        for property in SequentialProperty::both_directions(&spec, Latency::Combinational) {
            let result = check_property_portfolio(
                &spec,
                broken.netlist(),
                &property,
                &BmcOptions::default(),
                &PdrOptions::default(),
            )
            .unwrap();
            if let Some(cex) = result.counterexample() {
                falsified += 1;
                let replay = cex.replay(&spec, broken.netlist(), &property).unwrap();
                assert!(replay.violation_reproduced, "{}", cex.render());
            } else {
                assert!(result.is_proved(), "{}: no verdict", property.name);
            }
        }
        assert!(falsified > 0);

        // On the deep chain only PDR can prove: the portfolio must return
        // its certificate even though the BMC racer gives up.
        let (deep_spec, deep_netlist) = deep_pipeline(12);
        let property = SequentialProperty::for_stage(
            &deep_spec,
            0,
            PropertyKind::Performance,
            Latency::Combinational,
        );
        let result = check_property_portfolio(
            &deep_spec,
            &deep_netlist,
            &property,
            &BmcOptions::with_depth(6),
            &PdrOptions::default(),
        )
        .unwrap();
        assert_eq!(result.winner, Some(PortfolioWinner::Pdr));
        assert!(result.is_proved());
        assert!(!result.certificate().unwrap().is_trivial());
    }

    #[test]
    fn missing_moe_signals_are_reported() {
        let spec = spec();
        let empty = ipcl_bmc::Netlist::new("empty");
        let property = SequentialProperty::for_stage(
            &spec,
            0,
            PropertyKind::Functional,
            Latency::Combinational,
        );
        let err = check_property_pdr(&spec, &empty, &property, &PdrOptions::default()).unwrap_err();
        assert!(matches!(err, BmcError::MissingSignals(ref names) if names.len() == 1));
    }
}
