//! The parallel proof engine: a work-stealing scheduler over PDR proof
//! obligations, with a lock-free learned-clause exchange and
//! cube-and-conquer bad-state queries — deterministic by construction.
//!
//! ## Why the verdicts stay bit-identical
//!
//! A SAT solver's *verdict bits* (SAT/UNSAT) are semantic: they depend only
//! on the formula, never on solver state, heuristics, or which sibling
//! solver answers. Its *models* are not. The scheduler exploits exactly
//! this split:
//!
//! * **Workers answer only bits.** Each worker owns a private
//!   [`FrameCtx`] (same deterministic base encoding as the master's, own
//!   frame activation literals) and answers consecution queries plus full
//!   cube generalisation — which consumes only UNSAT bits — against a
//!   per-round snapshot of the committed lemma log. Worker models are
//!   discarded.
//! * **The master computes every model.** Bad-state cubes, counterexample
//!   predecessors and their step inputs come from the master's *canonical*
//!   context, whose query sequence is a pure function of the round
//!   trajectory. The canonical solver never imports foreign clauses, so
//!   its models cannot depend on worker interleaving.
//! * **Merges apply in a fixed order.** Obligation batches are popped from
//!   the canonical min-heap — same-frame obligations only, so a SAT parent
//!   is never co-scheduled with its own predecessor chain — and results
//!   merge in batch order. A split bad query reduces by fixed order (any
//!   satisfiable branch ⇒ one canonical full re-solve for the model).
//!   Singleton batches and clause propagation run inline on the canonical
//!   context, reproducing the sequential engine's query sequence exactly.
//!   All scheduling knobs ([`ParallelPdrOptions::batch`],
//!   [`ParallelPdrOptions::split_registers`]) are independent of the
//!   worker count.
//!
//! Consequently the round trajectory — and with it verdicts, traces,
//! certificates and all canonical statistics — is identical for every
//! worker count and every interleaving. The only run-to-run variance is
//! *attribution*: which worker solved which task, and the solver-internal
//! counters that follow from it.
//!
//! ## One round
//!
//! ```text
//!        master (worker 0)                workers 1..W-1
//!   ┌────────────────────────┐       ┌──────────────────────┐
//!   │ pop ≤ batch obligations│       │  wait (start barrier)│
//!   │ publish round + tasks  │──────▶│  replay lemma log    │
//!   ├─ start barrier ────────┤       │  import/export       │
//!   │ replay/export (w0 ctx) │       │   exchange clauses   │
//!   │ pull own deque, steal  │◀─────▶│  pull deque, steal   │
//!   ├─ end barrier ──────────┤       │  wait (end barrier)  │
//!   │ merge results in       │       └──────────────────────┘
//!   │  canonical order,      │
//!   │  re-solve SAT results  │
//!   │  on the canonical ctx  │
//!   └────────────────────────┘
//! ```
//!
//! Worker-SAT obligations are *deferred*: if the merge already committed a
//! lemma at frame ≥ `k − 1` this round the verdict may be stale and the
//! obligation is requeued; otherwise the master re-solves the same query
//! canonically for the predecessor model. UNSAT verdicts (and their
//! generalisations) can never be invalidated — frames only strengthen.
//!
//! The learned-clause exchange is a bounded append-only ring of
//! [`OnceLock`] slots: publishing reserves a slot with one atomic
//! fetch-add, readers walk contiguously initialised slots. Only clauses
//! whose variables all lie below [`FrameCtx::base_bound`] are published —
//! those are implied by the shared base encoding alone (frame activation
//! literals are never resolvable away), hence sound in every sibling.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};

use ipcl_bmc::{BmcError, Counterexample, Netlist, SequentialProperty};
use ipcl_core::FunctionalSpec;
use ipcl_expr::Lit;
use ipcl_sat::SatResult;
use ipcl_trace::{Heartbeat, MetricSink, Tracer, Value};

use crate::certificate::Certificate;
use crate::engine::{Cube, FrameCtx, FrameLemma, PdrOptions, PdrOutcome, PdrResult, PdrStats};

/// Publisher id of the master's canonical solver on the exchange (workers
/// import their own published clauses back otherwise).
const MASTER: usize = usize::MAX;

/// Capacity of the learned-clause exchange ring; overflow is counted and
/// dropped (sharing is an accelerator, not a correctness mechanism).
const EXCHANGE_CAPACITY: usize = 4096;

/// Knobs of one parallel PDR run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelPdrOptions {
    /// The underlying PDR options (solver config, generalisation,
    /// certificate validation, frame budget).
    pub base: PdrOptions,
    /// Worker count `W ≥ 1`. Worker 0 is the master thread; `W − 1`
    /// additional scoped threads are spawned. `1` runs the identical round
    /// algorithm with every task solved inline — same verdicts, traces and
    /// certificates as any other worker count.
    pub threads: usize,
    /// Maximum proof obligations dispatched per round. Fixed independently
    /// of `threads` so the round trajectory is too.
    pub batch: usize,
    /// Cube-and-conquer split width of top-frame bad-state queries: the
    /// query splits into `2^split_registers` variable-split branch cubes
    /// over the first registers, solved concurrently and merged by fixed
    /// reduction order (any satisfiable branch ⇒ one canonical full
    /// re-solve for the model). `0` (the default) disables splitting: the
    /// branch bits are pure overhead at one worker, so splitting is an
    /// opt-in for many-core hosts with slow bad-state queries.
    pub split_registers: u32,
    /// LBD bound of the learned-clause exchange (clauses this useful get
    /// published to sibling workers). `0` disables the exchange.
    pub share_max_lbd: u32,
}

impl Default for ParallelPdrOptions {
    fn default() -> Self {
        ParallelPdrOptions {
            base: PdrOptions::default(),
            threads: default_threads(),
            batch: 16,
            split_registers: 0,
            share_max_lbd: 4,
        }
    }
}

/// The default worker count: `std::thread::available_parallelism()`, or 1
/// when the platform cannot tell.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

// ---- shared state -------------------------------------------------------

/// The sharable view of the committed frame lemmas: an append-only log of
/// [`FrameLemma`]s in canonical commit order. The master appends during
/// merges; each worker replays the suffix past its cursor at round start,
/// reproducing the master's frame state bit-identically
/// ([`FrameCtx::apply_lemma`]).
pub(crate) struct FrameView {
    log: Mutex<Vec<FrameLemma>>,
}

impl FrameView {
    fn new() -> Self {
        FrameView {
            log: Mutex::new(Vec::new()),
        }
    }

    fn commit(&self, lemma: FrameLemma) {
        self.log.lock().expect("frame log lock").push(lemma);
    }

    fn since(&self, cursor: usize) -> Vec<FrameLemma> {
        self.log.lock().expect("frame log lock")[cursor..].to_vec()
    }
}

/// One clause on the exchange ring.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ExchangeClause {
    /// Publishing worker (or [`MASTER`]); used to skip self-imports.
    pub(crate) from: usize,
    pub(crate) literals: Vec<Lit>,
    pub(crate) lbd: u32,
}

/// The lock-free learned-clause exchange: a bounded append-only ring.
/// `publish` reserves a slot with one `fetch_add` and initialises it;
/// readers walk contiguously initialised slots from their own cursor, so a
/// reservation that has not completed merely pauses readers at that slot
/// until the next drain.
pub(crate) struct ExchangeBuffer {
    slots: Box<[OnceLock<ExchangeClause>]>,
    reserved: AtomicUsize,
    dropped: AtomicUsize,
}

impl ExchangeBuffer {
    pub(crate) fn new(capacity: usize) -> Self {
        ExchangeBuffer {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            reserved: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Publishes one clause; returns whether it was stored (full ring
    /// drops, and counts the drop).
    pub(crate) fn publish(&self, clause: ExchangeClause) -> bool {
        let index = self.reserved.fetch_add(1, Ordering::Relaxed);
        if index >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.slots[index]
            .set(clause)
            .expect("a reserved slot is written exactly once");
        true
    }

    /// Reads every initialised clause past `cursor`, advancing it.
    pub(crate) fn drain_from(&self, cursor: &mut usize) -> Vec<ExchangeClause> {
        let mut fresh = Vec::new();
        while *cursor < self.slots.len() {
            match self.slots[*cursor].get() {
                Some(clause) => {
                    fresh.push(clause.clone());
                    *cursor += 1;
                }
                None => break,
            }
        }
        fresh
    }

    /// Clauses dropped on a full ring.
    pub(crate) fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One unit of round work. Both kinds are *pure-bit* queries: the answer
/// is semantically determined by the shared frame snapshot, so any worker
/// may compute it.
#[derive(Clone, Debug)]
enum Task {
    /// Consecution of an obligation cube at `frame` and, when UNSAT, its
    /// full generalisation (which consumes only UNSAT bits).
    Obligation { frame: usize, cube: Cube },
    /// One branch of a split top-frame bad-state query: bad ∧ branch cube.
    BadBranch { frame: usize, cube: Cube },
}

#[derive(Clone, Debug)]
enum TaskVerdict {
    /// `Some(generalised)` when consecution was UNSAT, `None` on SAT (the
    /// worker's model is discarded; the master re-derives it canonically).
    Obligation {
        blocked: Option<Cube>,
    },
    BadBranch {
        reachable: bool,
    },
}

enum RoundKind {
    Solve,
    Shutdown,
}

/// One scheduling round: a fixed task list, per-worker deques of task
/// slots, and one result slot per task.
struct Round {
    kind: RoundKind,
    /// Top frame of the canonical trailing sequence; workers open frames
    /// up to it before solving.
    top: usize,
    tasks: Vec<Task>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<OnceLock<TaskVerdict>>,
}

impl Round {
    fn shutdown() -> Round {
        Round {
            kind: RoundKind::Shutdown,
            top: 0,
            tasks: Vec::new(),
            deques: Vec::new(),
            results: Vec::new(),
        }
    }
}

/// Per-worker counters folded into [`PdrStats`] at shutdown.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerTally {
    solve_calls: u64,
    generalization_drops: u64,
    conflicts: u64,
    propagations: u64,
    imported: u64,
    exported: u64,
}

struct Shared<'a> {
    options: ParallelPdrOptions,
    spec: &'a FunctionalSpec,
    netlist: &'a Netlist,
    property: &'a SequentialProperty,
    tracer: Tracer,
    start: Barrier,
    end: Barrier,
    round: Mutex<Option<Arc<Round>>>,
    view: FrameView,
    exchange: ExchangeBuffer,
    tallies: Mutex<Vec<WorkerTally>>,
}

// ---- workers ------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Pulls the next task slot: own deque front first, then steal from the
/// back of a random victim's deque.
fn next_task(round: &Round, me: usize, rng: &mut u64) -> Option<usize> {
    if let Some(slot) = round.deques[me].lock().expect("deque lock").pop_front() {
        return Some(slot);
    }
    let victims = round.deques.len();
    let from = (xorshift(rng) as usize) % victims;
    for offset in 0..victims {
        let victim = (from + offset) % victims;
        if victim == me {
            continue;
        }
        if let Some(slot) = round.deques[victim].lock().expect("deque lock").pop_back() {
            return Some(slot);
        }
    }
    None
}

/// Per-worker profile span names (static strings; paths beyond the table
/// share the generic one).
fn worker_span(w: usize) -> &'static str {
    const NAMES: [&str; 8] = [
        "pdr.w0", "pdr.w1", "pdr.w2", "pdr.w3", "pdr.w4", "pdr.w5", "pdr.w6", "pdr.w7",
    ];
    NAMES.get(w).copied().unwrap_or("pdr.worker")
}

/// The worker half of one participant: a private [`FrameCtx`] plus the
/// cursors tracking how much of the shared state it has replayed. Worker 0
/// lives on the master thread and runs the same code between the barriers.
struct WorkerState {
    w: usize,
    ctx: FrameCtx,
    log_cursor: usize,
    exchange_cursor: usize,
    rng: u64,
    heartbeat: Heartbeat,
    solved: u64,
}

impl WorkerState {
    fn new(shared: &Shared<'_>, w: usize) -> WorkerState {
        let mut ctx = FrameCtx::new(
            shared.spec,
            shared.netlist,
            shared.property,
            shared.options.base.solver,
            &shared.tracer,
        )
        .expect("sibling encoding mirrors the master's, which elaborated");
        if shared.options.threads > 1 && shared.options.share_max_lbd > 0 {
            ctx.solver.set_clause_sharing(shared.options.share_max_lbd);
        }
        WorkerState {
            w,
            ctx,
            log_cursor: 0,
            exchange_cursor: 0,
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((w as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407)),
            heartbeat: Heartbeat::every_ms(ipcl_sat::HEARTBEAT_MS),
            solved: 0,
        }
    }

    /// Syncs to the round snapshot and solves tasks until every deque is
    /// dry.
    fn run_round(&mut self, shared: &Shared<'_>, round: &Round) {
        let _span = shared.tracer.span_fast(worker_span(self.w));
        // Replay the committed lemma suffix: after this the private frame
        // state equals the canonical one at round start.
        let fresh = shared.view.since(self.log_cursor);
        self.log_cursor += fresh.len();
        for lemma in &fresh {
            self.ctx.apply_lemma(lemma);
        }
        while self.ctx.top() < round.top {
            self.ctx.push_frame();
        }
        // Clause exchange: import siblings' publications, publish own.
        if shared.options.threads > 1 && shared.options.share_max_lbd > 0 {
            for clause in shared.exchange.drain_from(&mut self.exchange_cursor) {
                if clause.from != self.w {
                    self.ctx
                        .solver
                        .import_clause(clause.literals.iter().copied(), clause.lbd);
                }
            }
            let base_bound = self.ctx.base_bound;
            for (literals, lbd) in self.ctx.solver.take_shared() {
                if literals.iter().all(|lit| lit.var() < base_bound) {
                    shared.exchange.publish(ExchangeClause {
                        from: self.w,
                        literals,
                        lbd,
                    });
                }
            }
        }
        while let Some(slot) = next_task(round, self.w, &mut self.rng) {
            let verdict = self.solve_task(&round.tasks[slot], &shared.options);
            self.solved += 1;
            round.results[slot]
                .set(verdict)
                .expect("each task slot is claimed by exactly one worker");
            self.emit_heartbeat(shared, round);
        }
    }

    fn solve_task(&mut self, task: &Task, options: &ParallelPdrOptions) -> TaskVerdict {
        match task {
            Task::Obligation { frame, cube } => match self.ctx.consecution(cube, *frame) {
                SatResult::Unsat => {
                    let blocked = if options.base.generalize {
                        self.ctx.generalize(cube.clone(), *frame)
                    } else {
                        cube.clone()
                    };
                    TaskVerdict::Obligation {
                        blocked: Some(blocked),
                    }
                }
                SatResult::Sat(_) => TaskVerdict::Obligation { blocked: None },
            },
            Task::BadBranch { frame, cube } => {
                let mut assumptions = self.ctx.frame_assumptions(*frame);
                assumptions.push(self.ctx.bad);
                assumptions.extend(cube.iter().map(|&entry| self.ctx.cube_lit(entry, false)));
                TaskVerdict::BadBranch {
                    reachable: self.ctx.solve(&assumptions).is_sat(),
                }
            }
        }
    }

    /// Rate-limited per-worker live progress: remaining own queue, tasks
    /// solved, clauses exchanged.
    fn emit_heartbeat(&mut self, shared: &Shared<'_>, round: &Round) {
        if !self.heartbeat.due(&shared.tracer) {
            return;
        }
        let queue = round.deques[self.w].lock().expect("deque lock").len();
        let stats = self.ctx.solver.stats();
        shared.tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("queue", Value::U64(queue as u64)),
                ("solved", Value::U64(self.solved)),
                ("imported", Value::U64(stats.imported_clauses)),
                ("exported", Value::U64(stats.exported_clauses)),
            ],
        );
    }

    fn tally(&self) -> WorkerTally {
        let stats = self.ctx.solver.stats();
        WorkerTally {
            solve_calls: self.ctx.solve_calls,
            generalization_drops: self.ctx.generalization_drops,
            conflicts: stats.conflicts,
            propagations: stats.propagations,
            imported: stats.imported_clauses,
            exported: stats.exported_clauses,
        }
    }
}

/// A spawned worker's life: wait for a round, sync, solve, repeat — until
/// the shutdown round.
fn worker_thread(shared: &Shared<'_>, w: usize) {
    ipcl_trace::set_worker(Some(w as u64));
    let mut state = WorkerState::new(shared, w);
    loop {
        shared.start.wait();
        let round = shared
            .round
            .lock()
            .expect("round slot lock")
            .clone()
            .expect("the master publishes before the start barrier");
        if matches!(round.kind, RoundKind::Shutdown) {
            break;
        }
        state.run_round(shared, &round);
        shared.end.wait();
    }
    shared
        .tallies
        .lock()
        .expect("tally lock")
        .push(state.tally());
    ipcl_trace::set_worker(None);
}

// ---- master -------------------------------------------------------------

struct Obligation {
    cube: Cube,
    parent: Option<usize>,
    step_inputs: BTreeMap<String, bool>,
}

enum BlockOutcome {
    Blocked,
    Counterexample(Counterexample),
    Cancelled,
}

struct ParallelPdr<'a, 'b> {
    shared: &'a Shared<'b>,
    /// The canonical context: every model-producing query runs here, in an
    /// order that is a pure function of the round trajectory. Never
    /// imports foreign clauses.
    canon: FrameCtx,
    /// The master's worker half (worker 0) — participates in every round's
    /// task solving alongside the spawned workers.
    w0: WorkerState,
    stats: PdrStats,
    heartbeat: Heartbeat,
}

impl<'a, 'b> ParallelPdr<'a, 'b> {
    /// Publishes a round, participates as worker 0, and returns it with
    /// all results filled in.
    fn dispatch(&mut self, tasks: Vec<Task>) -> Arc<Round> {
        // Export the canonical solver's share-queue first: its lemmas lie
        // on the canonical trajectory and are prime sharing candidates.
        // (Draining is deterministic bookkeeping; it cannot perturb the
        // canonical search.)
        if self.shared.options.threads > 1 && self.shared.options.share_max_lbd > 0 {
            let base_bound = self.canon.base_bound;
            for (literals, lbd) in self.canon.solver.take_shared() {
                if literals.iter().all(|lit| lit.var() < base_bound) {
                    self.shared.exchange.publish(ExchangeClause {
                        from: MASTER,
                        literals,
                        lbd,
                    });
                }
            }
        }
        let workers = self.shared.options.threads;
        let mut deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for slot in 0..tasks.len() {
            deques[slot % workers]
                .get_mut()
                .expect("deque lock")
                .push_back(slot);
        }
        let results = (0..tasks.len()).map(|_| OnceLock::new()).collect();
        let round = Arc::new(Round {
            kind: RoundKind::Solve,
            top: self.canon.top(),
            tasks,
            deques,
            results,
        });
        *self.shared.round.lock().expect("round slot lock") = Some(Arc::clone(&round));
        self.shared.start.wait();
        self.w0.run_round(self.shared, &round);
        self.shared.end.wait();
        round
    }

    /// Commits one lemma: canonical frame state, then the shared log (the
    /// workers replay it at their next round start).
    fn commit(&mut self, cube: Cube, frame: usize, promoted_from: Option<usize>) {
        let lemma = FrameLemma {
            frame,
            cube,
            promoted_from,
        };
        self.canon.apply_lemma(&lemma);
        self.shared.view.commit(lemma);
    }

    /// The top-frame bad-state query, cube-and-conquer style: split into
    /// `2^split_registers` branch cubes solved concurrently as pure bits;
    /// the lowest satisfiable branch wins (fixed reduction order) and the
    /// master re-solves under that branch for the canonical model.
    fn solve_bad(&mut self) -> SatResult {
        let top = self.canon.top();
        let splits = (self.shared.options.split_registers as usize).min(self.canon.regs.len());
        let branches = 1usize << splits;
        if branches <= 1 {
            let mut assumptions = self.canon.frame_assumptions(top);
            assumptions.push(self.canon.bad);
            return self.canon.solve(&assumptions);
        }
        let branch_cube = |branch: usize| -> Cube {
            (0..splits)
                .map(|register| (register, (branch >> register) & 1 == 1))
                .collect()
        };
        let tasks = (0..branches)
            .map(|branch| Task::BadBranch {
                frame: top,
                cube: branch_cube(branch),
            })
            .collect();
        let round = self.dispatch(tasks);
        let reachable = (0..branches).any(|branch| {
            matches!(
                round.results[branch].get(),
                Some(TaskVerdict::BadBranch { reachable: true })
            )
        });
        if !reachable {
            return SatResult::Unsat;
        }
        // The branch cubes partition the state space, so the full query is
        // satisfiable iff some branch is. Re-solve it *unguided* on the
        // canonical context: the model then comes from the same query the
        // sequential engine poses, keeping the root-cube trajectory (and
        // so lemma quality) on par with sequential search.
        let mut assumptions = self.canon.frame_assumptions(top);
        assumptions.push(self.canon.bad);
        let result = self.canon.solve(&assumptions);
        debug_assert!(
            result.is_sat(),
            "a satisfiable branch stays satisfiable canonically"
        );
        result
    }

    fn note_push(&mut self, frame: usize, queue_len: usize) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(queue_len);
        self.shared.tracer.event(
            "pdr_obligation",
            &[
                ("action", Value::from("push")),
                ("frame", Value::U64(frame as u64)),
                ("queue", Value::U64(queue_len as u64)),
            ],
        );
    }

    fn note_pop(&mut self, frame: usize, queue_len: usize) {
        self.stats.obligations += 1;
        if frame >= self.stats.obligations_per_frame.len() {
            self.stats.obligations_per_frame.resize(frame + 1, 0);
        }
        self.stats.obligations_per_frame[frame] += 1;
        self.shared.tracer.event(
            "pdr_obligation",
            &[
                ("action", Value::from("pop")),
                ("frame", Value::U64(frame as u64)),
                ("queue", Value::U64(queue_len as u64)),
            ],
        );
        self.emit_heartbeat(frame, queue_len);
    }

    fn emit_heartbeat(&mut self, frame: usize, queue_len: usize) {
        if !self.heartbeat.due(&self.shared.tracer) {
            return;
        }
        self.shared.tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("frame", Value::U64(frame as u64)),
                ("top_frame", Value::U64(self.canon.top() as u64)),
                ("queue", Value::U64(queue_len as u64)),
                ("obligations", Value::U64(self.stats.obligations)),
                ("clauses", Value::U64(self.canon.clauses as u64)),
                ("threads", Value::U64(self.shared.options.threads as u64)),
            ],
        );
    }

    fn trace(
        &self,
        arena: &[Obligation],
        index: usize,
        reset_step: Option<BTreeMap<String, bool>>,
        window: &[BTreeMap<String, bool>],
    ) -> Counterexample {
        let mut frames = Vec::new();
        frames.extend(reset_step);
        let mut current = index;
        while let Some(parent) = arena[current].parent {
            frames.push(arena[current].step_inputs.clone());
            current = parent;
        }
        frames.extend(window.iter().cloned());
        Counterexample {
            property: self.shared.property.name.clone(),
            violation_frame: frames.len() - 1,
            frames,
        }
    }

    /// Blocks the bad cube at the top frame by batched obligation rounds.
    /// Mirrors the sequential `block` loop, but discharges up to
    /// [`ParallelPdrOptions::batch`] heap-ordered obligations per round.
    fn block(
        &mut self,
        root: Cube,
        window: Vec<BTreeMap<String, bool>>,
        cancel: Option<&AtomicBool>,
    ) -> BlockOutcome {
        let top = self.canon.top();
        let mut arena: Vec<Obligation> = vec![Obligation {
            cube: root,
            parent: None,
            step_inputs: BTreeMap::new(),
        }];
        let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        queue.push(Reverse((top, 0)));
        self.note_push(top, queue.len());

        while !queue.is_empty() {
            if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                return BlockOutcome::Cancelled;
            }
            // Compose the round's batch in canonical heap order, but only
            // from obligations at ONE frame: co-scheduling a SAT parent
            // with its own (deeper) predecessor chain would re-attack every
            // ancestor each round, inflating the trajectory quadratically.
            // Same-frame siblings are the genuinely independent work.
            let mut batch: Vec<(usize, usize)> = Vec::new();
            let mut tasks: Vec<Task> = Vec::new();
            while batch.len() < self.shared.options.batch.max(1) {
                if let (Some(&(frame, _)), Some(&Reverse((k, _)))) = (batch.first(), queue.peek()) {
                    if k != frame {
                        break;
                    }
                }
                let Some(Reverse((k, index))) = queue.pop() else {
                    break;
                };
                self.note_pop(k, queue.len());
                if k == 0 {
                    // Defensive: frame-0 obligations are initial states and
                    // are caught at creation time by the initiation check.
                    return BlockOutcome::Counterexample(self.trace(&arena, index, None, &window));
                }
                let cube = arena[index].cube.clone();
                if self.canon.is_blocked(&cube, k) {
                    if k < top {
                        queue.push(Reverse((k + 1, index)));
                        self.note_push(k + 1, queue.len());
                    }
                    continue;
                }
                batch.push((k, index));
                tasks.push(Task::Obligation { frame: k, cube });
            }
            if batch.is_empty() {
                continue;
            }
            // A single-obligation round has no parallelism to harvest:
            // solve it inline on the canonical context (bits AND model in
            // one query, generalisation included) — exactly the sequential
            // engine's step. Whether a round is singleton is a trajectory
            // property, identical at every worker count.
            if batch.len() == 1 {
                let (k, index) = batch[0];
                match self.block_one_canonical(&mut arena, &mut queue, k, index, top, &window) {
                    None => continue,
                    Some(outcome) => return outcome,
                }
            }
            let round = self.dispatch(tasks);

            // Merge in batch (canonical) order. `max_committed` tracks the
            // highest frame strengthened *this round*: a worker-SAT verdict
            // at frame k is stale iff a commit landed at ≥ k − 1 since its
            // snapshot.
            let mut max_committed: Option<usize> = None;
            for (slot, &(k, index)) in batch.iter().enumerate() {
                let verdict = round.results[slot]
                    .get()
                    .expect("every dispatched task is solved before the end barrier");
                // An earlier slot's commit this round may already block this
                // cube — exactly the case the sequential loop prunes with
                // its pre-solve `is_blocked` check. Mirror it at merge time
                // so speculative siblings don't pile up redundant lemmas.
                if self.canon.is_blocked(&arena[index].cube, k) {
                    if k < top {
                        queue.push(Reverse((k + 1, index)));
                        self.note_push(k + 1, queue.len());
                    }
                    continue;
                }
                match verdict {
                    TaskVerdict::Obligation {
                        blocked: Some(generalized),
                    } => {
                        // UNSAT survives any strengthening, but the worker
                        // generalised against the round snapshot. Re-run
                        // the drop loop on the (already short) lemma
                        // against the freshest canonical state — earlier
                        // slots' commits often let further literals go,
                        // recovering sequential lemma quality.
                        let generalized = self.canon.generalize(generalized.clone(), k);
                        self.commit(generalized, k, None);
                        max_committed = Some(max_committed.unwrap_or(0).max(k));
                        if k < top {
                            queue.push(Reverse((k + 1, index)));
                            self.note_push(k + 1, queue.len());
                        }
                    }
                    TaskVerdict::Obligation { blocked: None } => {
                        if max_committed.is_some_and(|frame| frame + 1 >= k) {
                            // Deferred: the snapshot this SAT was computed
                            // against has been strengthened at ≥ k − 1;
                            // requeue and re-dispatch next round.
                            queue.push(Reverse((k, index)));
                            self.note_push(k, queue.len());
                            continue;
                        }
                        // Still valid: re-solve canonically for the
                        // predecessor model (worker models are discarded by
                        // design — this is the determinism boundary).
                        let cube = arena[index].cube.clone();
                        match self.canon.consecution(&cube, k) {
                            SatResult::Sat(model) => {
                                let predecessor = self.canon.state_cube(&model);
                                let step_inputs =
                                    self.canon.enc.decode_frame(self.shared.spec, &model, 0);
                                if self.canon.intersects_init(&predecessor) {
                                    return BlockOutcome::Counterexample(self.trace(
                                        &arena,
                                        index,
                                        Some(step_inputs),
                                        &window,
                                    ));
                                }
                                arena.push(Obligation {
                                    cube: predecessor,
                                    parent: Some(index),
                                    step_inputs,
                                });
                                queue.push(Reverse((k - 1, arena.len() - 1)));
                                queue.push(Reverse((k, index)));
                                self.note_push(k - 1, queue.len() - 1);
                                self.note_push(k, queue.len());
                            }
                            SatResult::Unsat => {
                                // Semantically impossible (no strengthening
                                // at ≥ k − 1 intervened); requeue rather
                                // than trust a diverged verdict.
                                debug_assert!(false, "worker SAT contradicted canonically");
                                queue.push(Reverse((k, index)));
                                self.note_push(k, queue.len());
                            }
                        }
                    }
                    _ => unreachable!("obligation rounds produce obligation verdicts"),
                }
            }
        }
        BlockOutcome::Blocked
    }

    /// Discharges a singleton obligation round inline on the canonical
    /// context — the sequential engine's step, verbatim: one consecution
    /// query yields bits and model together, and generalisation runs
    /// against the freshest frame state. Returns `Some` to unwind with a
    /// terminal outcome, `None` to continue the round loop.
    fn block_one_canonical(
        &mut self,
        arena: &mut Vec<Obligation>,
        queue: &mut BinaryHeap<Reverse<(usize, usize)>>,
        k: usize,
        index: usize,
        top: usize,
        window: &[BTreeMap<String, bool>],
    ) -> Option<BlockOutcome> {
        let cube = arena[index].cube.clone();
        match self.canon.consecution(&cube, k) {
            SatResult::Unsat => {
                let generalized = self.canon.generalize(cube, k);
                self.commit(generalized, k, None);
                if k < top {
                    queue.push(Reverse((k + 1, index)));
                    self.note_push(k + 1, queue.len());
                }
                None
            }
            SatResult::Sat(model) => {
                let predecessor = self.canon.state_cube(&model);
                let step_inputs = self.canon.enc.decode_frame(self.shared.spec, &model, 0);
                if self.canon.intersects_init(&predecessor) {
                    return Some(BlockOutcome::Counterexample(self.trace(
                        arena,
                        index,
                        Some(step_inputs),
                        window,
                    )));
                }
                arena.push(Obligation {
                    cube: predecessor,
                    parent: Some(index),
                    step_inputs,
                });
                queue.push(Reverse((k - 1, arena.len() - 1)));
                queue.push(Reverse((k, index)));
                self.note_push(k - 1, queue.len() - 1);
                self.note_push(k, queue.len());
                None
            }
        }
    }

    /// One clause-propagation pass, run entirely on the canonical context
    /// in the sequential engine's query order. Propagation is deliberately
    /// *not* dispatched to workers: the promotion bits themselves are
    /// semantic, but the clauses the canonical solver learns from these
    /// queries keep its later *models* on the sequential trajectory —
    /// farming them out measurably inflates the search (extra frames)
    /// by more than the ~30% profile share propagation could ever win
    /// back in parallel.
    fn propagate(&mut self) -> Option<usize> {
        let _span = self.shared.tracer.span("pdr.propagate");
        let top = self.canon.top();
        for k in 1..top {
            let cubes: Vec<Cube> = self.canon.frame_cubes[k].clone();
            for cube in cubes {
                // F_k ∧ T ∧ cube' unsatisfiable ⇒ ¬cube also holds at k+1.
                let mut assumptions = self.canon.frame_assumptions(k);
                assumptions.extend(cube.iter().map(|&entry| self.canon.cube_lit(entry, true)));
                if self.canon.solve(&assumptions) == SatResult::Unsat {
                    self.commit(cube, k + 1, Some(k));
                }
            }
            if self.canon.frame_cubes[k].is_empty() {
                // F_k = F_{k+1}: the trailing sequence closed.
                return Some(k);
            }
        }
        None
    }

    fn run(&mut self, cancel: Option<&AtomicBool>) -> PdrOutcome {
        let property = self.shared.property;
        // Stateless netlist: the single (empty) state is initial, so the
        // property is the one-window combinational query — no rounds.
        if self.canon.regs.is_empty() {
            let bad = self.canon.bad;
            return match self.canon.solve(&[bad]) {
                SatResult::Unsat => PdrOutcome::Proved {
                    certificate: Certificate {
                        property: property.name.clone(),
                        clauses: Vec::new(),
                    },
                    fixpoint_frame: 0,
                },
                SatResult::Sat(model) => {
                    let frames = self.canon.window(self.shared.spec, property, &model);
                    PdrOutcome::Falsified(Counterexample {
                        property: property.name.clone(),
                        violation_frame: frames.len() - 1,
                        frames,
                    })
                }
            };
        }

        self.canon.push_frame(); // F_1
        loop {
            if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                return PdrOutcome::Unknown {
                    frames_explored: self.canon.top(),
                };
            }
            // Block every bad state reachable within the current bound.
            loop {
                match self.solve_bad() {
                    SatResult::Unsat => break,
                    SatResult::Sat(model) => {
                        let cube = self.canon.state_cube(&model);
                        let window = self.canon.window(self.shared.spec, property, &model);
                        if self.canon.intersects_init(&cube) {
                            return PdrOutcome::Falsified(Counterexample {
                                property: property.name.clone(),
                                violation_frame: window.len() - 1,
                                frames: window,
                            });
                        }
                        match self.block(cube, window, cancel) {
                            BlockOutcome::Blocked => {}
                            BlockOutcome::Counterexample(cex) => return PdrOutcome::Falsified(cex),
                            BlockOutcome::Cancelled => {
                                return PdrOutcome::Unknown {
                                    frames_explored: self.canon.top(),
                                }
                            }
                        }
                    }
                }
            }
            if self.canon.top() >= self.shared.options.base.max_frames {
                return PdrOutcome::Unknown {
                    frames_explored: self.canon.top(),
                };
            }
            self.canon.push_frame();
            let top = self.canon.top();
            self.emit_heartbeat(top, 0);
            if let Some(fixpoint) = self.propagate() {
                return PdrOutcome::Proved {
                    certificate: self.canon.certificate(&property.name, fixpoint),
                    fixpoint_frame: fixpoint,
                };
            }
        }
    }
}

// ---- entry points -------------------------------------------------------

/// Checks one sequential property with the parallel PDR engine.
///
/// See the module docs for the scheduler and its determinism guarantee:
/// verdicts, counterexample traces and certificates are bit-identical for
/// every [`ParallelPdrOptions::threads`] value and every run. With
/// `threads == 1` the identical round algorithm executes inline on the
/// calling thread (no spawns).
///
/// # Errors
///
/// As [`crate::check_property_pdr`].
pub fn check_property_pdr_parallel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &ParallelPdrOptions,
) -> Result<PdrResult, BmcError> {
    check_property_pdr_parallel_traced(spec, netlist, property, options, None, &Tracer::disabled())
}

/// As [`check_property_pdr_parallel`], with cooperative cancellation and
/// an observability handle: the master tags its scheduler events with
/// `worker = 0`, each worker thread tags everything it records (obligation
/// solving, solver restarts, heartbeats) with its own worker id, and
/// per-worker solve time lands under `pdr.w<N>` profile spans.
///
/// # Errors
///
/// As [`check_property_pdr_parallel`].
pub fn check_property_pdr_parallel_traced(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &ParallelPdrOptions,
    cancel: Option<&AtomicBool>,
    tracer: &Tracer,
) -> Result<PdrResult, BmcError> {
    let _span = tracer.span("pdr.check");
    let missing = ipcl_bmc::missing_property_signals(spec, netlist, property);
    if !missing.is_empty() {
        return Err(BmcError::MissingSignals(missing));
    }
    let options = ParallelPdrOptions {
        threads: options.threads.max(1),
        ..*options
    };

    // The one fallible construction, before any thread exists: the
    // workers' sibling contexts mirror it.
    let mut canon = FrameCtx::new(spec, netlist, property, options.base.solver, tracer)?;
    if options.threads > 1 && options.share_max_lbd > 0 {
        canon.solver.set_clause_sharing(options.share_max_lbd);
    }

    let shared = Shared {
        options,
        spec,
        netlist,
        property,
        tracer: tracer.clone(),
        start: Barrier::new(options.threads),
        end: Barrier::new(options.threads),
        round: Mutex::new(None),
        view: FrameView::new(),
        exchange: ExchangeBuffer::new(EXCHANGE_CAPACITY),
        tallies: Mutex::new(Vec::new()),
    };

    let (outcome, mut stats, canon, w0_tally, exchange_dropped) = std::thread::scope(|scope| {
        for w in 1..shared.options.threads {
            let shared = &shared;
            scope.spawn(move || worker_thread(shared, w));
        }
        ipcl_trace::set_worker(Some(0));
        let mut engine = ParallelPdr {
            shared: &shared,
            canon,
            w0: WorkerState::new(&shared, 0),
            stats: PdrStats::default(),
            heartbeat: Heartbeat::every_ms(ipcl_sat::HEARTBEAT_MS),
        };
        let outcome = engine.run(cancel);
        // Shutdown handshake: publish the shutdown round; workers break
        // out before the end barrier and push their tallies.
        *shared.round.lock().expect("round slot lock") = Some(Arc::new(Round::shutdown()));
        shared.start.wait();
        ipcl_trace::set_worker(None);
        let dropped = shared.exchange.dropped();
        (
            outcome,
            engine.stats,
            engine.canon,
            engine.w0.tally(),
            dropped,
        )
    });

    // Aggregate: canonical counters carry the deterministic trajectory;
    // worker tallies add the (run-variant) bit-solving work.
    let tallies = shared.tallies.lock().expect("tally lock");
    stats.frames = canon.top();
    stats.clauses = canon.clauses;
    stats.solve_calls = canon.solve_calls;
    stats.generalization_drops = 0;
    stats.conflicts = canon.solver.stats().conflicts;
    stats.propagations = canon.solver.stats().propagations;
    stats.exported_clauses = canon.solver.stats().exported_clauses;
    for tally in tallies.iter().chain(std::iter::once(&w0_tally)) {
        stats.solve_calls += tally.solve_calls;
        stats.generalization_drops += tally.generalization_drops;
        stats.conflicts += tally.conflicts;
        stats.propagations += tally.propagations;
        stats.imported_clauses += tally.imported;
        stats.exported_clauses += tally.exported;
    }
    drop(tallies);

    if tracer.is_enabled() {
        stats.emit(tracer, "pdr");
        canon.solver.stats().emit(tracer, "sat");
        tracer.counter("pdr.exchange_dropped", exchange_dropped as u64);
        let u = canon.enc.unroller().stats();
        tracer.counter("unroll.pdr.frames", u.frames);
        tracer.counter("unroll.pdr.gates", u.gates);
        tracer.counter("unroll.pdr.cache_hits", u.cache_hits);
    }

    let validation = match (&outcome, options.base.validate_certificate) {
        (PdrOutcome::Proved { certificate, .. }, true) => {
            let _validate = tracer.span("pdr.validate");
            Some(certificate.validate(spec, netlist, property)?)
        }
        _ => None,
    };

    Ok(PdrResult {
        property: property.clone(),
        outcome,
        validation,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32) -> Lit {
        Lit::new(v, true)
    }

    #[test]
    fn exchange_publishes_and_drains_in_order() {
        let exchange = ExchangeBuffer::new(4);
        for i in 0..3 {
            assert!(exchange.publish(ExchangeClause {
                from: i,
                literals: vec![lit(i as u32)],
                lbd: 2,
            }));
        }
        let mut cursor = 0;
        let drained = exchange.drain_from(&mut cursor);
        assert_eq!(drained.len(), 3);
        assert_eq!(cursor, 3);
        assert!(drained.iter().enumerate().all(|(i, c)| c.from == i));
        // A second drain from the same cursor sees nothing new.
        assert!(exchange.drain_from(&mut cursor).is_empty());
    }

    #[test]
    fn exchange_overflow_drops_and_counts() {
        let exchange = ExchangeBuffer::new(2);
        let clause = |i: u32| ExchangeClause {
            from: 0,
            literals: vec![lit(i)],
            lbd: 1,
        };
        assert!(exchange.publish(clause(0)));
        assert!(exchange.publish(clause(1)));
        assert!(!exchange.publish(clause(2)));
        assert!(!exchange.publish(clause(3)));
        assert_eq!(exchange.dropped(), 2);
        let mut cursor = 0;
        assert_eq!(exchange.drain_from(&mut cursor).len(), 2);
    }

    #[test]
    fn exchange_is_safe_under_concurrent_publish_and_drain() {
        // Stress loop: N publishers race one reader per iteration; every
        // published clause is either stored exactly once (and seen by the
        // reader in slot order) or counted as dropped.
        const PUBLISHERS: usize = 4;
        const PER_PUBLISHER: usize = 64;
        for _ in 0..50 {
            let exchange = ExchangeBuffer::new(PUBLISHERS * PER_PUBLISHER / 2);
            let seen = std::thread::scope(|scope| {
                for publisher in 0..PUBLISHERS {
                    let exchange = &exchange;
                    scope.spawn(move || {
                        for i in 0..PER_PUBLISHER {
                            exchange.publish(ExchangeClause {
                                from: publisher,
                                literals: vec![lit(i as u32)],
                                lbd: publisher as u32,
                            });
                        }
                    });
                }
                let exchange = &exchange;
                scope
                    .spawn(move || {
                        let mut cursor = 0;
                        let mut seen = 0;
                        loop {
                            seen += exchange.drain_from(&mut cursor).len();
                            if seen + exchange.dropped() >= PUBLISHERS * PER_PUBLISHER {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        seen
                    })
                    .join()
                    .expect("reader thread")
            });
            assert_eq!(seen + exchange.dropped(), PUBLISHERS * PER_PUBLISHER);
            assert_eq!(seen, PUBLISHERS * PER_PUBLISHER / 2);
        }
    }

    #[test]
    fn frame_view_replays_in_commit_order() {
        let view = FrameView::new();
        view.commit(FrameLemma {
            frame: 1,
            cube: vec![(0, true)],
            promoted_from: None,
        });
        view.commit(FrameLemma {
            frame: 2,
            cube: vec![(0, true)],
            promoted_from: Some(1),
        });
        let all = view.since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].promoted_from, Some(1));
        assert_eq!(view.since(2).len(), 0);
        assert_eq!(view.since(1).len(), 1);
    }
}
