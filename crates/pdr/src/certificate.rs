//! Inductive invariant certificates and their independent validation.
//!
//! A PDR proof is only as trustworthy as the frame bookkeeping that produced
//! it, so the engine does not ask to be trusted: every
//! [`PdrOutcome::Proved`](crate::PdrOutcome::Proved) verdict carries an
//! explicit [`Certificate`] — a conjunction of clauses over the netlist's
//! register state — and [`Certificate::validate`] re-establishes from
//! scratch, with a fresh unrolling and a fresh SAT solver that share nothing
//! with the PDR run, the three facts that make the invariant a proof:
//!
//! 1. **initiation** — the reset state satisfies the invariant;
//! 2. **consecution** — the invariant is closed under the transition
//!    relation (one SAT check on a two-frame unrolling);
//! 3. **safety** — no state satisfying the invariant can violate the
//!    property (under any input).
//!
//! Together these imply the property holds on every cycle of every
//! execution from reset, by induction over time. A verdict whose
//! certificate fails validation is an engine bug, and the checker treats it
//! exactly like a counterexample that fails to replay: it panics rather
//! than reporting "proved".

use std::collections::BTreeSet;
use std::fmt;

use ipcl_bmc::encode::FrameEncoder;
use ipcl_bmc::{BmcError, SequentialProperty};
use ipcl_core::FunctionalSpec;
use ipcl_expr::{Lit, VarId};
use ipcl_rtl::{InitialState, Netlist, SignalKind};
use ipcl_sat::{SatResult, Solver};

/// One literal of a certificate clause: a register and the polarity it must
/// have for the literal to be true.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateLiteral {
    /// Name of the register in the netlist.
    pub register: String,
    /// `true` for the register itself, `false` for its negation.
    pub positive: bool,
}

impl fmt::Display for StateLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.register)
        } else {
            write!(f, "!{}", self.register)
        }
    }
}

/// An inductive invariant over the netlist's registers: the conjunction of
/// [`Certificate::clauses`], each a disjunction of [`StateLiteral`]s.
///
/// The empty certificate denotes the invariant `true`, which is valid
/// exactly when the property is an unconditional (per-state, any-input)
/// tautology — the common case for combinational interlock implementations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Name of the property the invariant proves.
    pub property: String,
    /// The invariant clauses.
    pub clauses: Vec<Vec<StateLiteral>>,
}

/// The verdicts of the three independent SAT checks of
/// [`Certificate::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CertificateCheck {
    /// The reset state satisfies the invariant.
    pub initiation: bool,
    /// The invariant is closed under the transition relation.
    pub consecution: bool,
    /// No invariant state violates the property under any input.
    pub safety: bool,
}

impl CertificateCheck {
    /// Whether all three checks passed — i.e. the certificate really proves
    /// the property.
    pub fn ok(&self) -> bool {
        self.initiation && self.consecution && self.safety
    }
}

impl fmt::Display for CertificateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = |ok: bool| if ok { "ok" } else { "FAILED" };
        write!(
            f,
            "initiation: {}, consecution: {}, safety: {}",
            verdict(self.initiation),
            verdict(self.consecution),
            verdict(self.safety)
        )
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes). Local copy of
/// `ipcl_tracetool::json::write_json_string` — the emit side must not pull
/// the trace-analytics crate into the proof engine.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Certificate {
    /// Whether the certificate is the trivial invariant `true`.
    pub fn is_trivial(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Renders the invariant as a conjunction of clauses, for reports.
    pub fn render(&self) -> String {
        if self.is_trivial() {
            return format!("certificate for {}: true (0 clauses)", self.property);
        }
        let mut out = format!(
            "certificate for {} ({} clause{}):\n",
            self.property,
            self.clauses.len(),
            if self.clauses.len() == 1 { "" } else { "s" }
        );
        for clause in &self.clauses {
            let lits: Vec<String> = clause.iter().map(|l| l.to_string()).collect();
            out.push_str(&format!("  ({})\n", lits.join(" | ")));
        }
        out
    }

    /// Serialises the certificate as a single-line JSON object:
    ///
    /// ```json
    /// {"property": "deep.1/performance",
    ///  "clauses": [[{"register": "wait[0]", "positive": false}, ...], ...]}
    /// ```
    ///
    /// The format is the storage side of the `ipcl-serve` proof cache;
    /// the matching parser lives there (`ipcl_serve::protocol`). Register
    /// names are JSON-escaped, so any netlist naming round-trips.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"property\": ");
        write_json_string(&mut out, &self.property);
        out.push_str(", \"clauses\": [");
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, lit) in clause.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"register\": ");
                write_json_string(&mut out, &lit.register);
                out.push_str(&format!(", \"positive\": {}}}", lit.positive));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Independently re-validates the certificate against `netlist` and
    /// `property` with a fresh unrolling and a fresh SAT solver (nothing is
    /// shared with the PDR run that produced it). Returns the per-check
    /// verdicts; see the module docs for what each check establishes.
    ///
    /// # Errors
    ///
    /// [`BmcError::MissingSignals`] if the certificate names a register the
    /// netlist does not have (or names a non-register signal);
    /// [`BmcError::Rtl`] if the netlist does not elaborate.
    pub fn validate(
        &self,
        spec: &FunctionalSpec,
        netlist: &Netlist,
        property: &SequentialProperty,
    ) -> Result<CertificateCheck, BmcError> {
        // Resolve certificate registers up front.
        let mut missing = Vec::new();
        for clause in &self.clauses {
            for lit in clause {
                match netlist.find(&lit.register) {
                    Some(signal)
                        if matches!(netlist.signal(signal).kind, SignalKind::Register { .. }) => {}
                    _ => missing.push(lit.register.clone()),
                }
            }
        }
        missing.sort();
        missing.dedup();
        if !missing.is_empty() {
            return Err(BmcError::MissingSignals(missing));
        }

        let mut enc = FrameEncoder::new(netlist, InitialState::Free, 0)?;
        enc.ensure_frames(2);
        let moe_vars: BTreeSet<VarId> = spec.moe_vars().into_iter().collect();
        let offset = property.latency.offset();
        let bad = enc
            .encode_instance(spec, &moe_vars, property, offset)
            .negated();

        let clause_lit = |enc: &FrameEncoder, frame: usize, lit: &StateLiteral| -> Lit {
            let signal = enc
                .unroller()
                .netlist()
                .find(&lit.register)
                .expect("resolved above");
            let l = enc.unroller().lit(frame, signal);
            if lit.positive {
                l
            } else {
                l.negated()
            }
        };

        // Init under an activation literal: each register at its reset value
        // in frame 0.
        let act_init = enc.unroller_mut().fresh_lit();
        for register in netlist.registers() {
            let SignalKind::Register { init, .. } = netlist.signal(register).kind else {
                unreachable!("registers() yields registers");
            };
            let lit = enc.unroller().lit(0, register);
            let lit = if init { lit } else { lit.negated() };
            enc.unroller_mut().add_clause([act_init.negated(), lit]);
        }

        // The invariant over frame 0, under an activation literal.
        let act_inv = enc.unroller_mut().fresh_lit();
        for clause in &self.clauses {
            let mut lits = vec![act_inv.negated()];
            lits.extend(clause.iter().map(|l| clause_lit(&enc, 0, l)));
            enc.unroller_mut().add_clause(lits);
        }

        // ¬invariant at a frame: the disjunction over clauses of the
        // conjunction of the clause's negated literals.
        let not_inv_at = |enc: &mut FrameEncoder, frame: usize| -> Lit {
            if self.clauses.is_empty() {
                return enc.unroller().const_true().negated();
            }
            let negated_clauses: Vec<Lit> = self
                .clauses
                .iter()
                .map(|clause| {
                    let negated: Vec<Lit> = clause
                        .iter()
                        .map(|l| clause_lit(enc, frame, l).negated())
                        .collect();
                    enc.unroller_mut().define_and(&negated)
                })
                .collect();
            let all_hold: Vec<Lit> = negated_clauses.iter().map(|l| l.negated()).collect();
            enc.unroller_mut().define_and(&all_hold).negated()
        };
        let not_inv_0 = not_inv_at(&mut enc, 0);
        let not_inv_1 = not_inv_at(&mut enc, 1);

        let mut solver = Solver::from_cnf(enc.unroller().cnf());
        let unsat = |solver: &mut Solver, assumptions: &[Lit]| {
            solver.solve_under_assumptions(assumptions) == SatResult::Unsat
        };
        Ok(CertificateCheck {
            // Init ∧ ¬Inv unsatisfiable.
            initiation: unsat(&mut solver, &[act_init, not_inv_0]),
            // Inv ∧ T ∧ ¬Inv' unsatisfiable (T is the frame-0 → frame-1
            // transition built into the unrolling).
            consecution: unsat(&mut solver, &[act_inv, not_inv_1]),
            // Inv ∧ ¬ok unsatisfiable, for any input.
            safety: unsat(&mut solver, &[act_inv, bad]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_bmc::{Latency, PropertyKind};
    use ipcl_core::example::ExampleArch;
    use ipcl_synth::{synthesize_interlock_with, SynthesisOptions};

    fn registered_example() -> (ipcl_core::FunctionalSpec, Netlist) {
        let spec = ExampleArch::new().functional_spec();
        let synthesized = synthesize_interlock_with(
            &spec,
            SynthesisOptions {
                registered_outputs: true,
                reset_value: true,
                ..Default::default()
            },
        );
        (spec, synthesized.netlist().clone())
    }

    #[test]
    fn trivial_certificate_validates_for_tautological_properties() {
        let (spec, netlist) = registered_example();
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);
        let certificate = Certificate {
            property: property.name.clone(),
            clauses: Vec::new(),
        };
        let check = certificate.validate(&spec, &netlist, &property).unwrap();
        assert!(check.ok(), "{check}");
    }

    #[test]
    fn wrong_invariant_fails_validation() {
        let (spec, netlist) = registered_example();
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);
        // Claim some moe register is always low: the reset state (all moe
        // high) refutes initiation.
        let register = netlist
            .registers()
            .first()
            .map(|&r| netlist.signal(r).name.clone())
            .expect("registered synthesis has registers");
        let certificate = Certificate {
            property: property.name.clone(),
            clauses: vec![vec![StateLiteral {
                register,
                positive: false,
            }]],
        };
        let check = certificate.validate(&spec, &netlist, &property).unwrap();
        assert!(!check.initiation);
        assert!(!check.ok());
    }

    #[test]
    fn unknown_register_is_reported() {
        let (spec, netlist) = registered_example();
        let property =
            SequentialProperty::for_stage(&spec, 0, PropertyKind::Combined, Latency::Registered);
        let certificate = Certificate {
            property: property.name.clone(),
            clauses: vec![vec![StateLiteral {
                register: "no_such_register".to_owned(),
                positive: true,
            }]],
        };
        let err = certificate
            .validate(&spec, &netlist, &property)
            .unwrap_err();
        assert!(matches!(err, BmcError::MissingSignals(ref names) if names.len() == 1));
    }
}
