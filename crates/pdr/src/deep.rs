//! A family of interlock implementations whose correctness is *not*
//! k-inductive at any small `k` — the workload PDR exists for.
//!
//! [`deep_pipeline`] models the silicon-bound bug territory of the paper's
//! case study in miniature: a completion chain of `depth` sticky wait-state
//! bits (think: a scoreboard entry propagating through the stages of a deep
//! pipe). An event injected at the head marches towards the tail one stage
//! per cycle, and a stage's `moe` flag is justified by the *head* of the
//! chain: the implementation asserts "the tail can only be busy if the head
//! was busy first".
//!
//! That claim is true — of every state reachable from reset — but it is not
//! inductive on its own, and no unrolling shorter than the chain makes it
//! so: a free (unreachable) state with a lone event in stage 1 takes
//! `depth − 2` loop-free, assertion-clean cycles to reach the tail and
//! violate the property, so the k-induction step of `ipcl-bmc` stays
//! satisfiable for every `k ≤ depth − 2`. PDR instead *discovers* the
//! strengthening lemmas (stage `i` busy implies stage `i−1` busy) as frame
//! clauses, closes the trailing sequence and returns them as a validated
//! inductive-invariant certificate.

use ipcl_core::{FunctionalSpec, FunctionalSpecBuilder, StageRef};
use ipcl_rtl::Netlist;

/// Builds the deep-chain specification and implementation.
///
/// The specification has a single stage `deep.1` with no stall conditions
/// (the stage never needs to stall), so its performance property is
/// `¬moe → false` — the `moe` flag must be high in every reachable state.
/// The implementation computes `moe = ¬(wait[depth−1] ∧ ¬wait[0])` over a
/// sticky shift chain `wait[0..depth]` fed by the `inject` input.
///
/// `depth` is clamped to at least 3 (below that the chain is trivially
/// inductive).
pub fn deep_pipeline(depth: usize) -> (FunctionalSpec, Netlist) {
    let depth = depth.max(3);
    let mut builder = FunctionalSpecBuilder::new();
    let stage = StageRef::new("deep", 1);
    builder
        .declare_stage(stage.clone())
        .expect("fresh builder has no duplicate stages");
    let spec = builder.build().expect("no undeclared moe references");
    let moe_name = spec
        .pool()
        .name_or_fallback(spec.moe_var(&stage).expect("stage declared above"));

    let mut netlist = Netlist::new("deep_chain");
    let inject = netlist.input("inject");
    // Sticky chain: wait[0] latches `inject`, wait[i] latches wait[i−1];
    // every bit stays set once set.
    let mut chain = Vec::with_capacity(depth);
    for i in 0..depth {
        let register = netlist.register(&format!("wait[{i}]"), false);
        chain.push(register);
    }
    for (i, &register) in chain.iter().enumerate() {
        let feed = if i == 0 { inject } else { chain[i - 1] };
        let next = netlist.or_gate(&format!("wait_next[{i}]"), [register, feed]);
        netlist
            .connect_register(register, next)
            .expect("freshly created register");
    }
    // moe = ¬(tail ∧ ¬head): the tail answers for the head.
    let head_clear = netlist.not_gate("head_clear", chain[0]);
    let orphan_tail = netlist.and_gate("orphan_tail", [chain[depth - 1], head_clear]);
    let moe = netlist.not_gate(&moe_name, orphan_tail);
    netlist.mark_output(moe);

    (spec, netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_rtl::Simulator;

    #[test]
    fn chain_shape() {
        let (spec, netlist) = deep_pipeline(8);
        assert_eq!(spec.stages().len(), 1);
        assert_eq!(netlist.registers().len(), 8);
        assert!(netlist.find("deep.1.moe").is_some());
    }

    #[test]
    fn moe_holds_along_reachable_executions() {
        let (_, netlist) = deep_pipeline(6);
        let moe = netlist.find("deep.1.moe").unwrap();
        let inject = netlist.find("inject").unwrap();
        let mut sim = Simulator::new(&netlist).unwrap();
        // Idle, then one event marching the full chain, then more events.
        for cycle in 0..24u32 {
            sim.set_input(inject, cycle == 3 || cycle >= 15);
            assert!(sim.value(moe), "moe must hold at cycle {cycle}");
            sim.step();
        }
    }
}
