//! The IC3 / property-directed reachability engine.
//!
//! Where k-induction strengthens a property by brute unrolling depth, PDR
//! strengthens it clause by clause (Bradley's IC3, in the incremental-SAT
//! formulation of Eén/Mishchenko/Brayton): a *trailing sequence* of frames
//! `F_1 ⊇ F_2 ⊇ … ⊇ F_K` over-approximates the states reachable in at most
//! 1, 2, …, K steps. Whenever a state in `F_K` can violate the property, it
//! becomes a *proof obligation*: either an initial state can reach it — a
//! concrete counterexample trace — or a *relative induction* query blocks a
//! generalisation of it, adding one clause to a frame. When a propagation
//! pass makes two adjacent frames equal, that frame is an inductive
//! invariant: the property is proved **for every cycle, with no unrolling
//! bound**, and the invariant is returned as an explicit
//! [`Certificate`] that [`Certificate::validate`] re-checks independently.
//!
//! ## Encoding
//!
//! One two-frame [`FrameEncoder`] unrolling (free initial state) provides
//! the transition relation: frame-0 registers are the pre-state `s`,
//! frame-1 registers its successor `s'`. All PDR-specific constraints are
//! added under *activation literals* so a single incremental
//! [`ipcl_sat::Solver`] answers every query by assumptions:
//!
//! * the reset state, under `act_init` (assumed when the left-hand side of
//!   a query is `F_0 = Init`);
//! * each frame clause under its frame's `act[k]` — frames are
//!   delta-encoded (a clause is stored at the highest frame it holds at),
//!   so the query "under `F_k`" assumes `act[k..=K]`;
//! * the negated property under the assumption `¬ok`, sampled over the
//!   window `[0, latency.offset()]` (so a registered-latency "bad state"
//!   is a state from which the next `moe` sample answers wrongly for the
//!   current environment).
//!
//! Unlike the BMC base case, PDR has no quiet-cycle discipline: it decides
//! the property *unconditionally* — over every input sequence from reset —
//! which is also what the k-induction step case assumes, so the two engines
//! agree on every design the portfolio races them on.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};

use ipcl_bmc::encode::{FrameEncoder, SolverSync};
use ipcl_bmc::{BmcError, Counterexample, SequentialProperty};
use ipcl_core::FunctionalSpec;
use ipcl_expr::{Lit, VarId};
use ipcl_rtl::{InitialState, Netlist, SignalId, SignalKind};
use ipcl_sat::{SatResult, Solver, SolverConfig};
use ipcl_trace::{Heartbeat, MetricSink, Tracer, Value};

use crate::certificate::{Certificate, CertificateCheck, StateLiteral};

/// Knobs of one PDR run.
#[derive(Clone, Copy, Debug)]
pub struct PdrOptions {
    /// Maximum number of frames before giving up with
    /// [`PdrOutcome::Unknown`]. The state spaces of interlock controllers
    /// are small, so running out of frames indicates a diverging
    /// abstraction rather than a hard problem.
    pub max_frames: usize,
    /// Generalise blocked cubes by SAT-checked literal dropping (the
    /// default). `false` blocks the full state cube — kept for the
    /// ablation benchmark.
    pub generalize: bool,
    /// Re-validate the certificate of every proof with independent SAT
    /// checks (the default; see [`Certificate::validate`]).
    pub validate_certificate: bool,
    /// Heuristic configuration of the CDCL solver (heap decisions, clause
    /// minimization, database reduction, restarts, phase saving — see
    /// [`ipcl_sat::SolverConfig`]). PDR leans hardest on the incremental
    /// hot paths: every consecution/generalisation query is one
    /// `solve_under_assumptions` call against the same solver.
    pub solver: SolverConfig,
}

impl Default for PdrOptions {
    fn default() -> Self {
        PdrOptions {
            max_frames: 64,
            generalize: true,
            validate_certificate: true,
            solver: SolverConfig::default(),
        }
    }
}

/// Search statistics of one PDR run.
#[derive(Clone, Debug, Default)]
pub struct PdrStats {
    /// Frames opened (the final `K`).
    pub frames: usize,
    /// Frame clauses learned (before propagation dedup).
    pub clauses: usize,
    /// Proof obligations processed.
    pub obligations: u64,
    /// SAT queries issued.
    pub solve_calls: u64,
    /// Literals dropped by cube generalisation.
    pub generalization_drops: u64,
    /// Conflicts in the underlying CDCL solver.
    pub conflicts: u64,
    /// Propagations in the underlying CDCL solver.
    pub propagations: u64,
    /// Maximum length the proof-obligation queue ever reached — the
    /// shard-sizing input for a work-stealing parallel PDR (ROADMAP
    /// item 1): it bounds how much concurrency the obligation stream
    /// could even feed.
    pub max_queue_depth: usize,
    /// Obligations processed per frame: `obligations_per_frame[k]` counts
    /// pops whose consecution query ran against `F_{k-1}`. Skewed
    /// distributions indicate one frame dominating the search.
    pub obligations_per_frame: Vec<u64>,
    /// Solver-learned clauses imported from sibling workers (parallel
    /// engine only; the sequential engine leaves this 0).
    pub imported_clauses: u64,
    /// Solver-learned clauses exported to sibling workers (parallel
    /// engine only).
    pub exported_clauses: u64,
}

impl PdrStats {
    /// Emits the run's counters as `<prefix>.*` and the queue shape as
    /// gauges into `sink` (the [`MetricSink`] unification shared with
    /// `SolverStats` and `BmcStats`).
    pub fn emit(&self, sink: &dyn MetricSink, prefix: &str) {
        sink.counter(&format!("{prefix}.clauses"), self.clauses as u64);
        sink.counter(&format!("{prefix}.obligations"), self.obligations);
        sink.counter(&format!("{prefix}.solve_calls"), self.solve_calls);
        sink.counter(
            &format!("{prefix}.generalization_drops"),
            self.generalization_drops,
        );
        sink.gauge(&format!("{prefix}.frames"), self.frames as f64);
        sink.gauge(
            &format!("{prefix}.max_queue_depth"),
            self.max_queue_depth as f64,
        );
        if self.imported_clauses > 0 || self.exported_clauses > 0 {
            sink.counter(&format!("{prefix}.imported_clauses"), self.imported_clauses);
            sink.counter(&format!("{prefix}.exported_clauses"), self.exported_clauses);
        }
    }
}

/// The verdict of one PDR run.
#[derive(Clone, Debug)]
pub enum PdrOutcome {
    /// The property holds on every cycle; the certificate is the inductive
    /// invariant that proves it.
    Proved {
        /// The invariant (validated iff
        /// [`PdrOptions::validate_certificate`]; see
        /// [`PdrResult::validation`]).
        certificate: Certificate,
        /// The frame at which the trailing sequence closed.
        fixpoint_frame: usize,
    },
    /// The property fails; the trace is simulator-replayable (but, unlike
    /// BMC's, not necessarily of minimal length).
    Falsified(Counterexample),
    /// Frame budget exhausted or run cancelled.
    Unknown {
        /// Frames explored before giving up.
        frames_explored: usize,
    },
}

impl PdrOutcome {
    /// Whether the outcome is a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, PdrOutcome::Proved { .. })
    }

    /// Whether the outcome is a falsification.
    pub fn is_falsified(&self) -> bool {
        matches!(self, PdrOutcome::Falsified(_))
    }

    /// The counterexample, if falsified.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            PdrOutcome::Falsified(cex) => Some(cex),
            _ => None,
        }
    }

    /// The certificate, if proved.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            PdrOutcome::Proved { certificate, .. } => Some(certificate),
            _ => None,
        }
    }
}

/// Result of checking one property with PDR.
#[derive(Clone, Debug)]
pub struct PdrResult {
    /// The property that was checked.
    pub property: SequentialProperty,
    /// The verdict.
    pub outcome: PdrOutcome,
    /// The independent certificate validation (`Some` exactly when the
    /// outcome is a proof and validation was requested).
    pub validation: Option<CertificateCheck>,
    /// Search statistics.
    pub stats: PdrStats,
}

/// A cube over the register state: `(register index, value)` pairs sorted
/// by index. Trace cubes are total (one entry per register); blocked cubes
/// shrink under generalisation.
pub(crate) type Cube = Vec<(usize, bool)>;

/// One committed frame lemma: the clause `¬cube` joined frame `k` of the
/// trailing sequence. `promoted_from` is set when the lemma moved up from a
/// lower frame during propagation (delta encoding: the cube leaves the
/// lower frame's bookkeeping). Replaying a lemma log in order reproduces
/// the frame state exactly — the sharing unit of the parallel engine's
/// [`crate::parallel`] commit log.
#[derive(Clone, Debug)]
pub(crate) struct FrameLemma {
    pub(crate) frame: usize,
    pub(crate) cube: Cube,
    pub(crate) promoted_from: Option<usize>,
}

/// One entry of the proof-obligation arena. The parent chain reconstructs
/// counterexample traces: `step_inputs` is the input valuation driving this
/// obligation's state into its parent's state in one cycle.
struct Obligation {
    cube: Cube,
    parent: Option<usize>,
    step_inputs: BTreeMap<String, bool>,
}

enum BlockOutcome {
    Blocked,
    Counterexample(Counterexample),
    Cancelled,
}

/// The encoder + incremental solver + trailing frame sequence of one PDR
/// search: everything needed to answer frame queries (consecution,
/// generalisation, propagation, certificates). Extracted from the engine
/// loop so the parallel scheduler ([`crate::parallel`]) can give every
/// worker its own `FrameCtx` — construction is fully deterministic, so all
/// workers allocate identical base encodings (and [`FrameCtx::base_bound`]
/// means the same variable range in each), while frame activation literals
/// beyond the base stay worker-local.
pub(crate) struct FrameCtx {
    pub(crate) enc: FrameEncoder,
    pub(crate) solver: Solver,
    sync: SolverSync,
    /// The registers (state variables), in [`Netlist::registers`] order.
    pub(crate) regs: Vec<SignalId>,
    /// Reset value per register.
    reg_init: Vec<bool>,
    /// Frame-0 literal per register (the pre-state `s`).
    reg0: Vec<Lit>,
    /// Frame-1 literal per register (the post-state `s'`).
    reg1: Vec<Lit>,
    /// Assumption literal of the negated property window.
    pub(crate) bad: Lit,
    /// Activation literal of the reset-state constraints (`F_0`).
    act_init: Lit,
    /// `act[k]` activates the clauses stored at frame `k` (`act[0]` is a
    /// placeholder; `F_0` is `act_init`).
    act: Vec<Lit>,
    /// Delta-encoded frame clauses: `frame_cubes[k]` holds the cubes whose
    /// negations are stored at frame `k`.
    pub(crate) frame_cubes: Vec<Vec<Cube>>,
    /// First CNF variable *beyond* the deterministic base encoding
    /// (transition relation, property window, reset constraints). Every
    /// sibling `FrameCtx` on the same problem allocates the identical base,
    /// so a solver-learned clause whose variables all lie below this bound
    /// is implied by the base encoding alone and sound to import into any
    /// sibling. Clauses touching frame activation or throw-away literals
    /// (allocated after the base, in worker-local order) fail the bound.
    pub(crate) base_bound: u32,
    /// SAT queries issued through this context.
    pub(crate) solve_calls: u64,
    /// Frame clauses committed (before propagation dedup).
    pub(crate) clauses: usize,
    /// Literals dropped by cube generalisation.
    pub(crate) generalization_drops: u64,
    tracer: Tracer,
}

impl FrameCtx {
    pub(crate) fn new(
        spec: &FunctionalSpec,
        netlist: &Netlist,
        property: &SequentialProperty,
        solver_config: SolverConfig,
        tracer: &Tracer,
    ) -> Result<FrameCtx, BmcError> {
        let _encode = tracer.span("pdr.encode");
        let mut enc = FrameEncoder::new(netlist, InitialState::Free, 0)?;
        // Two frames: the transition `s → s'` and (for registered latency)
        // the property window.
        enc.ensure_frames(2);
        let moe_vars: BTreeSet<VarId> = spec.moe_vars().into_iter().collect();
        let offset = property.latency.offset();
        let bad = enc
            .encode_instance(spec, &moe_vars, property, offset)
            .negated();

        let regs = enc.unroller().netlist().registers();
        let reg_init: Vec<bool> = regs
            .iter()
            .map(|&r| match enc.unroller().netlist().signal(r).kind {
                SignalKind::Register { init, .. } => init,
                _ => unreachable!("registers() yields registers"),
            })
            .collect();
        let reg0: Vec<Lit> = regs.iter().map(|&r| enc.unroller().lit(0, r)).collect();
        let reg1: Vec<Lit> = regs.iter().map(|&r| enc.unroller().lit(1, r)).collect();

        // F_0 = Init: each register at its reset value, under `act_init`.
        let act_init = enc.unroller_mut().fresh_lit();
        for (index, &lit) in reg0.iter().enumerate() {
            let lit = if reg_init[index] { lit } else { lit.negated() };
            enc.unroller_mut().add_clause([act_init.negated(), lit]);
        }
        let base_bound = enc.unroller().cnf().num_vars;

        let placeholder = act_init; // never assumed via `act[0]`
        let mut solver = Solver::with_config(enc.unroller().cnf().num_vars as usize, solver_config);
        solver.set_tracer(tracer.clone());
        Ok(FrameCtx {
            enc,
            solver,
            sync: SolverSync::default(),
            regs,
            reg_init,
            reg0,
            reg1,
            bad,
            act_init,
            act: vec![placeholder],
            frame_cubes: vec![Vec::new()],
            base_bound,
            solve_calls: 0,
            clauses: 0,
            generalization_drops: 0,
            tracer: tracer.clone(),
        })
    }

    /// Number of the top frame.
    pub(crate) fn top(&self) -> usize {
        self.act.len() - 1
    }

    /// Opens frame `K+1` (initially unconstrained).
    pub(crate) fn push_frame(&mut self) {
        let act = self.enc.unroller_mut().fresh_lit();
        self.act.push(act);
        self.frame_cubes.push(Vec::new());
    }

    pub(crate) fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.sync.sync(&self.enc, &mut self.solver);
        self.solve_calls += 1;
        self.solver.solve_under_assumptions(assumptions)
    }

    /// Assumptions activating the clauses of `F_k`.
    pub(crate) fn frame_assumptions(&self, k: usize) -> Vec<Lit> {
        if k == 0 {
            vec![self.act_init]
        } else {
            self.act[k..].to_vec()
        }
    }

    /// The literal of `cube[i]` at frame 0 (`prime = false`) or 1.
    pub(crate) fn cube_lit(&self, entry: (usize, bool), prime: bool) -> Lit {
        let (index, value) = entry;
        let lit = if prime {
            self.reg1[index]
        } else {
            self.reg0[index]
        };
        if value {
            lit
        } else {
            lit.negated()
        }
    }

    /// The total register cube of a model's frame 0.
    pub(crate) fn state_cube(&self, model: &[bool]) -> Cube {
        self.reg0
            .iter()
            .enumerate()
            .map(|(index, lit)| (index, model[lit.var() as usize] == lit.is_positive()))
            .collect()
    }

    /// Whether the cube contains the reset state. The reset state is a
    /// single total assignment, so this is a syntactic check: the cube
    /// intersects `Init` iff none of its literals disagrees with a reset
    /// value.
    pub(crate) fn intersects_init(&self, cube: &Cube) -> bool {
        cube.iter()
            .all(|&(index, value)| value == self.reg_init[index])
    }

    /// Stores the clause `¬cube` at frame `k` and encodes it under `act[k]`.
    pub(crate) fn add_frame_clause(&mut self, cube: Cube, k: usize) {
        let mut clause = vec![self.act[k].negated()];
        clause.extend(
            cube.iter()
                .map(|&entry| self.cube_lit(entry, false).negated()),
        );
        self.enc.unroller_mut().add_clause(clause);
        self.frame_cubes[k].push(cube);
        self.clauses += 1;
    }

    /// Replays one committed lemma from a sibling's log: promotions drop
    /// the cube from its previous frame first, then the clause is encoded
    /// at the (new) frame exactly as a local commit would be. Replaying a
    /// log in commit order reproduces `frame_cubes` bit-identically.
    pub(crate) fn apply_lemma(&mut self, lemma: &FrameLemma) {
        while self.top() < lemma.frame {
            self.push_frame();
        }
        if let Some(from) = lemma.promoted_from {
            if let Some(pos) = self.frame_cubes[from].iter().position(|c| *c == lemma.cube) {
                self.frame_cubes[from].remove(pos);
            }
        }
        self.add_frame_clause(lemma.cube.clone(), lemma.frame);
    }

    /// The relative-induction query `F_{k-1} ∧ ¬cube ∧ T ∧ cube'`.
    ///
    /// UNSAT means no `F_{k-1}`-state outside the cube reaches the cube in
    /// one step — together with initiation, the cube is unreachable within
    /// `k` steps and `¬cube` may join `F_k`. SAT yields a predecessor
    /// state (a new proof obligation) in the model's frame 0.
    pub(crate) fn consecution(&mut self, cube: &Cube, k: usize) -> SatResult {
        // ¬cube over frame 0 is a disjunction: encode it once under a
        // throw-away activation literal, assume it for this query, then
        // permanently disable it.
        let tmp = self.enc.unroller_mut().fresh_lit();
        let mut clause = vec![tmp.negated()];
        clause.extend(
            cube.iter()
                .map(|&entry| self.cube_lit(entry, false).negated()),
        );
        self.enc.unroller_mut().add_clause(clause);

        let mut assumptions = self.frame_assumptions(k - 1);
        assumptions.push(tmp);
        assumptions.extend(cube.iter().map(|&entry| self.cube_lit(entry, true)));
        let result = self.solve(&assumptions);
        self.enc.unroller_mut().add_clause([tmp.negated()]);
        result
    }

    /// Shrinks a blocked cube by literal dropping: each literal whose
    /// removal keeps both initiation (the cube still excludes the reset
    /// state) and consecution (the relative-induction query stays UNSAT)
    /// is dropped, giving a clause that blocks exponentially many states
    /// instead of one.
    ///
    /// The result depends only on SAT/UNSAT verdict *bits*, never on
    /// models, so it is identical no matter which sibling context computes
    /// it from the same committed frame state — the property the parallel
    /// engine's determinism rests on.
    pub(crate) fn generalize(&mut self, cube: Cube, k: usize) -> Cube {
        let _span = self.tracer.span_fast("pdr.generalize");
        let mut current = cube.clone();
        for &entry in &cube {
            if current.len() == 1 {
                break;
            }
            let candidate: Cube = current.iter().copied().filter(|&e| e != entry).collect();
            if candidate.len() == current.len() {
                continue; // already dropped
            }
            if self.intersects_init(&candidate) {
                continue; // initiation would break
            }
            if self.consecution(&candidate, k) == SatResult::Unsat {
                self.generalization_drops += 1;
                current = candidate;
            }
        }
        current
    }

    /// Whether `cube` is subsumed by a clause already stored at frame ≥ `k`
    /// (i.e. already excluded from `F_k`). Cubes are sorted by register
    /// index, so subsumption is a linear merge.
    pub(crate) fn is_blocked(&self, cube: &Cube, k: usize) -> bool {
        self.frame_cubes[k..]
            .iter()
            .flatten()
            .any(|blocked| subsumes(blocked, cube))
    }

    /// The invariant at a fixpoint frame `k`: every clause stored at frames
    /// above `k` (delta encoding: that conjunction *is* `F_{k+1} = F_k`).
    /// The same cube can be blocked at several frames above the fixpoint,
    /// so the clause list is deduplicated for the certificate.
    pub(crate) fn certificate(&self, property_name: &str, fixpoint: usize) -> Certificate {
        let mut cubes: Vec<&Cube> = self.frame_cubes[fixpoint + 1..].iter().flatten().collect();
        cubes.sort();
        cubes.dedup();
        let clauses = cubes
            .into_iter()
            .map(|cube| {
                cube.iter()
                    .map(|&(index, value)| StateLiteral {
                        register: self
                            .enc
                            .unroller()
                            .netlist()
                            .signal(self.regs[index])
                            .name
                            .clone(),
                        positive: !value,
                    })
                    .collect()
            })
            .collect();
        Certificate {
            property: property_name.to_owned(),
            clauses,
        }
    }

    /// Decodes the property window (frames `0..=offset`) of a bad-state
    /// model.
    pub(crate) fn window(
        &self,
        spec: &FunctionalSpec,
        property: &SequentialProperty,
        model: &[bool],
    ) -> Vec<BTreeMap<String, bool>> {
        (0..=property.latency.offset())
            .map(|frame| self.enc.decode_frame(spec, model, frame))
            .collect()
    }
}

struct Pdr<'a> {
    spec: &'a FunctionalSpec,
    property: &'a SequentialProperty,
    options: PdrOptions,
    ctx: FrameCtx,
    stats: PdrStats,
    tracer: Tracer,
    /// Live-progress beats (rate-limited), checked per obligation pop and
    /// per frame open — a deep proof reports its frontier while running.
    heartbeat: Heartbeat,
}

impl<'a> Pdr<'a> {
    fn new(
        spec: &'a FunctionalSpec,
        netlist: &Netlist,
        property: &'a SequentialProperty,
        options: PdrOptions,
        tracer: &Tracer,
    ) -> Result<Self, BmcError> {
        let ctx = FrameCtx::new(spec, netlist, property, options.solver, tracer)?;
        Ok(Pdr {
            spec,
            property,
            options,
            ctx,
            stats: PdrStats::default(),
            tracer: tracer.clone(),
            heartbeat: Heartbeat::every_ms(ipcl_sat::HEARTBEAT_MS),
        })
    }

    /// Blocks the bad cube at the top frame, recursively discharging the
    /// proof obligations it spawns. `window` is the decoded input window of
    /// the bad-state model (the tail of any counterexample trace).
    fn block(
        &mut self,
        root: Cube,
        window: Vec<BTreeMap<String, bool>>,
        cancel: Option<&AtomicBool>,
    ) -> BlockOutcome {
        let top = self.ctx.top();
        let mut arena: Vec<Obligation> = vec![Obligation {
            cube: root,
            parent: None,
            step_inputs: BTreeMap::new(),
        }];
        // Min-heap on (frame, arena index): deepest-from-reset obligations
        // first, FIFO within a frame.
        let mut queue: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        queue.push(Reverse((top, 0)));
        self.note_push(top, queue.len());

        while let Some(Reverse((k, index))) = queue.pop() {
            if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                return BlockOutcome::Cancelled;
            }
            self.note_pop(k, queue.len());
            if k == 0 {
                // Defensive: obligations at frame 0 are initial states and
                // are caught at creation time by the initiation check.
                return BlockOutcome::Counterexample(self.trace(&arena, index, None, &window));
            }
            let cube = arena[index].cube.clone();
            if self.ctx.is_blocked(&cube, k) {
                // Already excluded from F_k by a stronger clause; keep
                // pushing the obligation towards the top frame.
                if k < top {
                    queue.push(Reverse((k + 1, index)));
                    self.note_push(k + 1, queue.len());
                }
                continue;
            }
            match self.ctx.consecution(&cube, k) {
                SatResult::Unsat => {
                    let generalized = if self.options.generalize {
                        self.ctx.generalize(cube, k)
                    } else {
                        cube
                    };
                    self.ctx.add_frame_clause(generalized, k);
                    if k < top {
                        queue.push(Reverse((k + 1, index)));
                        self.note_push(k + 1, queue.len());
                    }
                }
                SatResult::Sat(model) => {
                    let predecessor = self.ctx.state_cube(&model);
                    let step_inputs = self.ctx.enc.decode_frame(self.spec, &model, 0);
                    if self.ctx.intersects_init(&predecessor) {
                        // The predecessor is the reset state: the obligation
                        // chain is a concrete trace.
                        return BlockOutcome::Counterexample(self.trace(
                            &arena,
                            index,
                            Some(step_inputs),
                            &window,
                        ));
                    }
                    arena.push(Obligation {
                        cube: predecessor,
                        parent: Some(index),
                        step_inputs,
                    });
                    queue.push(Reverse((k - 1, arena.len() - 1)));
                    queue.push(Reverse((k, index)));
                    self.note_push(k - 1, queue.len() - 1);
                    self.note_push(k, queue.len());
                }
            }
        }
        BlockOutcome::Blocked
    }

    /// Records an obligation entering the queue at `frame`, with the
    /// queue length right after the push.
    fn note_push(&mut self, frame: usize, queue_len: usize) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(queue_len);
        self.tracer.event(
            "pdr_obligation",
            &[
                ("action", Value::from("push")),
                ("frame", Value::U64(frame as u64)),
                ("queue", Value::U64(queue_len as u64)),
            ],
        );
    }

    /// Records an obligation leaving the queue at `frame`, with the queue
    /// length right after the pop.
    fn note_pop(&mut self, frame: usize, queue_len: usize) {
        self.stats.obligations += 1;
        if frame >= self.stats.obligations_per_frame.len() {
            self.stats.obligations_per_frame.resize(frame + 1, 0);
        }
        self.stats.obligations_per_frame[frame] += 1;
        self.tracer.event(
            "pdr_obligation",
            &[
                ("action", Value::from("pop")),
                ("frame", Value::U64(frame as u64)),
                ("queue", Value::U64(queue_len as u64)),
            ],
        );
        self.emit_heartbeat(frame, queue_len);
    }

    /// Emits a live-progress `heartbeat` event (rate-limited; see
    /// [`Heartbeat`]): the current obligation frame, the top frame of the
    /// trailing sequence, the queue depth, and the obligations/clauses
    /// totals so far.
    fn emit_heartbeat(&mut self, frame: usize, queue_len: usize) {
        if !self.heartbeat.due(&self.tracer) {
            return;
        }
        self.tracer.event(
            "heartbeat",
            &[
                ("engine", Value::from("pdr")),
                ("frame", Value::U64(frame as u64)),
                ("top_frame", Value::U64(self.ctx.top() as u64)),
                ("queue", Value::U64(queue_len as u64)),
                ("obligations", Value::U64(self.stats.obligations)),
                ("clauses", Value::U64(self.ctx.clauses as u64)),
            ],
        );
    }

    /// Reconstructs the counterexample trace ending at the obligation
    /// `index`: `reset_step` (if any) drives the reset state into the
    /// obligation's state, the parent chain's step inputs walk to the root
    /// bad state, and `window` is the property window observed there.
    fn trace(
        &self,
        arena: &[Obligation],
        index: usize,
        reset_step: Option<BTreeMap<String, bool>>,
        window: &[BTreeMap<String, bool>],
    ) -> Counterexample {
        let mut frames = Vec::new();
        frames.extend(reset_step);
        let mut current = index;
        while let Some(parent) = arena[current].parent {
            frames.push(arena[current].step_inputs.clone());
            current = parent;
        }
        frames.extend(window.iter().cloned());
        Counterexample {
            property: self.property.name.clone(),
            violation_frame: frames.len() - 1,
            frames,
        }
    }

    /// One clause-propagation pass after opening a new top frame: every
    /// clause inductive relative to its own frame moves one frame up.
    /// Returns the fixpoint frame if two adjacent frames became equal.
    fn propagate(&mut self) -> Option<usize> {
        let _span = self.tracer.span("pdr.propagate");
        let top = self.ctx.top();
        for k in 1..top {
            let cubes = std::mem::take(&mut self.ctx.frame_cubes[k]);
            for cube in cubes {
                // F_k ∧ T ∧ cube' unsatisfiable ⇒ ¬cube also holds at k+1.
                let mut assumptions = self.ctx.frame_assumptions(k);
                assumptions.extend(cube.iter().map(|&entry| self.ctx.cube_lit(entry, true)));
                if self.ctx.solve(&assumptions) == SatResult::Unsat {
                    self.ctx.add_frame_clause(cube, k + 1);
                } else {
                    self.ctx.frame_cubes[k].push(cube);
                }
            }
            if self.ctx.frame_cubes[k].is_empty() {
                // F_k = F_{k+1}: the trailing sequence closed.
                return Some(k);
            }
        }
        None
    }

    fn run(&mut self, cancel: Option<&AtomicBool>) -> PdrOutcome {
        // Stateless netlist: the single (empty) state is initial, so the
        // property is equivalent to the one-window combinational query.
        if self.ctx.regs.is_empty() {
            let bad = self.ctx.bad;
            return match self.ctx.solve(&[bad]) {
                SatResult::Unsat => PdrOutcome::Proved {
                    certificate: Certificate {
                        property: self.property.name.clone(),
                        clauses: Vec::new(),
                    },
                    fixpoint_frame: 0,
                },
                SatResult::Sat(model) => {
                    let frames = self.ctx.window(self.spec, self.property, &model);
                    PdrOutcome::Falsified(Counterexample {
                        property: self.property.name.clone(),
                        violation_frame: frames.len() - 1,
                        frames,
                    })
                }
            };
        }

        self.ctx.push_frame(); // F_1
        loop {
            if cancel.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                return PdrOutcome::Unknown {
                    frames_explored: self.ctx.top(),
                };
            }
            // Block every bad state reachable within the current bound.
            loop {
                let top = self.ctx.top();
                let mut assumptions = self.ctx.frame_assumptions(top);
                assumptions.push(self.ctx.bad);
                match self.ctx.solve(&assumptions) {
                    SatResult::Unsat => break,
                    SatResult::Sat(model) => {
                        let cube = self.ctx.state_cube(&model);
                        let window = self.ctx.window(self.spec, self.property, &model);
                        if self.ctx.intersects_init(&cube) {
                            // The reset state itself violates the property.
                            return PdrOutcome::Falsified(Counterexample {
                                property: self.property.name.clone(),
                                violation_frame: window.len() - 1,
                                frames: window,
                            });
                        }
                        match self.block(cube, window, cancel) {
                            BlockOutcome::Blocked => {}
                            BlockOutcome::Counterexample(cex) => return PdrOutcome::Falsified(cex),
                            BlockOutcome::Cancelled => {
                                return PdrOutcome::Unknown {
                                    frames_explored: self.ctx.top(),
                                }
                            }
                        }
                    }
                }
            }
            if self.ctx.top() >= self.options.max_frames {
                return PdrOutcome::Unknown {
                    frames_explored: self.ctx.top(),
                };
            }
            self.ctx.push_frame();
            let top = self.ctx.top();
            self.emit_heartbeat(top, 0);
            if let Some(fixpoint) = self.propagate() {
                return PdrOutcome::Proved {
                    certificate: self.ctx.certificate(&self.property.name, fixpoint),
                    fixpoint_frame: fixpoint,
                };
            }
        }
    }
}

/// Whether every literal of `smaller` occurs in `larger` (both sorted by
/// register index).
fn subsumes(smaller: &Cube, larger: &Cube) -> bool {
    let mut it = larger.iter();
    smaller
        .iter()
        .all(|entry| it.by_ref().any(|candidate| candidate == entry))
}

/// Checks one sequential property on `netlist` against `spec` with IC3/PDR.
///
/// See the module docs for the algorithm. A [`PdrOutcome::Proved`] verdict
/// carries an explicit inductive-invariant [`Certificate`]; with
/// [`PdrOptions::validate_certificate`] (the default) the certificate has
/// been re-validated by independent SAT checks and the verdicts are in
/// [`PdrResult::validation`]. A [`PdrOutcome::Falsified`] trace replays
/// through [`ipcl_rtl::Simulator`] (callers assert this, as with BMC).
///
/// # Errors
///
/// As [`ipcl_bmc::check_property`]: [`BmcError::MissingSignals`] if the
/// property's stage has no `moe` signal in the netlist, [`BmcError::Rtl`]
/// if the netlist does not elaborate.
pub fn check_property_pdr(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &PdrOptions,
) -> Result<PdrResult, BmcError> {
    check_property_pdr_with_cancel(spec, netlist, property, options, None)
}

/// As [`check_property_pdr`], but polls `cancel` between queries and
/// returns [`PdrOutcome::Unknown`] as soon as it is set.
pub fn check_property_pdr_with_cancel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &PdrOptions,
    cancel: Option<&AtomicBool>,
) -> Result<PdrResult, BmcError> {
    check_property_pdr_traced(
        spec,
        netlist,
        property,
        options,
        cancel,
        &Tracer::disabled(),
    )
}

/// As [`check_property_pdr_with_cancel`], with an observability handle:
/// the run executes under a `pdr.check` span (encode under `pdr.encode`,
/// clause propagation under `pdr.propagate`, cube generalisation under
/// `pdr.generalize`, certificate re-checking under `pdr.validate`, SAT
/// queries under the solver's own `sat.solve`), logs one `pdr_obligation`
/// event per obligation push/pop with its frame and queue depth, and
/// folds the run's counters into the tracer's metrics.
pub fn check_property_pdr_traced(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    options: &PdrOptions,
    cancel: Option<&AtomicBool>,
    tracer: &Tracer,
) -> Result<PdrResult, BmcError> {
    let _span = tracer.span("pdr.check");
    let missing = ipcl_bmc::missing_property_signals(spec, netlist, property);
    if !missing.is_empty() {
        return Err(BmcError::MissingSignals(missing));
    }

    let mut pdr = Pdr::new(spec, netlist, property, *options, tracer)?;
    let outcome = pdr.run(cancel);
    let mut stats = pdr.stats.clone();
    stats.frames = pdr.ctx.top();
    stats.clauses = pdr.ctx.clauses;
    stats.solve_calls = pdr.ctx.solve_calls;
    stats.generalization_drops = pdr.ctx.generalization_drops;
    stats.conflicts = pdr.ctx.solver.stats().conflicts;
    stats.propagations = pdr.ctx.solver.stats().propagations;
    if tracer.is_enabled() {
        stats.emit(tracer, "pdr");
        pdr.ctx.solver.stats().emit(tracer, "sat");
        let u = pdr.ctx.enc.unroller().stats();
        tracer.counter("unroll.pdr.frames", u.frames);
        tracer.counter("unroll.pdr.gates", u.gates);
        tracer.counter("unroll.pdr.cache_hits", u.cache_hits);
    }

    let validation = match (&outcome, options.validate_certificate) {
        (PdrOutcome::Proved { certificate, .. }, true) => {
            let _validate = tracer.span("pdr.validate");
            Some(certificate.validate(spec, netlist, property)?)
        }
        _ => None,
    };

    Ok(PdrResult {
        property: property.clone(),
        outcome,
        validation,
        stats,
    })
}
