//! The portfolio checker: BMC falsification racing PDR proof.
//!
//! BMC finds counterexamples fast (and minimal) but can only prove up to
//! its unrolling bound via k-induction; PDR proves unboundedly but its
//! traces are not minimal. The portfolio runs both engines on scoped
//! threads against the same property, cooperatively cancelling the loser
//! through the engines' `cancel` flags once either has a *definitive*
//! verdict (falsified or proved) — so buggy designs get BMC-speed
//! falsification and correct designs get PDR-strength proofs, whichever
//! is available first. Cancellation is polled *between* SAT queries
//! (BMC: per depth; PDR: per obligation), not inside one, so the race's
//! wall-clock is the winner's time plus the loser's single in-flight
//! query — tight for the small queries interlock controllers generate.
//!
//! Both engines are run on the *unconditional* property semantics (any
//! input sequence from reset): the BMC racer's `quiet_cycles` is forced to
//! zero, because PDR has no quiet-cycle discipline and two engines racing
//! on different questions could otherwise disagree. Consequently a
//! portfolio counterexample may be shorter than the default BMC engine's
//! (it may exercise a noisy reset frame), but it replays all the same.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use ipcl_bmc::{
    check_property_traced, BmcError, BmcOptions, BmcOutcome, BmcResult, Counterexample,
};
use ipcl_bmc::{Netlist, SequentialProperty};
use ipcl_core::FunctionalSpec;
use ipcl_trace::{Tracer, Value};

use crate::certificate::Certificate;
use crate::engine::{check_property_pdr_traced, PdrOptions, PdrOutcome, PdrResult};
use crate::parallel::{check_property_pdr_parallel_traced, ParallelPdrOptions};

/// Which engine produced the portfolio's verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortfolioWinner {
    /// The BMC / k-induction racer finished first.
    Bmc,
    /// The PDR racer finished first.
    Pdr,
}

/// Result of racing both engines on one property.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// The property that was checked.
    pub property: SequentialProperty,
    /// The engine whose definitive verdict won the race (`None` when both
    /// came back unknown).
    pub winner: Option<PortfolioWinner>,
    /// The BMC racer's result.
    pub bmc: BmcResult,
    /// The PDR racer's result.
    pub pdr: PdrResult,
}

impl PortfolioResult {
    /// Whether the winning verdict is a proof.
    pub fn is_proved(&self) -> bool {
        match self.winner {
            Some(PortfolioWinner::Bmc) => self.bmc.outcome.is_proved(),
            Some(PortfolioWinner::Pdr) => self.pdr.outcome.is_proved(),
            None => false,
        }
    }

    /// Whether the winning verdict is a falsification.
    pub fn is_falsified(&self) -> bool {
        self.counterexample().is_some()
    }

    /// The winning counterexample, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self.winner {
            Some(PortfolioWinner::Bmc) => self.bmc.outcome.counterexample(),
            Some(PortfolioWinner::Pdr) => self.pdr.outcome.counterexample(),
            None => None,
        }
    }

    /// The inductive-invariant certificate, when the proof came from PDR.
    /// (A k-induction proof carries no certificate; its witness is the
    /// unsatisfiability of the step case.)
    pub fn certificate(&self) -> Option<&Certificate> {
        match self.winner {
            Some(PortfolioWinner::Pdr) => self.pdr.outcome.certificate(),
            _ => None,
        }
    }
}

fn verdict_name(proved: bool) -> &'static str {
    if proved {
        "proved"
    } else {
        "falsified"
    }
}

fn bmc_definitive(result: &Result<BmcResult, BmcError>) -> bool {
    matches!(
        result,
        Ok(BmcResult {
            outcome: BmcOutcome::Falsified(_) | BmcOutcome::Proved { .. },
            ..
        })
    )
}

fn pdr_definitive(result: &Result<PdrResult, BmcError>) -> bool {
    matches!(
        result,
        Ok(PdrResult {
            outcome: PdrOutcome::Falsified(_) | PdrOutcome::Proved { .. },
            ..
        })
    )
}

/// Races BMC falsification (with k-induction) against a PDR proof on two
/// scoped threads; the first definitive verdict cancels the other engine.
///
/// See the module docs for the exact semantics (`quiet_cycles` is forced
/// to zero so both racers decide the same unconditional property).
///
/// # Errors
///
/// As [`ipcl_bmc::check_property`]; if either racer errors, the error is
/// propagated (both racers validate the same netlist, so they fail
/// together).
pub fn check_property_portfolio(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &PdrOptions,
) -> Result<PortfolioResult, BmcError> {
    check_property_portfolio_traced(
        spec,
        netlist,
        property,
        bmc_options,
        pdr_options,
        &Tracer::disabled(),
    )
}

/// [`check_property_portfolio`] with a [`Tracer`]: the race itself runs
/// under a `portfolio.race` span on the caller's thread, each racer opens
/// its own engine span (`bmc.check` / `pdr.check`) on its scoped thread,
/// and the cancellation handshake is logged as `portfolio_cancel` /
/// `portfolio_verdict` events — so one trace interleaves both engines'
/// event streams, distinguishable by thread id.
///
/// # Errors
///
/// As [`check_property_portfolio`].
pub fn check_property_portfolio_traced(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &PdrOptions,
    tracer: &Tracer,
) -> Result<PortfolioResult, BmcError> {
    check_property_portfolio_with_cancel(
        spec,
        netlist,
        property,
        bmc_options,
        pdr_options,
        None,
        tracer,
    )
}

/// [`check_property_portfolio_traced`] with an **external** cancellation
/// flag: when the caller raises `cancel`, both racers stop at their next
/// poll point and the race returns with whatever (possibly `Unknown`)
/// results are in hand. This is the job-cancellation hook of `ipcl-serve` —
/// the same cooperative machinery the race itself uses to cancel the
/// losing engine, re-exposed to the job owner.
///
/// # Errors
///
/// As [`check_property_portfolio`].
pub fn check_property_portfolio_with_cancel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &PdrOptions,
    cancel: Option<&AtomicBool>,
    tracer: &Tracer,
) -> Result<PortfolioResult, BmcError> {
    race_portfolio(
        spec,
        netlist,
        property,
        bmc_options,
        cancel,
        tracer,
        |flag| check_property_pdr_traced(spec, netlist, property, pdr_options, Some(flag), tracer),
    )
}

/// The portfolio with the parallel proof engine as the PDR racer: BMC
/// falsification races [`check_property_pdr_parallel_traced`]'s
/// work-stealing round scheduler. One BMC thread plus
/// [`ParallelPdrOptions::threads`] PDR workers run concurrently; the
/// first definitive verdict cancels the other engine (the parallel
/// engine polls its cancel flag between rounds).
///
/// The PDR racer keeps its determinism guarantee — for a *fixed winner*,
/// its verdict, trace and certificate are bit-identical across worker
/// counts — but which engine wins the race is a wall-clock property, as
/// in the sequential portfolio.
///
/// # Errors
///
/// As [`check_property_portfolio`].
pub fn check_property_portfolio_parallel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &ParallelPdrOptions,
) -> Result<PortfolioResult, BmcError> {
    check_property_portfolio_parallel_traced(
        spec,
        netlist,
        property,
        bmc_options,
        pdr_options,
        &Tracer::disabled(),
    )
}

/// [`check_property_portfolio_parallel`] with a [`Tracer`]; see
/// [`check_property_portfolio_traced`] for the race's observability and
/// the parallel engine's docs for its worker-tagged event stream.
///
/// # Errors
///
/// As [`check_property_portfolio`].
pub fn check_property_portfolio_parallel_traced(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &ParallelPdrOptions,
    tracer: &Tracer,
) -> Result<PortfolioResult, BmcError> {
    check_property_portfolio_parallel_with_cancel(
        spec,
        netlist,
        property,
        bmc_options,
        pdr_options,
        None,
        tracer,
    )
}

/// [`check_property_portfolio_parallel_traced`] with an **external**
/// cancellation flag; see [`check_property_portfolio_with_cancel`].
///
/// # Errors
///
/// As [`check_property_portfolio`].
pub fn check_property_portfolio_parallel_with_cancel(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    pdr_options: &ParallelPdrOptions,
    cancel: Option<&AtomicBool>,
    tracer: &Tracer,
) -> Result<PortfolioResult, BmcError> {
    race_portfolio(
        spec,
        netlist,
        property,
        bmc_options,
        cancel,
        tracer,
        |flag| {
            check_property_pdr_parallel_traced(
                spec,
                netlist,
                property,
                pdr_options,
                Some(flag),
                tracer,
            )
        },
    )
}

/// The shared race body: BMC on one scoped thread, the given PDR racer
/// (sequential or parallel) on another, first definitive verdict cancels.
/// An external `cancel` flag, when given, is forwarded into the race's
/// internal flag by a poller thread, so a job owner can stop both racers
/// mid-flight without either engine knowing about the extra layer.
fn race_portfolio<F>(
    spec: &FunctionalSpec,
    netlist: &Netlist,
    property: &SequentialProperty,
    bmc_options: &BmcOptions,
    external_cancel: Option<&AtomicBool>,
    tracer: &Tracer,
    pdr_racer: F,
) -> Result<PortfolioResult, BmcError>
where
    F: FnOnce(&AtomicBool) -> Result<PdrResult, BmcError> + Send,
{
    let _span = tracer.span("portfolio.race");
    // Announce the race on the live-progress feed; the racers' own
    // `heartbeat` events (engine = "bmc" / "pdr" / "sat") take over from
    // here, and `portfolio_cancel` / `portfolio_verdict` close it out.
    tracer.event(
        "heartbeat",
        &[
            ("engine", Value::from("portfolio")),
            ("property", Value::Str(property.name.clone().into())),
        ],
    );

    // Align the BMC racer with PDR's unconditional semantics.
    let bmc_options = BmcOptions {
        quiet_cycles: 0,
        ..*bmc_options
    };

    let cancel = AtomicBool::new(false);
    let finish_order = AtomicUsize::new(0);

    let (bmc, bmc_stamp, pdr, pdr_stamp) = std::thread::scope(|scope| {
        // Forward the owner's cancellation into the race's internal flag.
        // The poller exits as soon as the internal flag is set — by the
        // owner (via this thread), by the winning racer, or by the final
        // store below once both racers have returned.
        if let Some(external) = external_cancel {
            scope.spawn(|| {
                while !cancel.load(Ordering::Relaxed) {
                    if external.load(Ordering::Relaxed) {
                        cancel.store(true, Ordering::Relaxed);
                        tracer.event("portfolio_cancel", &[("engine", Value::from("external"))]);
                        break;
                    }
                    std::thread::park_timeout(std::time::Duration::from_millis(2));
                }
            });
        }
        let bmc_handle = scope.spawn(|| {
            let result =
                check_property_traced(spec, netlist, property, &bmc_options, Some(&cancel), tracer);
            let stamp = finish_order.fetch_add(1, Ordering::SeqCst);
            if bmc_definitive(&result) {
                cancel.store(true, Ordering::Relaxed);
                tracer.event("portfolio_cancel", &[("engine", Value::from("bmc"))]);
            }
            (result, stamp)
        });
        let pdr_handle = scope.spawn(|| {
            let result = pdr_racer(&cancel);
            let stamp = finish_order.fetch_add(1, Ordering::SeqCst);
            if pdr_definitive(&result) {
                cancel.store(true, Ordering::Relaxed);
                tracer.event("portfolio_cancel", &[("engine", Value::from("pdr"))]);
            }
            (result, stamp)
        });
        let (bmc, bmc_stamp) = bmc_handle.join().expect("BMC racer thread panicked");
        let (pdr, pdr_stamp) = pdr_handle.join().expect("PDR racer thread panicked");
        // Release the external-cancel poller (both racers may have come
        // back Unknown without anyone setting the flag).
        cancel.store(true, Ordering::Relaxed);
        (bmc, bmc_stamp, pdr, pdr_stamp)
    });

    let bmc = bmc?;
    let pdr = pdr?;

    let bmc_def = matches!(
        bmc.outcome,
        BmcOutcome::Falsified(_) | BmcOutcome::Proved { .. }
    );
    let pdr_def = matches!(
        pdr.outcome,
        PdrOutcome::Falsified(_) | PdrOutcome::Proved { .. }
    );
    let winner = match (bmc_def, pdr_def) {
        (true, true) => {
            // Both engines decided the same unconditional property: a
            // proved/falsified split would mean one of them is unsound.
            assert_eq!(
                bmc.outcome.is_proved(),
                pdr.outcome.is_proved(),
                "BMC and PDR disagree on {}",
                property.name
            );
            if bmc_stamp < pdr_stamp {
                Some(PortfolioWinner::Bmc)
            } else {
                Some(PortfolioWinner::Pdr)
            }
        }
        (true, false) => Some(PortfolioWinner::Bmc),
        (false, true) => Some(PortfolioWinner::Pdr),
        (false, false) => None,
    };

    if tracer.is_enabled() {
        let (winner_name, verdict) = match winner {
            Some(PortfolioWinner::Bmc) => ("bmc", verdict_name(bmc.outcome.is_proved())),
            Some(PortfolioWinner::Pdr) => ("pdr", verdict_name(pdr.outcome.is_proved())),
            None => ("none", "unknown"),
        };
        tracer.event(
            "portfolio_verdict",
            &[
                ("winner", Value::from(winner_name)),
                ("verdict", Value::from(verdict)),
            ],
        );
    }

    Ok(PortfolioResult {
        property: property.clone(),
        winner,
        bmc,
        pdr,
    })
}
