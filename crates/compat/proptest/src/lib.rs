//! Offline stand-in for the `proptest` property-testing framework.
//!
//! crates.io is unreachable from the build environment, so this crate
//! re-implements the slice of proptest the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer ranges, tuples
//!   and [`collection::vec`];
//! * [`any`] over an [`Arbitrary`] trait for the primitive types;
//! * the [`proptest!`] macro, running each test over `ProptestConfig::cases`
//!   generated inputs from a deterministic per-test RNG;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! There is **no shrinking**: a failing case reports the panic message of
//! the first failure only. Cases are deterministic (seeded from the test
//! name), so failures reproduce exactly across runs.

use std::fmt;

/// Deterministic SplitMix64 generator driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (e.g. the test name), so
    /// each test draws an independent but reproducible stream.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in label.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128 * span) >> 64
    }
}

/// Why a generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count towards
    /// the configured number of cases.
    Reject,
    /// A [`prop_assert!`]-style assertion failed.
    Fail(String),
}

/// Per-`proptest!` configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe producing random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `map` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Formats a failed-assertion message (internal helper for the macros).
pub fn fail_message(kind: &str, detail: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(format!("{kind}: {detail}"))
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::fail_message(
                "prop_assert",
                format_args!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::fail_message(
                "prop_assert_eq",
                format_args!("{:?} != {:?}", left, right),
            ));
        }
    }};
}

/// Rejects the current case unless the assumption holds; rejected cases do
/// not count towards the configured case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` body runs
/// once per generated case; see the crate docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@configured ($config) $($rest)*);
    };
    (@configured ($config:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many rejected cases ({} attempts for {} accepted)",
                        attempts,
                        accepted
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!("proptest case {} failed: {}", accepted + 1, message);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@configured ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// One-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        let strat = (1u32..=4, 0u8..3, any::<bool>());
        for _ in 0..200 {
            let (a, b, _) = strat.generate(&mut rng);
            assert!((1..=4).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vecs");
        let strat = collection::vec(0u32..10, 2..=5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("map");
        let strat = (1u32..=3).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(y in 5u64..=6) {
            prop_assert!(y == 5 || y == 6);
        }
    }
}
