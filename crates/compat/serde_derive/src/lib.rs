//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` must parse and accept the usual
//! `#[serde(...)]` helper attributes, but with no serializer backend in the
//! tree there is nothing to generate — both derives expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
