//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on data types (no serializer backend such as `serde_json` is
//! in the dependency tree). Since crates.io is unreachable from the build
//! environment, this crate supplies the marker traits and no-op derive
//! macros so those annotations compile; when a real serializer becomes
//! available, swapping the workspace dependency back to upstream serde is a
//! one-line change in the root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods: there is no
/// serializer backend in this offline build).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods: there is no
/// deserializer backend in this offline build).
pub trait Deserialize<'de> {}
