//! Offline stand-in for the `criterion` benchmark framework.
//!
//! crates.io is unreachable from the build environment, so this crate
//! re-implements the slice of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`
//! / `bench_with_input`, `BenchmarkId`, `black_box`) on top of a simple
//! wall-clock harness: warm-up, then timed batches for the configured
//! measurement window, reporting mean and minimum per-iteration times.
//!
//! It produces no HTML reports and does no statistical outlier analysis —
//! the point is that `cargo bench` runs, produces stable comparable numbers,
//! and the bench sources stay source-compatible with real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id distinguished by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Measurement settings shared by a group's benchmarks.
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Accepted for source compatibility; command-line configuration is not
    /// supported by the stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name,
            settings,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().render(), self.settings, |b| routine(b));
        self
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (used to size timed batches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_benchmark(&label, self.settings, |b| routine(b));
        self
    }

    /// Benchmarks a closure over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.settings, |b| routine(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for compatibility).
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    total: Duration,
    iterations: u64,
    fastest_batch: Duration,
    batch_size: u64,
}

impl Bencher {
    /// Times `routine`, repeating it for the configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: establish a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size batches so that `sample_size` batches fill the window.
        let window = self.settings.measurement_time;
        let target_batch = window / self.settings.sample_size.max(1) as u32;
        let batch_size = if per_iter.is_zero() {
            1_000
        } else {
            (target_batch.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.batch_size = batch_size;

        let measure_start = Instant::now();
        while measure_start.elapsed() < window {
            let batch_start = Instant::now();
            for _ in 0..batch_size {
                black_box(routine());
            }
            let elapsed = batch_start.elapsed();
            self.total += elapsed;
            self.iterations += batch_size;
            if elapsed < self.fastest_batch {
                self.fastest_batch = elapsed;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, mut routine: F) {
    let mut bencher = Bencher {
        settings,
        total: Duration::ZERO,
        iterations: 0,
        fastest_batch: Duration::MAX,
        batch_size: 1,
    };
    routine(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {label:<48} (no measurement: b.iter was never called)");
        return;
    }
    let mean = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
    let best = if bencher.fastest_batch == Duration::MAX {
        mean
    } else {
        bencher.fastest_batch.as_nanos() as f64 / bencher.batch_size as f64
    };
    println!(
        "  {label:<48} mean {:>12}  min {:>12}  ({} iters)",
        format_nanos(mean),
        format_nanos(best),
        bencher.iterations
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from_parameter("p").render(), "p");
        assert_eq!(BenchmarkId::from("name").render(), "name");
    }
}
