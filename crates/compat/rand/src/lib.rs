//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! provides the (small) slice of the rand 0.9 API the workspace actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods [`Rng::random_range`] and [`Rng::random_bool`].
//!
//! The generator is SplitMix64 — statistically fine for test stimulus and
//! workload generation, deterministic for a given seed, and obviously **not**
//! cryptographic. Range sampling uses the widening-multiply technique, so it
//! is uniform enough for simulation purposes without rejection loops.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `probability`.
    fn random_bool(&mut self, probability: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < probability
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly. Implemented for `Range` and
/// `RangeInclusive` over the primitive integer types.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps `word` to `[0, span)` by widening multiply (`span > 0`).
fn scale(word: u64, span: u128) -> u128 {
    (word as u128 * span) >> 64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + scale(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + scale(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Sebastiano Vigna's SplitMix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let s = rng.random_range(-2i32..=2);
            assert!((-2..=2).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn range_values_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
