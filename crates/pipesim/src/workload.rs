//! Instructions, LIW packets, programs and random workload generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One operation bound for a specific pipe of the architecture.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Name of the pipe the operation executes on.
    pub pipe: String,
    /// Destination register written at completion, if any.
    pub dest: Option<u32>,
    /// Source register read at issue, if any.
    pub src: Option<u32>,
    /// Number of cycles the machine stays in the wait state when this
    /// operation reaches the issue stage (0 for ordinary operations). Only
    /// meaningful on pipes that observe the wait state.
    pub wait_cycles: u32,
}

impl Op {
    /// An ordinary operation on `pipe` reading `src` and writing `dest`.
    pub fn new(pipe: &str, src: Option<u32>, dest: Option<u32>) -> Self {
        Op {
            pipe: pipe.to_owned(),
            dest,
            src,
            wait_cycles: 0,
        }
    }

    /// A wait operation on `pipe` freezing issue for `cycles` cycles.
    pub fn wait(pipe: &str, cycles: u32) -> Self {
        Op {
            pipe: pipe.to_owned(),
            dest: None,
            src: None,
            wait_cycles: cycles,
        }
    }

    /// Whether this is a wait operation.
    pub fn is_wait(&self) -> bool {
        self.wait_cycles > 0
    }
}

/// A long-instruction-word packet: at most one operation per pipe, all issued
/// together (the lock-step issue group issues a whole packet or nothing).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The operations of the packet.
    pub ops: Vec<Op>,
}

impl Packet {
    /// Creates a packet from operations.
    ///
    /// # Panics
    ///
    /// Panics if two operations target the same pipe.
    pub fn new<I: IntoIterator<Item = Op>>(ops: I) -> Self {
        let ops: Vec<Op> = ops.into_iter().collect();
        for (i, op) in ops.iter().enumerate() {
            assert!(
                !ops[..i].iter().any(|other| other.pipe == op.pipe),
                "packet has two operations for pipe '{}'",
                op.pipe
            );
        }
        Packet { ops }
    }

    /// The operation bound for `pipe`, if any.
    pub fn op_for(&self, pipe: &str) -> Option<&Op> {
        self.ops.iter().find(|op| op.pipe == pipe)
    }

    /// Number of operations in the packet.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the packet carries no operations (a fetch bubble).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A program: an ordered sequence of packets.
pub type Program = Vec<Packet>;

/// Configuration of the random workload generator.
///
/// The generator produces programs whose register dependence and wait-state
/// density stress the scoreboard and wait interlocks; pipe utilisation
/// controls completion-bus contention.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of packets to generate.
    pub packets: usize,
    /// Pipes that may receive operations (pipe name, probability that a
    /// packet carries an op for it).
    pub pipe_utilisation: Vec<(String, f64)>,
    /// Probability that a generated operation reads a recently written
    /// register (creating a scoreboard dependence).
    pub dependence_bias: f64,
    /// Probability that a packet is a wait instruction (on the first
    /// wait-observing pipe).
    pub wait_probability: f64,
    /// Wait duration in cycles when a wait instruction is generated.
    pub wait_cycles: u32,
    /// Number of architectural registers.
    pub registers: u32,
}

impl Default for WorkloadConfig {
    /// Defaults match the paper's example architecture: both pipes busy,
    /// moderate register dependence, occasional waits, eight registers.
    fn default() -> Self {
        WorkloadConfig {
            packets: 1_000,
            pipe_utilisation: vec![("long".to_owned(), 0.8), ("short".to_owned(), 0.8)],
            dependence_bias: 0.4,
            wait_probability: 0.02,
            wait_cycles: 3,
            registers: 8,
        }
    }
}

impl WorkloadConfig {
    /// Sets the number of packets.
    pub fn with_packets(mut self, packets: usize) -> Self {
        self.packets = packets;
        self
    }

    /// Sets pipe utilisation probabilities.
    pub fn with_pipes<I: IntoIterator<Item = (String, f64)>>(mut self, pipes: I) -> Self {
        self.pipe_utilisation = pipes.into_iter().collect();
        self
    }

    /// Sets the register-dependence bias.
    pub fn with_dependence_bias(mut self, bias: f64) -> Self {
        self.dependence_bias = bias;
        self
    }

    /// Sets the wait-instruction probability.
    pub fn with_wait_probability(mut self, p: f64) -> Self {
        self.wait_probability = p;
        self
    }

    /// Sets the number of architectural registers.
    pub fn with_registers(mut self, registers: u32) -> Self {
        self.registers = registers;
        self
    }

    /// A configuration matching an [`ipcl_core::ArchSpec`]: every pipe gets
    /// the given utilisation and the register count follows the scoreboard.
    pub fn for_arch(arch: &ipcl_core::ArchSpec, utilisation: f64) -> Self {
        WorkloadConfig {
            pipe_utilisation: arch
                .pipes
                .iter()
                .map(|p| (p.name.clone(), utilisation))
                .collect(),
            registers: arch.scoreboard_registers,
            ..Self::default()
        }
    }

    /// Generates a reproducible random program from `seed`.
    pub fn generate(&self, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut recent_dests: Vec<u32> = Vec::new();
        let mut program = Vec::with_capacity(self.packets);
        for _ in 0..self.packets {
            if !self.pipe_utilisation.is_empty() && rng.random_bool(self.wait_probability) {
                let pipe = self.pipe_utilisation[0].0.clone();
                program.push(Packet::new([Op::wait(&pipe, self.wait_cycles)]));
                continue;
            }
            let mut ops = Vec::new();
            for (pipe, utilisation) in &self.pipe_utilisation {
                if !rng.random_bool(*utilisation) {
                    continue;
                }
                let src = if !recent_dests.is_empty() && rng.random_bool(self.dependence_bias) {
                    Some(recent_dests[rng.random_range(0..recent_dests.len())])
                } else if rng.random_bool(0.8) {
                    Some(rng.random_range(0..self.registers))
                } else {
                    None
                };
                let dest = if rng.random_bool(0.85) {
                    Some(rng.random_range(0..self.registers))
                } else {
                    None
                };
                if let Some(d) = dest {
                    recent_dests.push(d);
                    if recent_dests.len() > 4 {
                        recent_dests.remove(0);
                    }
                }
                ops.push(Op::new(pipe, src, dest));
            }
            program.push(Packet::new(ops));
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let op = Op::new("long", Some(3), Some(5));
        assert_eq!(op.pipe, "long");
        assert_eq!(op.src, Some(3));
        assert_eq!(op.dest, Some(5));
        assert!(!op.is_wait());
        let wait = Op::wait("long", 4);
        assert!(wait.is_wait());
        assert_eq!(wait.wait_cycles, 4);
    }

    #[test]
    fn packet_rejects_duplicate_pipes() {
        let result = std::panic::catch_unwind(|| {
            Packet::new([Op::new("long", None, None), Op::new("long", None, None)])
        });
        assert!(result.is_err());
    }

    #[test]
    fn packet_lookup() {
        let packet = Packet::new([
            Op::new("long", Some(1), None),
            Op::new("short", None, Some(2)),
        ]);
        assert_eq!(packet.len(), 2);
        assert!(!packet.is_empty());
        assert!(packet.op_for("long").is_some());
        assert!(packet.op_for("mul").is_none());
        assert!(Packet::default().is_empty());
    }

    #[test]
    fn generator_is_reproducible() {
        let config = WorkloadConfig::default().with_packets(100);
        let a = config.generate(42);
        let b = config.generate(42);
        let c = config.generate(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn generator_respects_register_bound() {
        let config = WorkloadConfig::default()
            .with_packets(300)
            .with_registers(4);
        let program = config.generate(1);
        for packet in &program {
            for op in &packet.ops {
                if let Some(d) = op.dest {
                    assert!(d < 4);
                }
                if let Some(s) = op.src {
                    assert!(s < 4);
                }
            }
        }
    }

    #[test]
    fn generator_produces_waits_when_asked() {
        let config = WorkloadConfig::default()
            .with_packets(500)
            .with_wait_probability(0.3);
        let program = config.generate(9);
        let waits = program
            .iter()
            .filter(|p| p.ops.iter().any(Op::is_wait))
            .count();
        assert!(waits > 50, "expected plenty of wait packets, got {waits}");
        let no_wait = WorkloadConfig::default()
            .with_packets(200)
            .with_wait_probability(0.0)
            .generate(9);
        assert!(no_wait.iter().all(|p| p.ops.iter().all(|o| !o.is_wait())));
    }

    #[test]
    fn for_arch_covers_all_pipes() {
        let arch = ipcl_core::ArchSpec::firepath_like();
        let config = WorkloadConfig::for_arch(&arch, 0.5);
        assert_eq!(config.pipe_utilisation.len(), 6);
        assert_eq!(config.registers, 64);
        let program = config.with_packets(50).generate(3);
        assert_eq!(program.len(), 50);
    }

    #[test]
    fn dependence_bias_creates_raw_dependences() {
        let biased = WorkloadConfig::default()
            .with_packets(400)
            .with_dependence_bias(1.0)
            .generate(5);
        // With full bias, many sources repeat recent destinations.
        let mut dependent = 0;
        let mut recent: Vec<u32> = Vec::new();
        for packet in &biased {
            for op in &packet.ops {
                if let Some(s) = op.src {
                    if recent.contains(&s) {
                        dependent += 1;
                    }
                }
                if let Some(d) = op.dest {
                    recent.push(d);
                    if recent.len() > 4 {
                        recent.remove(0);
                    }
                }
            }
        }
        assert!(
            dependent > 100,
            "expected many dependent ops, got {dependent}"
        );
    }
}
