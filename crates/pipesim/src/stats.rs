//! Simulation statistics: throughput, stall accounting and hazard counts.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Ground-truth functional-hazard counters observed by the machine,
/// independent of what the interlock policy claimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HazardCounts {
    /// A stage accepted a new operation while still holding one that did not
    /// move (the overwrite hazard the back-pressure rules prevent).
    pub overwrites: u64,
    /// An operation issued while one of its operands was outstanding and not
    /// bypassed (read-after-write hazard past the scoreboard).
    pub raw_violations: u64,
    /// A completion stage vacated without winning the completion bus (its
    /// result was dropped).
    pub lost_completions: u64,
}

impl HazardCounts {
    /// Total number of hazards of any kind.
    pub fn total(&self) -> u64 {
        self.overwrites + self.raw_violations + self.lost_completions
    }
}

/// Statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Name of the interlock policy that produced this run.
    pub policy: String,
    /// Elapsed cycles.
    pub cycles: u64,
    /// LIW packets issued.
    pub packets_issued: u64,
    /// Operations completed (retired over a completion bus or drained).
    pub ops_completed: u64,
    /// Cycles spent in the wait state.
    pub wait_cycles: u64,
    /// Per stage (`pipe.stage` prefix): cycles its `moe` flag was clear.
    pub stall_cycles_per_stage: BTreeMap<String, u64>,
    /// Per stall-rule label: stage-cycles in which a stalled stage had that
    /// rule's condition true.
    pub stalls_by_cause: BTreeMap<String, u64>,
    /// Stage-cycles where the policy stalled although the derived maximal
    /// interlock would have allowed the stage to move — the paper's
    /// *performance bugs*.
    pub unnecessary_stalls: u64,
    /// Unnecessary stalls per stage.
    pub unnecessary_by_stage: BTreeMap<String, u64>,
    /// Ground-truth functional hazards.
    pub hazards: HazardCounts,
}

impl SimStats {
    /// Cycles per completed operation (`f64::INFINITY` when nothing
    /// completed).
    pub fn cpi(&self) -> f64 {
        if self.ops_completed == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.ops_completed as f64
        }
    }

    /// Completed operations per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops_completed as f64 / self.cycles as f64
        }
    }

    /// Total stage-cycles spent stalled.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles_per_stage.values().sum()
    }

    /// Fraction of stage-stall cycles that were unnecessary.
    pub fn unnecessary_stall_fraction(&self) -> f64 {
        let total = self.total_stall_cycles();
        if total == 0 {
            0.0
        } else {
            self.unnecessary_stalls as f64 / total as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy={} cycles={} packets={} ops={} ipc={:.3} stalls={} unnecessary={} hazards={}",
            self.policy,
            self.cycles,
            self.packets_issued,
            self.ops_completed,
            self.ipc(),
            self.total_stall_cycles(),
            self.unnecessary_stalls,
            self.hazards.total()
        )?;
        for (stage, count) in &self.stall_cycles_per_stage {
            let unnecessary = self.unnecessary_by_stage.get(stage).copied().unwrap_or(0);
            writeln!(
                f,
                "  stage {stage}: {count} stall cycles ({unnecessary} unnecessary)"
            )?;
        }
        for (cause, count) in &self.stalls_by_cause {
            writeln!(f, "  cause {cause}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hazard_total() {
        let hazards = HazardCounts {
            overwrites: 2,
            raw_violations: 3,
            lost_completions: 4,
        };
        assert_eq!(hazards.total(), 9);
        assert_eq!(HazardCounts::default().total(), 0);
    }

    #[test]
    fn derived_metrics() {
        let mut stats = SimStats {
            policy: "maximal".into(),
            cycles: 100,
            packets_issued: 40,
            ops_completed: 50,
            ..Default::default()
        };
        assert!((stats.cpi() - 2.0).abs() < 1e-9);
        assert!((stats.ipc() - 0.5).abs() < 1e-9);
        stats.stall_cycles_per_stage.insert("long.1".into(), 10);
        stats.stall_cycles_per_stage.insert("long.2".into(), 30);
        stats.unnecessary_stalls = 20;
        assert_eq!(stats.total_stall_cycles(), 40);
        assert!((stats.unnecessary_stall_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_metrics() {
        let stats = SimStats::default();
        assert!(stats.cpi().is_infinite());
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.unnecessary_stall_fraction(), 0.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let mut stats = SimStats {
            policy: "conservative-scoreboard".into(),
            cycles: 10,
            ops_completed: 5,
            ..Default::default()
        };
        stats.stall_cycles_per_stage.insert("long.1".into(), 3);
        stats.stalls_by_cause.insert("scoreboard".into(), 3);
        let rendered = stats.to_string();
        assert!(rendered.contains("conservative-scoreboard"));
        assert!(rendered.contains("stage long.1"));
        assert!(rendered.contains("cause scoreboard"));
    }
}
