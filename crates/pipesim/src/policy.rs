//! Pluggable interlock policies: the derived maximal policy, conservative
//! (performance-bug) variants and broken (functional-bug) variants.

use ipcl_core::fixpoint::derive_concrete;
use ipcl_core::FunctionalSpec;
use ipcl_expr::Assignment;

/// Summary of machine state that policies may consult in addition to the
/// specification environment signals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineView {
    /// Whether any scoreboard bit is currently set.
    pub any_scoreboard_bit: bool,
    /// Whether any pipe lost completion-bus arbitration this cycle.
    pub completion_contention: bool,
    /// Cycles elapsed since reset.
    pub cycle: u64,
}

/// Inputs handed to a policy every cycle.
#[derive(Debug)]
pub struct PolicyInputs<'a> {
    /// The functional specification of the architecture's interlock.
    pub spec: &'a FunctionalSpec,
    /// Concrete values of all environment signals this cycle.
    pub env: &'a Assignment,
    /// Machine-state summary.
    pub view: MachineView,
}

/// An interlock implementation: decides the `moe` flag of every stage from
/// the current environment.
pub trait InterlockPolicy {
    /// Short name used in experiment output.
    fn name(&self) -> &'static str;

    /// Computes the `moe` assignment (one value per stage `moe` flag).
    fn moe_flags(&self, inputs: &PolicyInputs<'_>) -> Assignment;
}

/// The maximum-performance interlock: evaluates the fixed-point derivation of
/// the functional specification every cycle. Stalls exactly when functionally
/// necessary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaximalInterlock;

impl InterlockPolicy for MaximalInterlock {
    fn name(&self) -> &'static str {
        "maximal"
    }

    fn moe_flags(&self, inputs: &PolicyInputs<'_>) -> Assignment {
        derive_concrete(inputs.spec, inputs.env)
    }
}

/// Classes of over-conservative interlock behaviour (performance bugs).
///
/// Each variant stalls in strictly more situations than necessary, so it
/// never violates the functional specification but does violate the
/// performance specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConservativeVariant {
    /// Stall every issue stage whenever *any* scoreboard bit is set, ignoring
    /// both the bypass and whether the issuing instruction actually reads the
    /// outstanding register.
    StallIssueOnAnyScoreboardHit,
    /// Stall *every* stage of a pipe that loses completion-bus arbitration,
    /// whether or not the intermediate stages hold anything (the
    /// pre-redesign completion logic the paper's Results section alludes to).
    StallWholeLosingPipe,
    /// Propagate a downstream stall to the predecessor even when the
    /// predecessor holds a bubble (ignores the `rtm` qualification).
    IgnoreRtmQualification,
}

impl ConservativeVariant {
    /// All variants, for experiment sweeps.
    pub const ALL: [ConservativeVariant; 3] = [
        ConservativeVariant::StallIssueOnAnyScoreboardHit,
        ConservativeVariant::StallWholeLosingPipe,
        ConservativeVariant::IgnoreRtmQualification,
    ];
}

/// An interlock that starts from the maximal assignment and then applies one
/// class of unnecessary stalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConservativeInterlock {
    /// Which unnecessary-stall behaviour is injected.
    pub variant: ConservativeVariant,
}

impl ConservativeInterlock {
    /// Creates a conservative interlock with the given bug class.
    pub fn new(variant: ConservativeVariant) -> Self {
        ConservativeInterlock { variant }
    }
}

impl InterlockPolicy for ConservativeInterlock {
    fn name(&self) -> &'static str {
        match self.variant {
            ConservativeVariant::StallIssueOnAnyScoreboardHit => "conservative-scoreboard",
            ConservativeVariant::StallWholeLosingPipe => "conservative-completion",
            ConservativeVariant::IgnoreRtmQualification => "conservative-no-rtm",
        }
    }

    fn moe_flags(&self, inputs: &PolicyInputs<'_>) -> Assignment {
        let mut moe = derive_concrete(inputs.spec, inputs.env);
        match self.variant {
            ConservativeVariant::StallIssueOnAnyScoreboardHit => {
                if inputs.view.any_scoreboard_bit {
                    for stage in inputs.spec.stages() {
                        if stage.stage.stage == 1 {
                            moe.set(stage.moe, false);
                        }
                    }
                }
            }
            ConservativeVariant::StallWholeLosingPipe => {
                // Find pipes that requested the completion bus but were not
                // granted, and stall every one of their stages.
                let pool = inputs.spec.pool();
                let losing: Vec<String> = inputs
                    .spec
                    .stages()
                    .iter()
                    .map(|s| s.stage.pipe.clone())
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .filter(|pipe| {
                        let req = pool
                            .lookup(&format!("{pipe}.req"))
                            .map(|v| inputs.env.get_or_false(v))
                            .unwrap_or(false);
                        let gnt = pool
                            .lookup(&format!("{pipe}.gnt"))
                            .map(|v| inputs.env.get_or_false(v))
                            .unwrap_or(false);
                        req && !gnt
                    })
                    .collect();
                for stage in inputs.spec.stages() {
                    if losing.contains(&stage.stage.pipe) {
                        moe.set(stage.moe, false);
                    }
                }
            }
            ConservativeVariant::IgnoreRtmQualification => {
                // Re-run the propagation without the rtm qualification: any
                // stage whose successor stalls also stalls.
                let mut changed = true;
                while changed {
                    changed = false;
                    for stage in inputs.spec.stages() {
                        let next = stage.stage.next();
                        if let Some(next_moe) = inputs.spec.moe_var(&next) {
                            if moe.get(next_moe) == Some(false) && moe.get(stage.moe) == Some(true)
                            {
                                moe.set(stage.moe, false);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        moe
    }
}

/// Classes of incorrect interlock behaviour (functional bugs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrokenVariant {
    /// Ignore the scoreboard entirely: issue proceeds even when an operand is
    /// outstanding (read-after-write hazards).
    IgnoreScoreboard,
    /// Ignore completion-bus arbitration: the final stage claims to move even
    /// when it lost the grant (completion is dropped / overwritten).
    IgnoreCompletionGrant,
    /// Wrong reset values: for the first few cycles after reset every `moe`
    /// flag is forced high regardless of the stall conditions (the incorrect
    /// initialisation values the paper reports finding).
    BadResetValues {
        /// Number of cycles after reset during which the flags are forced.
        cycles: u64,
    },
}

/// An interlock that omits required stalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrokenInterlock {
    /// Which functional bug is injected.
    pub variant: BrokenVariant,
}

impl BrokenInterlock {
    /// Creates a broken interlock with the given bug class.
    pub fn new(variant: BrokenVariant) -> Self {
        BrokenInterlock { variant }
    }
}

impl InterlockPolicy for BrokenInterlock {
    fn name(&self) -> &'static str {
        match self.variant {
            BrokenVariant::IgnoreScoreboard => "broken-scoreboard",
            BrokenVariant::IgnoreCompletionGrant => "broken-completion",
            BrokenVariant::BadResetValues { .. } => "broken-reset",
        }
    }

    fn moe_flags(&self, inputs: &PolicyInputs<'_>) -> Assignment {
        match self.variant {
            BrokenVariant::IgnoreScoreboard => {
                // Drop every scoreboard-labelled rule before deriving.
                let env = strip_env(inputs.env, inputs.spec, "operand_outstanding");
                derive_concrete(inputs.spec, &env)
            }
            BrokenVariant::IgnoreCompletionGrant => {
                // Pretend every requesting pipe was granted.
                let mut env = inputs.env.clone();
                for (var, name) in inputs.spec.pool().iter() {
                    if name.ends_with(".gnt") {
                        env.set(var, true);
                    }
                }
                derive_concrete(inputs.spec, &env)
            }
            BrokenVariant::BadResetValues { cycles } => {
                let mut moe = derive_concrete(inputs.spec, inputs.env);
                if inputs.view.cycle < cycles {
                    for stage in inputs.spec.stages() {
                        moe.set(stage.moe, true);
                    }
                }
                moe
            }
        }
    }
}

/// Returns a copy of `env` with every variable whose name contains `marker`
/// cleared to false.
fn strip_env(env: &Assignment, spec: &FunctionalSpec, marker: &str) -> Assignment {
    let mut out = env.clone();
    for (var, name) in spec.pool().iter() {
        if name.contains(marker) {
            out.set(var, false);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::example::ExampleArch;
    use ipcl_core::model::StageRef;

    fn spec_and_env() -> (FunctionalSpec, Assignment) {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        // Scenario: long pipe's issue operand is outstanding; short pipe idle.
        let env = Assignment::from_pairs([
            (pool.lookup("long.1.operand_outstanding").unwrap(), true),
            (pool.lookup("long.1.rtm").unwrap(), true),
        ]);
        (spec, env)
    }

    #[test]
    fn maximal_policy_matches_derivation() {
        let (spec, env) = spec_and_env();
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView::default(),
        };
        let policy = MaximalInterlock;
        assert_eq!(policy.name(), "maximal");
        assert_eq!(policy.moe_flags(&inputs), derive_concrete(&spec, &env));
    }

    #[test]
    fn conservative_scoreboard_adds_issue_stalls_only() {
        let spec = ExampleArch::new().functional_spec();
        // Nothing outstanding for the issuing ops, but some scoreboard bit is
        // set somewhere: maximal moves, conservative stalls issue.
        let env = Assignment::new();
        let view = MachineView {
            any_scoreboard_bit: true,
            ..Default::default()
        };
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view,
        };
        let maximal = MaximalInterlock.moe_flags(&inputs);
        let conservative =
            ConservativeInterlock::new(ConservativeVariant::StallIssueOnAnyScoreboardHit)
                .moe_flags(&inputs);
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        let long4 = spec.moe_var(&StageRef::new("long", 4)).unwrap();
        assert_eq!(maximal.get(long1), Some(true));
        assert_eq!(conservative.get(long1), Some(false));
        assert_eq!(conservative.get(long4), Some(true));
    }

    #[test]
    fn conservative_completion_stalls_the_whole_losing_pipe() {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        // The long pipe requests and loses; the short pipe wins.
        let env = Assignment::from_pairs([
            (pool.lookup("long.req").unwrap(), true),
            (pool.lookup("short.req").unwrap(), true),
            (pool.lookup("short.gnt").unwrap(), true),
        ]);
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView::default(),
        };
        let maximal = MaximalInterlock.moe_flags(&inputs);
        let moe = ConservativeInterlock::new(ConservativeVariant::StallWholeLosingPipe)
            .moe_flags(&inputs);
        let long2 = spec.moe_var(&StageRef::new("long", 2)).unwrap();
        let short2 = spec.moe_var(&StageRef::new("short", 2)).unwrap();
        // long.2 holds nothing (no rtm), so the maximal interlock lets it
        // move; the conservative variant stalls it anyway.
        assert_eq!(maximal.get(long2), Some(true));
        assert_eq!(moe.get(long2), Some(false));
        // The winning pipe is untouched.
        assert_eq!(moe.get(short2), Some(true));
    }

    #[test]
    fn conservative_no_rtm_propagates_through_bubbles() {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        // Completion loses the bus; nothing upstream wants to move (bubbles).
        let env = Assignment::from_pairs([(pool.lookup("long.req").unwrap(), true)]);
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView::default(),
        };
        let maximal = MaximalInterlock.moe_flags(&inputs);
        let conservative = ConservativeInterlock::new(ConservativeVariant::IgnoreRtmQualification)
            .moe_flags(&inputs);
        let long3 = spec.moe_var(&StageRef::new("long", 3)).unwrap();
        assert_eq!(maximal.get(long3), Some(true), "bubble must not stall");
        assert_eq!(
            conservative.get(long3),
            Some(false),
            "variant stalls through bubbles"
        );
        // Conservative variants never *clear* a necessary stall.
        for (var, value) in conservative.iter() {
            if !maximal.get(var).unwrap_or(true) {
                assert!(!value);
            }
        }
    }

    #[test]
    fn broken_scoreboard_misses_required_stall() {
        let (spec, env) = spec_and_env();
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView::default(),
        };
        let maximal = MaximalInterlock.moe_flags(&inputs);
        let broken = BrokenInterlock::new(BrokenVariant::IgnoreScoreboard).moe_flags(&inputs);
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        assert_eq!(
            maximal.get(long1),
            Some(false),
            "operand outstanding must stall"
        );
        assert_eq!(
            broken.get(long1),
            Some(true),
            "broken policy misses the stall"
        );
    }

    #[test]
    fn broken_completion_ignores_lost_grant() {
        let spec = ExampleArch::new().functional_spec();
        let pool = spec.pool();
        let env = Assignment::from_pairs([(pool.lookup("long.req").unwrap(), true)]);
        let inputs = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView::default(),
        };
        let broken = BrokenInterlock::new(BrokenVariant::IgnoreCompletionGrant).moe_flags(&inputs);
        let long4 = spec.moe_var(&StageRef::new("long", 4)).unwrap();
        assert_eq!(broken.get(long4), Some(true));
    }

    #[test]
    fn bad_reset_values_only_affect_early_cycles() {
        let (spec, env) = spec_and_env();
        let policy = BrokenInterlock::new(BrokenVariant::BadResetValues { cycles: 2 });
        assert_eq!(policy.name(), "broken-reset");
        let early = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView {
                cycle: 0,
                ..Default::default()
            },
        };
        let late = PolicyInputs {
            spec: &spec,
            env: &env,
            view: MachineView {
                cycle: 5,
                ..Default::default()
            },
        };
        let long1 = spec.moe_var(&StageRef::new("long", 1)).unwrap();
        assert_eq!(policy.moe_flags(&early).get(long1), Some(true));
        assert_eq!(policy.moe_flags(&late).get(long1), Some(false));
    }

    #[test]
    fn policy_names_are_distinct() {
        let mut names = vec![MaximalInterlock.name()];
        for v in ConservativeVariant::ALL {
            names.push(ConservativeInterlock::new(v).name());
        }
        names.push(BrokenInterlock::new(BrokenVariant::IgnoreScoreboard).name());
        names.push(BrokenInterlock::new(BrokenVariant::IgnoreCompletionGrant).name());
        names.push(BrokenInterlock::new(BrokenVariant::BadResetValues { cycles: 1 }).name());
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
    }
}
