//! The cycle-accurate interlocked pipeline machine.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use ipcl_core::model::{SignalNames, StageRef};
use ipcl_core::spec::SpecError;
use ipcl_core::{ArchSpec, FunctionalSpec};
use ipcl_expr::{Assignment, VarId};

use crate::policy::{InterlockPolicy, MachineView, PolicyInputs};
use crate::stats::SimStats;
use crate::workload::{Op, Packet, Program};

/// Errors produced when constructing a [`Machine`].
#[derive(Debug)]
pub enum MachineError {
    /// The architecture description could not be turned into a functional
    /// specification.
    Spec(SpecError),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Spec(e) => write!(f, "architecture specification error: {e}"),
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Spec(e) => Some(e),
        }
    }
}

impl From<SpecError> for MachineError {
    fn from(e: SpecError) -> Self {
        MachineError::Spec(e)
    }
}

/// State of one pipe.
#[derive(Clone, Debug)]
struct PipeState {
    name: String,
    /// Stage occupancy; index 0 is stage 1 (issue).
    stages: Vec<Option<Op>>,
    /// Skid buffers for shunt stages (same indexing; `None` for non-shunt
    /// stages means the buffer slot is unused and always empty).
    skid: Vec<Option<Op>>,
    shunt_stages: Vec<u32>,
    completion_bus: Option<String>,
    observes_wait: bool,
    checks_scoreboard: bool,
}

impl PipeState {
    fn depth(&self) -> usize {
        self.stages.len()
    }

    fn is_shunt(&self, stage_index: usize) -> bool {
        self.shunt_stages.contains(&(stage_index as u32 + 1))
    }

    fn is_empty(&self) -> bool {
        self.stages.iter().all(Option::is_none) && self.skid.iter().all(Option::is_none)
    }
}

/// The cycle-accurate machine: architectural state plus a pluggable interlock
/// policy whose `moe` decisions control all data movement.
///
/// See the crate-level example for typical usage.
pub struct Machine {
    arch: ArchSpec,
    spec: FunctionalSpec,
    policy: Box<dyn InterlockPolicy>,
    pipes: Vec<PipeState>,
    scoreboard: Vec<bool>,
    wait_remaining: u32,
    cycle: u64,
    stats: SimStats,
    /// Cached variable ids for environment construction.
    vars: EnvVars,
}

/// Pre-resolved variable ids of all environment signals.
#[derive(Clone, Debug, Default)]
struct EnvVars {
    rtm: BTreeMap<String, VarId>,
    req: BTreeMap<String, VarId>,
    gnt: BTreeMap<String, VarId>,
    outstanding: BTreeMap<String, VarId>,
    shunt_full: BTreeMap<String, VarId>,
    wait: Option<VarId>,
}

impl Machine {
    /// Builds a machine for `arch` controlled by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Spec`] if the architecture description cannot
    /// be turned into a functional specification.
    pub fn new(arch: &ArchSpec, policy: Box<dyn InterlockPolicy>) -> Result<Self, MachineError> {
        let mut spec = arch.functional_spec()?;
        let mut vars = EnvVars::default();
        {
            let pool = spec.pool_mut();
            for pipe in &arch.pipes {
                vars.req.insert(
                    pipe.name.clone(),
                    pool.var(&SignalNames::completion_request(&pipe.name)),
                );
                vars.gnt.insert(
                    pipe.name.clone(),
                    pool.var(&SignalNames::completion_grant(&pipe.name)),
                );
                vars.outstanding.insert(
                    pipe.name.clone(),
                    pool.var(&SignalNames::operand_outstanding(&pipe.name)),
                );
                for stage in 1..pipe.stages {
                    let stage_ref = StageRef::new(&pipe.name, stage);
                    vars.rtm
                        .insert(stage_ref.prefix(), pool.var(&stage_ref.rtm()));
                    if pipe.shunt_stages.contains(&stage) {
                        vars.shunt_full.insert(
                            stage_ref.prefix(),
                            pool.var(&SignalNames::shunt_full(&stage_ref)),
                        );
                    }
                }
            }
            vars.wait = Some(pool.var(&SignalNames::wait_state()));
        }
        let pipes = arch
            .pipes
            .iter()
            .map(|p| PipeState {
                name: p.name.clone(),
                stages: vec![None; p.stages as usize],
                skid: vec![None; p.stages as usize],
                shunt_stages: p.shunt_stages.clone(),
                completion_bus: p.completion_bus.clone(),
                observes_wait: p.observes_wait,
                checks_scoreboard: p.checks_scoreboard,
            })
            .collect();
        let policy_name = policy.name().to_owned();
        Ok(Machine {
            arch: arch.clone(),
            spec,
            policy,
            pipes,
            scoreboard: vec![false; arch.scoreboard_registers as usize],
            wait_remaining: 0,
            cycle: 0,
            stats: SimStats {
                policy: policy_name,
                ..Default::default()
            },
            vars,
        })
    }

    /// The functional specification generated for this machine's
    /// architecture.
    pub fn spec(&self) -> &FunctionalSpec {
        &self.spec
    }

    /// The architecture description.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Elapsed cycles since construction or [`Machine::reset`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears all architectural state and statistics.
    pub fn reset(&mut self) {
        for pipe in &mut self.pipes {
            pipe.stages.iter_mut().for_each(|s| *s = None);
            pipe.skid.iter_mut().for_each(|s| *s = None);
        }
        self.scoreboard.iter_mut().for_each(|b| *b = false);
        self.wait_remaining = 0;
        self.cycle = 0;
        self.stats = SimStats {
            policy: self.policy.name().to_owned(),
            ..Default::default()
        };
    }

    /// Runs the whole `program`, stopping when every packet has issued and
    /// the pipeline has drained, or after `max_cycles`. Returns the final
    /// statistics.
    pub fn run_program(&mut self, program: &Program, max_cycles: u64) -> SimStats {
        self.run_program_with_observer(program, max_cycles, |_, _| {})
    }

    /// As [`Machine::run_program`], additionally calling `observer` once per
    /// cycle with the environment assignment and the policy's `moe`
    /// assignment — the hook used by `ipcl-assertgen` runtime monitors.
    pub fn run_program_with_observer<F>(
        &mut self,
        program: &Program,
        max_cycles: u64,
        mut observer: F,
    ) -> SimStats
    where
        F: FnMut(&Assignment, &Assignment),
    {
        let mut pending: VecDeque<Packet> = program.iter().cloned().collect();
        for _ in 0..max_cycles {
            if pending.is_empty() && self.pipes.iter().all(PipeState::is_empty) {
                break;
            }
            self.step(&mut pending, &mut observer);
        }
        self.stats.clone()
    }

    /// Executes a single cycle, issuing from `pending` when possible.
    pub fn step<F>(&mut self, pending: &mut VecDeque<Packet>, observer: &mut F)
    where
        F: FnMut(&Assignment, &Assignment),
    {
        // Phase 1: construct the specification environment for this cycle.
        let (env, granted_regs, contention) = self.build_env();
        let view = MachineView {
            any_scoreboard_bit: self.scoreboard.iter().any(|&b| b),
            completion_contention: contention,
            cycle: self.cycle,
        };
        let inputs = PolicyInputs {
            spec: &self.spec,
            env: &env,
            view,
        };

        // Phase 2: interlock decisions (the device under verification) and
        // the derived reference (the maximum-performance assignment).
        let moe = self.policy.moe_flags(&inputs);
        let maximal = ipcl_core::fixpoint::derive_concrete(&self.spec, &env);
        observer(&env, &moe);
        self.account_stalls(&env, &moe, &maximal);

        // Phase 3: data movement controlled by the policy's moe flags.
        self.move_data(&moe, &env, &granted_regs);

        // Phase 4: issue the next packet when every issue stage may move.
        self.issue(pending, &moe, &env);

        // Wait-state bookkeeping.
        if env
            .get(self.vars.wait.expect("wait var interned"))
            .unwrap_or(false)
        {
            self.stats.wait_cycles += 1;
            self.wait_remaining = self.wait_remaining.saturating_sub(1);
        }

        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Builds the environment assignment, the set of registers written by
    /// completion buses this cycle, and whether any pipe lost arbitration.
    fn build_env(&self) -> (Assignment, Vec<u32>, bool) {
        let mut env = Assignment::new();

        // rtm flags and shunt occupancy.
        for (pipe_state, pipe_spec) in self.pipes.iter().zip(&self.arch.pipes) {
            for stage in 1..pipe_spec.stages {
                let stage_ref = StageRef::new(&pipe_state.name, stage);
                if let Some(&var) = self.vars.rtm.get(&stage_ref.prefix()) {
                    let occupied = pipe_state.stages[stage as usize - 1].is_some();
                    env.set(var, occupied);
                }
                if let Some(&var) = self.vars.shunt_full.get(&stage_ref.prefix()) {
                    env.set(var, pipe_state.skid[stage as usize - 1].is_some());
                }
            }
        }

        // Completion requests and arbitration per bus (priority order).
        let mut granted_regs: Vec<u32> = Vec::new();
        let mut contention = false;
        let mut granted: BTreeMap<String, bool> = BTreeMap::new();
        for bus in &self.arch.completion_buses {
            let mut winner: Option<&str> = None;
            for pipe_name in &bus.priority {
                let Some(pipe) = self.pipes.iter().find(|p| &p.name == pipe_name) else {
                    continue;
                };
                let requesting = pipe.stages.last().map(|s| s.is_some()).unwrap_or(false);
                if requesting {
                    if winner.is_none() {
                        winner = Some(pipe_name);
                    } else {
                        contention = true;
                    }
                }
            }
            for pipe_name in &bus.priority {
                granted.insert(pipe_name.clone(), winner == Some(pipe_name.as_str()));
            }
            if let Some(winner_name) = winner {
                let pipe = self
                    .pipes
                    .iter()
                    .find(|p| p.name == winner_name)
                    .expect("winner is a known pipe");
                if let Some(Some(op)) = pipe.stages.last() {
                    if let Some(dest) = op.dest {
                        granted_regs.push(dest);
                    }
                }
            }
        }
        for pipe in &self.pipes {
            let requesting = pipe.completion_bus.is_some()
                && pipe.stages.last().map(|s| s.is_some()).unwrap_or(false);
            if let Some(&var) = self.vars.req.get(&pipe.name) {
                env.set(var, requesting);
            }
            if let Some(&var) = self.vars.gnt.get(&pipe.name) {
                env.set(
                    var,
                    requesting && granted.get(&pipe.name).copied().unwrap_or(false),
                );
            }
        }

        // Scoreboard / operand-outstanding per pipe (abstract signal), with
        // completion-bus bypass.
        for pipe in &self.pipes {
            let outstanding = if pipe.checks_scoreboard {
                match &pipe.stages[0] {
                    Some(op) => [op.src, op.dest].into_iter().flatten().any(|reg| {
                        self.scoreboard.get(reg as usize).copied().unwrap_or(false)
                            && !granted_regs.contains(&reg)
                    }),
                    None => false,
                }
            } else {
                false
            };
            if let Some(&var) = self.vars.outstanding.get(&pipe.name) {
                env.set(var, outstanding);
            }
        }

        // Wait state: a wait op sitting in the issue stage of a wait-observing
        // pipe with remaining cycles.
        let waiting = self.wait_remaining > 0
            && self.pipes.iter().any(|p| {
                p.observes_wait && p.stages[0].as_ref().map(|op| op.is_wait()).unwrap_or(false)
            });
        env.set(self.vars.wait.expect("wait var interned"), waiting);

        (env, granted_regs, contention)
    }

    /// Updates stall statistics given the policy's and the maximal `moe`
    /// assignments.
    fn account_stalls(&mut self, env: &Assignment, moe: &Assignment, maximal: &Assignment) {
        for stage in self.spec.stages() {
            let stalled = !moe.get(stage.moe).unwrap_or(true);
            if !stalled {
                continue;
            }
            *self
                .stats
                .stall_cycles_per_stage
                .entry(stage.stage.prefix())
                .or_insert(0) += 1;
            // Attribute the stall to every rule whose condition holds.
            for rule in &stage.rules {
                let holds = rule
                    .condition
                    .eval_with(|v| moe.get(v).or(env.get(v)).unwrap_or(false));
                if holds {
                    *self
                        .stats
                        .stalls_by_cause
                        .entry(rule.label.clone())
                        .or_insert(0) += 1;
                }
            }
            if maximal.get(stage.moe).unwrap_or(false) {
                self.stats.unnecessary_stalls += 1;
                *self
                    .stats
                    .unnecessary_by_stage
                    .entry(stage.stage.prefix())
                    .or_insert(0) += 1;
            }
        }
    }

    /// Moves operations between stages according to the policy's `moe` flags,
    /// recording ground-truth hazards when the policy under-stalls.
    fn move_data(&mut self, moe: &Assignment, env: &Assignment, granted_regs: &[u32]) {
        let moe_of = |spec: &FunctionalSpec, pipe: &str, stage: u32| -> bool {
            spec.moe_var(&StageRef::new(pipe, stage))
                .and_then(|v| moe.get(v))
                .unwrap_or(true)
        };

        for pipe in &mut self.pipes {
            let depth = pipe.depth();

            // Completion stage.
            let final_moe = moe_of(&self.spec, &pipe.name, depth as u32);
            if final_moe {
                if let Some(op) = pipe.stages[depth - 1].take() {
                    let completes_on_bus = pipe.completion_bus.is_some();
                    let granted = op
                        .dest
                        .map(|d| granted_regs.contains(&d))
                        // Ops without a destination complete silently.
                        .unwrap_or(true);
                    if completes_on_bus && !granted && op.dest.is_some() {
                        // The policy vacated a completion stage that had not
                        // won the bus: its result is lost (written nowhere).
                        self.stats.hazards.lost_completions += 1;
                    }
                    if let Some(dest) = op.dest {
                        if let Some(bit) = self.scoreboard.get_mut(dest as usize) {
                            *bit = false;
                        }
                    }
                    self.stats.ops_completed += 1;
                }
            }

            // Upstream stages, deepest first. A stage's content moves exactly
            // when its *own* moe flag is set — that is the meaning of the
            // flag; whether the move is safe depends on the downstream stage
            // having vacated, and a violation is recorded as an overwrite.
            let issue_op_before = pipe.stages[0].clone();
            for stage_index in (0..depth - 1).rev() {
                let own_moe = moe_of(&self.spec, &pipe.name, stage_index as u32 + 1);
                if !own_moe {
                    continue;
                }
                let downstream_accepts = moe_of(&self.spec, &pipe.name, stage_index as u32 + 2);
                if pipe.is_shunt(stage_index) {
                    if downstream_accepts {
                        // Drain the skid buffer first (it holds the older
                        // operation), then let the stage slide into the skid.
                        if let Some(op) = pipe.skid[stage_index].take() {
                            if pipe.stages[stage_index + 1].is_some() {
                                self.stats.hazards.overwrites += 1;
                            }
                            pipe.stages[stage_index + 1] = Some(op);
                            if let Some(next) = pipe.stages[stage_index].take() {
                                pipe.skid[stage_index] = Some(next);
                            }
                        } else if let Some(op) = pipe.stages[stage_index].take() {
                            if pipe.stages[stage_index + 1].is_some() {
                                self.stats.hazards.overwrites += 1;
                            }
                            pipe.stages[stage_index + 1] = Some(op);
                        }
                    } else if let Some(op) = pipe.stages[stage_index].take() {
                        // Downstream is stalled: absorb into the skid buffer.
                        if pipe.skid[stage_index].is_some() {
                            self.stats.hazards.overwrites += 1;
                        }
                        pipe.skid[stage_index] = Some(op);
                    }
                } else if let Some(op) = pipe.stages[stage_index].take() {
                    if pipe.stages[stage_index + 1].is_some() {
                        self.stats.hazards.overwrites += 1;
                    }
                    pipe.stages[stage_index + 1] = Some(op);
                }
            }

            // If an operation left the issue stage this cycle it has been
            // *issued*: its destination becomes outstanding on the scoreboard,
            // and issuing past an outstanding, non-bypassed operand is a
            // ground-truth read-after-write hazard.
            if depth > 1 {
                if let Some(issued) = issue_op_before {
                    if pipe.stages[0].is_none() {
                        let outstanding = self
                            .vars
                            .outstanding
                            .get(&pipe.name)
                            .map(|&v| env.get_or_false(v))
                            .unwrap_or(false);
                        if outstanding {
                            self.stats.hazards.raw_violations += 1;
                        }
                        if let Some(dest) = issued.dest {
                            if let Some(bit) = self.scoreboard.get_mut(dest as usize) {
                                *bit = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fetches the next packet into the issue stages if every issue stage is
    /// allowed to move (lock-step issue of whole packets).
    fn issue(&mut self, pending: &mut VecDeque<Packet>, moe: &Assignment, _env: &Assignment) {
        if pending.is_empty() {
            return;
        }
        let all_issue_moving = self.pipes.iter().all(|pipe| {
            self.spec
                .moe_var(&StageRef::new(&pipe.name, 1))
                .and_then(|v| moe.get(v))
                .unwrap_or(true)
        });
        if !all_issue_moving {
            return;
        }
        let packet = pending.pop_front().expect("pending not empty");
        self.stats.packets_issued += 1;
        for op in &packet.ops {
            let Some(pipe) = self.pipes.iter_mut().find(|p| p.name == op.pipe) else {
                continue;
            };
            if pipe.stages[0].is_some() {
                self.stats.hazards.overwrites += 1;
            }
            if op.is_wait() {
                self.wait_remaining = self.wait_remaining.max(op.wait_cycles);
            }
            pipe.stages[0] = Some(op.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{
        BrokenInterlock, BrokenVariant, ConservativeInterlock, ConservativeVariant,
        MaximalInterlock,
    };
    use crate::workload::WorkloadConfig;
    use ipcl_core::ArchSpec;

    fn example_program(packets: usize, seed: u64) -> Program {
        WorkloadConfig::default()
            .with_packets(packets)
            .generate(seed)
    }

    #[test]
    fn maximal_policy_is_hazard_free_and_never_unnecessarily_stalls() {
        let arch = ArchSpec::paper_example();
        let program = example_program(400, 11);
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let stats = machine.run_program(&program, 20_000);
        assert_eq!(stats.hazards.total(), 0, "{stats}");
        assert_eq!(stats.unnecessary_stalls, 0, "{stats}");
        assert!(stats.packets_issued == 400);
        assert!(stats.ops_completed > 0);
        assert!(stats.cycles < 20_000, "program must drain");
    }

    #[test]
    fn conservative_policies_add_unnecessary_stalls_but_no_hazards() {
        let arch = ArchSpec::paper_example();
        let program = example_program(400, 12);
        let mut baseline = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let base_stats = baseline.run_program(&program, 50_000);
        for variant in ConservativeVariant::ALL {
            let mut machine =
                Machine::new(&arch, Box::new(ConservativeInterlock::new(variant))).unwrap();
            let stats = machine.run_program(&program, 50_000);
            assert_eq!(stats.hazards.total(), 0, "{variant:?}: {stats}");
            assert!(
                stats.unnecessary_stalls > 0,
                "{variant:?} should inject unnecessary stalls\n{stats}"
            );
            assert!(
                stats.cycles >= base_stats.cycles,
                "{variant:?} cannot be faster than the maximal interlock"
            );
        }
    }

    #[test]
    fn broken_scoreboard_policy_causes_raw_hazards() {
        let arch = ArchSpec::paper_example();
        let program = WorkloadConfig::default()
            .with_packets(400)
            .with_dependence_bias(0.9)
            .generate(13);
        let mut machine = Machine::new(
            &arch,
            Box::new(BrokenInterlock::new(BrokenVariant::IgnoreScoreboard)),
        )
        .unwrap();
        let stats = machine.run_program(&program, 50_000);
        assert!(stats.hazards.raw_violations > 0, "{stats}");
    }

    #[test]
    fn broken_completion_policy_loses_results_under_contention() {
        let arch = ArchSpec::paper_example();
        // High utilisation on both pipes maximises completion-bus contention.
        let program = WorkloadConfig::default()
            .with_packets(400)
            .with_pipes([("long".to_owned(), 1.0), ("short".to_owned(), 1.0)])
            .generate(14);
        let mut machine = Machine::new(
            &arch,
            Box::new(BrokenInterlock::new(BrokenVariant::IgnoreCompletionGrant)),
        )
        .unwrap();
        let stats = machine.run_program(&program, 50_000);
        assert!(stats.hazards.lost_completions > 0, "{stats}");
    }

    #[test]
    fn maximal_policy_faster_than_conservative_on_contended_workload() {
        let arch = ArchSpec::paper_example();
        let program = WorkloadConfig::default()
            .with_packets(600)
            .with_dependence_bias(0.6)
            .generate(15);
        let mut maximal = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let max_stats = maximal.run_program(&program, 100_000);
        let mut conservative = Machine::new(
            &arch,
            Box::new(ConservativeInterlock::new(
                ConservativeVariant::StallIssueOnAnyScoreboardHit,
            )),
        )
        .unwrap();
        let cons_stats = conservative.run_program(&program, 100_000);
        assert!(
            max_stats.cycles < cons_stats.cycles,
            "{max_stats}\n{cons_stats}"
        );
        assert!(max_stats.ipc() > cons_stats.ipc());
    }

    #[test]
    fn wait_instructions_freeze_issue() {
        let arch = ArchSpec::paper_example();
        let program: Program = vec![
            Packet::new([Op::wait("long", 5)]),
            Packet::new([Op::new("long", None, Some(1))]),
        ];
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let stats = machine.run_program(&program, 1_000);
        assert!(stats.wait_cycles >= 4, "{stats}");
        assert_eq!(stats.hazards.total(), 0);
        assert!(
            stats
                .stalls_by_cause
                .get("wait-state")
                .copied()
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn firepath_like_machine_runs_hazard_free_with_maximal_policy() {
        let arch = ArchSpec::firepath_like();
        let program = WorkloadConfig::for_arch(&arch, 0.5)
            .with_packets(150)
            .generate(21);
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let stats = machine.run_program(&program, 50_000);
        assert_eq!(stats.hazards.total(), 0, "{stats}");
        assert_eq!(stats.unnecessary_stalls, 0, "{stats}");
        assert!(stats.ops_completed > 0);
    }

    #[test]
    fn observer_sees_every_cycle() {
        let arch = ArchSpec::paper_example();
        let program = example_program(50, 3);
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let mut observed = 0u64;
        let stats = machine.run_program_with_observer(&program, 10_000, |env, moe| {
            observed += 1;
            assert!(moe.len() == 6);
            assert!(!env.is_empty());
        });
        assert_eq!(observed, stats.cycles);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let arch = ArchSpec::paper_example();
        let program = example_program(50, 4);
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let _ = machine.run_program(&program, 10_000);
        assert!(machine.cycle() > 0);
        machine.reset();
        assert_eq!(machine.cycle(), 0);
        assert_eq!(machine.stats().cycles, 0);
        assert_eq!(machine.stats().policy, "maximal");
    }

    #[test]
    fn stats_accessors_and_spec_exposed() {
        let arch = ArchSpec::paper_example();
        let machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        assert_eq!(machine.spec().stages().len(), 6);
        assert_eq!(machine.arch().name, "paper-example");
    }
}
