//! Cycle-accurate simulation of interlocked pipeline architectures.
//!
//! `ipcl-pipesim` provides the workload side of the verification story: a
//! generic, cycle-accurate model of the interlocked pipeline architectures
//! described by [`ipcl_core::ArchSpec`] (the paper's example machine and the
//! FirePath-like configuration), driven by randomly generated LIW instruction
//! packets.
//!
//! The interlock decision itself is pluggable ([`policy::InterlockPolicy`]):
//! the *maximal* policy evaluates the derived maximum-performance `moe`
//! assignment every cycle, *conservative* policies inject the classes of
//! performance bugs the paper hunts (unnecessary stalls), and *broken*
//! policies omit required stalls (functional bugs) or start from wrong reset
//! values. The machine records ground-truth hazards and per-cause stall
//! statistics, so experiments can compare what simulation testbench
//! assertions catch against what property checking proves.
//!
//! # Example
//!
//! ```
//! use ipcl_core::ArchSpec;
//! use ipcl_pipesim::{Machine, policy::MaximalInterlock, workload::WorkloadConfig};
//!
//! let arch = ArchSpec::paper_example();
//! let program = WorkloadConfig::default().with_packets(200).generate(1);
//! let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
//! let stats = machine.run_program(&program, 10_000);
//! assert_eq!(stats.hazards.total(), 0);
//! assert_eq!(stats.unnecessary_stalls, 0);
//! assert!(stats.ops_completed > 0);
//! ```

pub mod machine;
pub mod policy;
pub mod stats;
pub mod workload;

pub use machine::{Machine, MachineError};
pub use policy::{
    BrokenInterlock, BrokenVariant, ConservativeInterlock, ConservativeVariant, InterlockPolicy,
    MaximalInterlock, PolicyInputs,
};
pub use stats::{HazardCounts, SimStats};
pub use workload::{Op, Packet, Program, WorkloadConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_core::ArchSpec;

    #[test]
    fn crate_example_runs() {
        let arch = ArchSpec::paper_example();
        let program = WorkloadConfig::default().with_packets(50).generate(7);
        let mut machine = Machine::new(&arch, Box::new(MaximalInterlock)).unwrap();
        let stats = machine.run_program(&program, 5_000);
        assert_eq!(stats.hazards.total(), 0);
        assert!(stats.cycles > 0);
    }
}
