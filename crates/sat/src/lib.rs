//! CNF satisfiability solving for interlock property checking.
//!
//! `ipcl-sat` provides a conflict-driven clause-learning (CDCL) SAT solver
//! over the [`Cnf`] formulas produced by `ipcl-expr`'s Tseitin encoder. It is
//! the second exhaustive engine of the workspace (next to `ipcl-bdd`); the
//! property checker in `ipcl-checker` answers validity and implication
//! queries by checking the *negation* for unsatisfiability.
//!
//! # Example
//!
//! ```
//! use ipcl_expr::{parse_expr, TseitinEncoder, VarPool};
//! use ipcl_sat::{SatResult, Solver};
//!
//! let mut pool = VarPool::new();
//! // Validity of (a -> b) & a -> b  ⇔  unsatisfiability of its negation.
//! let negated = parse_expr("!((a -> b) & a -> b)", &mut pool)?;
//! let mut enc = TseitinEncoder::new();
//! let root = enc.encode(&negated);
//! enc.assert_literal(root);
//! let mut solver = Solver::from_cnf(enc.cnf());
//! assert_eq!(solver.solve(), SatResult::Unsat);
//! # Ok::<(), ipcl_expr::ParseError>(())
//! ```

pub mod solver;

pub use solver::{
    RestartStrategy, SatResult, Solver, SolverConfig, SolverStats, HEARTBEAT_MS, SHARE_MAX_LEN,
};

use ipcl_expr::{Expr, TseitinEncoder};

/// Checks whether `expr` is valid (true under every assignment) by refuting
/// its negation with the CDCL solver.
///
/// # Example
///
/// ```
/// use ipcl_expr::{parse_expr, VarPool};
///
/// let mut pool = VarPool::new();
/// let e = parse_expr("a | !a", &mut pool)?;
/// assert!(ipcl_sat::is_valid(&e));
/// # Ok::<(), ipcl_expr::ParseError>(())
/// ```
pub fn is_valid(expr: &Expr) -> bool {
    let negated = Expr::not(expr.clone());
    !is_satisfiable(&negated)
}

/// Checks whether `expr` has at least one satisfying assignment.
///
/// Uses the polarity-aware Plaisted–Greenbaum encoding
/// ([`TseitinEncoder::assert_expr`]): the root occurs only positively, so
/// roughly half the definitional clauses of the full Tseitin encoding are
/// emitted.
pub fn is_satisfiable(expr: &Expr) -> bool {
    let mut enc = TseitinEncoder::new();
    enc.assert_expr(expr);
    let mut solver = Solver::from_cnf(enc.cnf());
    matches!(solver.solve(), SatResult::Sat(_))
}

/// Returns a satisfying assignment of `expr` over its specification
/// variables, or `None` when unsatisfiable.
pub fn satisfying_assignment(expr: &Expr) -> Option<ipcl_expr::Assignment> {
    let mut enc = TseitinEncoder::new();
    enc.assert_expr(expr);
    let var_map = enc.var_map().clone();
    let mut solver = Solver::from_cnf(enc.cnf());
    match solver.solve() {
        SatResult::Sat(model) => {
            let mut env = ipcl_expr::Assignment::new();
            for (spec_var, cnf_var) in var_map {
                env.set(spec_var, model[cnf_var as usize]);
            }
            Some(env)
        }
        SatResult::Unsat => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{parse_expr, VarPool};

    #[test]
    fn validity_helpers() {
        let mut pool = VarPool::new();
        let taut = parse_expr("(a -> b) -> (!b -> !a)", &mut pool).unwrap();
        assert!(is_valid(&taut));
        let sat_not_valid = parse_expr("a & b", &mut pool).unwrap();
        assert!(!is_valid(&sat_not_valid));
        assert!(is_satisfiable(&sat_not_valid));
        let unsat = parse_expr("a & !a", &mut pool).unwrap();
        assert!(!is_satisfiable(&unsat));
        assert!(satisfying_assignment(&unsat).is_none());
        let model = satisfying_assignment(&sat_not_valid).unwrap();
        assert!(sat_not_valid.eval(&model).unwrap());
    }
}
