//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the standard MiniSat recipe: two watched
//! literals per clause, first-UIP conflict analysis with clause learning,
//! non-chronological backjumping, exponential VSIDS-style variable activity,
//! phase saving and geometric restarts. It is intentionally compact — the
//! formulas arising from interlock specifications are small by SAT standards
//! — but it is a complete solver, not a toy backtracker.

use ipcl_expr::{Cnf, Lit};

/// Result of [`Solver::solve`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; the vector gives one value per CNF variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Search statistics accumulated during solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses currently stored.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

const UNASSIGNED_LEVEL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Clause {
    literals: Vec<Lit>,
}

/// A CDCL SAT solver with incremental clause addition and solving under
/// assumptions.
///
/// Construct with [`Solver::from_cnf`] (or empty with [`Solver::new`]), then
/// call [`Solver::solve`] / [`Solver::solve_under_assumptions`]. The solver
/// is designed for *incremental* use, the pattern of bounded model checking:
///
/// * [`Solver::add_clause`] may be called between `solve` calls to extend
///   the formula (e.g. with the next unrolled time frame);
/// * learned clauses are retained across calls, so later queries reuse the
///   conflict analysis work of earlier ones;
/// * [`Solver::solve_under_assumptions`] decides satisfiability under a set
///   of temporarily-forced literals without polluting the clause database,
///   so per-depth property activations can be retracted for the next depth.
#[derive(Clone, Debug)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Number of original (non-learned) clauses.
    original_clauses: usize,
    /// Watch lists indexed by literal code.
    watches: Vec<Vec<usize>>,
    /// Current partial assignment; indexed by variable.
    values: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    levels: Vec<u32>,
    /// Reason clause of each propagated variable.
    reasons: Vec<Option<usize>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Index into `trail` marking each decision level.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    propagate_head: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    activity_inc: f64,
    /// Saved phases for phase-saving heuristic.
    phases: Vec<bool>,
    /// Whether decisions reuse saved phases ([`Solver::set_phase_saving`]).
    phase_saving: bool,
    /// Trivially unsatisfiable (empty clause present).
    trivially_unsat: bool,
    stats: SolverStats,
}

impl Solver {
    /// Builds an empty solver over `num_vars` variables (use
    /// [`Solver::add_clause`] to populate it incrementally).
    pub fn new(num_vars: usize) -> Self {
        Solver {
            num_vars,
            clauses: Vec::new(),
            original_clauses: 0,
            watches: vec![Vec::new(); 2 * num_vars],
            values: vec![None; num_vars],
            levels: vec![UNASSIGNED_LEVEL; num_vars],
            reasons: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagate_head: 0,
            activity: vec![0.0; num_vars],
            activity_inc: 1.0,
            phases: vec![false; num_vars],
            phase_saving: true,
            trivially_unsat: false,
            stats: SolverStats::default(),
        }
    }

    /// Builds a solver for `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Solver::new(cnf.num_vars as usize);
        for clause in &cnf.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Search statistics of the most recent [`Solver::solve`] call(s).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The number of variables the solver knows about.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The number of stored clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Enables or disables phase saving (on by default).
    ///
    /// With phase saving on, a decision variable is assigned the polarity it
    /// last held, so after a restart or backjump the search re-enters the
    /// part of the space it was exploring — the standard MiniSat heuristic,
    /// and a measurable win on the incremental workloads of BMC and PDR
    /// where consecutive queries differ only in their assumptions (see
    /// `exp_pdr_vs_kinduction` in EXPERIMENTS.md for the ablation). With it
    /// off, decisions always try `false` first.
    pub fn set_phase_saving(&mut self, enabled: bool) {
        self.phase_saving = enabled;
    }

    /// Whether phase saving is enabled.
    pub fn phase_saving(&self) -> bool {
        self.phase_saving
    }

    /// Grows the variable universe to at least `num_vars` variables.
    ///
    /// New variables are unconstrained until clauses mention them. Existing
    /// clauses, learned clauses and saved phases are preserved, which is what
    /// makes the solver usable incrementally: a bounded-model-checking loop
    /// adds the variables and clauses of one more time frame, then re-solves.
    pub fn reserve_vars(&mut self, num_vars: usize) {
        if num_vars <= self.num_vars {
            return;
        }
        self.num_vars = num_vars;
        self.watches.resize(2 * num_vars, Vec::new());
        self.values.resize(num_vars, None);
        self.levels.resize(num_vars, UNASSIGNED_LEVEL);
        self.reasons.resize(num_vars, None);
        self.activity.resize(num_vars, 0.0);
        self.phases.resize(num_vars, false);
    }

    /// Adds a clause to the database. May be called between `solve` calls;
    /// variables beyond the current universe grow it automatically.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, literals: I) {
        let literals: Vec<Lit> = literals.into_iter().collect();
        if let Some(max_var) = literals.iter().map(|l| l.var()).max() {
            self.reserve_vars(max_var as usize + 1);
        }
        if self.insert_clause(literals) {
            self.original_clauses += 1;
        }
    }

    /// Stores a (deduplicated, non-tautological) clause; returns whether it
    /// was kept.
    fn insert_clause(&mut self, mut literals: Vec<Lit>) -> bool {
        literals.sort_unstable();
        literals.dedup();
        // A clause containing x and !x is a tautology: drop it.
        if literals
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
        {
            return false;
        }
        match literals.len() {
            0 => {
                self.trivially_unsat = true;
                false
            }
            _ => {
                let index = self.clauses.len();
                // Watch the first two literals (or duplicate the single one).
                let w0 = literals[0];
                let w1 = *literals.get(1).unwrap_or(&literals[0]);
                self.watches[w0.code()].push(index);
                if w1 != w0 {
                    self.watches[w1.code()].push(index);
                }
                self.clauses.push(Clause { literals });
                true
            }
        }
    }

    fn value_of(&self, lit: Lit) -> Option<bool> {
        self.values[lit.var() as usize].map(|v| v == lit.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.value_of(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let var = lit.var() as usize;
                self.values[var] = Some(lit.is_positive());
                self.levels[var] = self.decision_level();
                self.reasons[var] = reason;
                self.phases[var] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            let falsified = lit.negated();
            let watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            for (pos, &clause_index) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    kept.extend_from_slice(&watch_list[pos..]);
                    break;
                }
                self.stats.propagations += 1;
                match self.examine_clause(clause_index, falsified) {
                    WatchOutcome::KeepWatch => kept.push(clause_index),
                    WatchOutcome::Moved => {}
                    WatchOutcome::Conflict => {
                        kept.push(clause_index);
                        conflict = Some(clause_index);
                    }
                }
            }
            self.watches[falsified.code()] = kept;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn examine_clause(&mut self, clause_index: usize, falsified: Lit) -> WatchOutcome {
        // Find another literal to watch, or propagate/conflict.
        let literals = self.clauses[clause_index].literals.clone();
        // Satisfied clause: keep the watch as is.
        if literals.iter().any(|&l| self.value_of(l) == Some(true)) {
            return WatchOutcome::KeepWatch;
        }
        // Try to find an unassigned literal other than the falsified one that
        // is not already watched to move the watch to.
        let unassigned: Vec<Lit> = literals
            .iter()
            .copied()
            .filter(|&l| l != falsified && self.value_of(l).is_none())
            .collect();
        match unassigned.len() {
            0 => WatchOutcome::Conflict,
            1 => {
                // Unit clause: propagate the remaining literal.
                let unit = unassigned[0];
                if self.enqueue(unit, Some(clause_index)) {
                    WatchOutcome::KeepWatch
                } else {
                    WatchOutcome::Conflict
                }
            }
            _ => {
                // Move the watch from `falsified` to a new unassigned literal
                // that is not already watching this clause.
                let other = unassigned
                    .into_iter()
                    .find(|l| !self.watches[l.code()].contains(&clause_index));
                match other {
                    Some(new_watch) => {
                        self.watches[new_watch.code()].push(clause_index);
                        WatchOutcome::Moved
                    }
                    None => WatchOutcome::KeepWatch,
                }
            }
        }
    }

    fn bump_activity(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the level to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut resolve_var: Option<u32> = None;
        let mut clause_index = conflict;
        let mut trail_pos = self.trail.len();

        loop {
            let literals = self.clauses[clause_index].literals.clone();
            for lit in literals {
                let var = lit.var();
                if Some(var) == resolve_var {
                    continue;
                }
                if seen[var as usize] || self.levels[var as usize] == 0 {
                    continue;
                }
                seen[var as usize] = true;
                self.bump_activity(var as usize);
                if self.levels[var as usize] == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Walk the trail backwards to the most recently assigned literal
            // still marked `seen`; that is the next resolution pivot.
            let pivot = loop {
                trail_pos -= 1;
                let lit = self.trail[trail_pos];
                if seen[lit.var() as usize] {
                    seen[lit.var() as usize] = false;
                    counter -= 1;
                    break lit;
                }
            };
            if counter == 0 {
                // `pivot` is the first unique implication point.
                let uip = pivot.negated();
                let backjump = learned
                    .iter()
                    .map(|l| self.levels[l.var() as usize])
                    .max()
                    .unwrap_or(0);
                learned.insert(0, uip);
                return (learned, backjump);
            }
            resolve_var = Some(pivot.var());
            clause_index =
                self.reasons[pivot.var() as usize].expect("propagated literal has a reason clause");
        }
    }

    fn backtrack_to(&mut self, level: u32) {
        while let Some(&lit) = self.trail.last() {
            let var = lit.var() as usize;
            if self.levels[var] <= level {
                break;
            }
            self.values[var] = None;
            self.levels[var] = UNASSIGNED_LEVEL;
            self.reasons[var] = None;
            self.trail.pop();
        }
        self.trail_lim.truncate(level as usize);
        self.propagate_head = self.trail.len().min(self.propagate_head);
        self.propagate_head = self.trail.len();
    }

    fn pick_branch_variable(&self) -> Option<usize> {
        (0..self.num_vars)
            .filter(|&v| self.values[v].is_none())
            .max_by(|&a, &b| {
                self.activity[a]
                    .partial_cmp(&self.activity[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    fn reset_search(&mut self) {
        self.backtrack_to(0);
        // Also clear level-0 assignments so solve() is repeatable.
        for var in 0..self.num_vars {
            self.values[var] = None;
            self.levels[var] = UNASSIGNED_LEVEL;
            self.reasons[var] = None;
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.propagate_head = 0;
    }

    /// Decides satisfiability of the formula.
    ///
    /// Returns [`SatResult::Sat`] with a model assigning every CNF variable,
    /// or [`SatResult::Unsat`].
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Decides satisfiability under temporarily-forced `assumptions`.
    ///
    /// Assumptions are enqueued as pseudo-decisions below every search
    /// decision (the MiniSat discipline), so learned clauses never depend on
    /// them and remain valid for later calls with different assumptions —
    /// the key property for incremental bounded model checking, where each
    /// depth activates a different property literal.
    ///
    /// Returns [`SatResult::Unsat`] if the formula is unsatisfiable *under
    /// the assumptions* (the formula itself may still be satisfiable).
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        if let Some(max_var) = assumptions.iter().map(|l| l.var()).max() {
            self.reserve_vars(max_var as usize + 1);
        }
        self.reset_search();

        // Assert unit clauses at level 0.
        for index in 0..self.clauses.len() {
            if self.clauses[index].literals.len() == 1 {
                let unit = self.clauses[index].literals[0];
                if !self.enqueue(unit, Some(index)) {
                    return SatResult::Unsat;
                }
            }
        }

        let mut conflicts_until_restart = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learned, backjump_level) = self.analyze(conflict);
                self.backtrack_to(backjump_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    if !self.enqueue(asserting, None) {
                        return SatResult::Unsat;
                    }
                } else {
                    let index = self.clauses.len();
                    self.watches[learned[0].code()].push(index);
                    self.watches[learned[1].code()].push(index);
                    self.clauses.push(Clause { literals: learned });
                    self.stats.learned_clauses += 1;
                    if !self.enqueue(asserting, Some(index)) {
                        return SatResult::Unsat;
                    }
                }
                self.decay_activity();
                if conflicts_since_restart >= conflicts_until_restart {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    self.backtrack_to(0);
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Establish the next assumption as a pseudo-decision.
                let assumption = assumptions[self.decision_level() as usize];
                match self.value_of(assumption) {
                    Some(true) => {
                        // Already implied: open an empty level so assumption
                        // indices keep lining up with decision levels.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        // The formula forces the complement: unsatisfiable
                        // under the assumptions.
                        return SatResult::Unsat;
                    }
                    None => {
                        self.trail_lim.push(self.trail.len());
                        let enqueued = self.enqueue(assumption, None);
                        debug_assert!(enqueued, "assumption variable was unassigned");
                    }
                }
            } else {
                match self.pick_branch_variable() {
                    None => {
                        let model = (0..self.num_vars)
                            .map(|v| self.values[v].unwrap_or(false))
                            .collect();
                        return SatResult::Sat(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase_saving && self.phases[var];
                        let lit = Lit::new(var as u32, phase);
                        let enqueued = self.enqueue(lit, None);
                        debug_assert!(enqueued, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

enum WatchOutcome {
    KeepWatch,
    Moved,
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcl_expr::{Cnf, Lit};

    fn lit(v: u32, positive: bool) -> Lit {
        Lit::new(v, positive)
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new(3);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(1, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model[0]);
                assert!(!model[1]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn contradictory_units_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_dropped() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true), lit(0, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // (x0) & (!x0 | x1) & (!x1 | x2) forces all true.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => assert_eq!(model, vec![true, true, true]),
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn unsat_requires_conflict_analysis() {
        // (a | b) & (a | !b) & (!a | b) & (!a | !b) is unsatisfiable.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, false)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(0, false), lit(1, false)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(solver.stats().conflicts >= 1);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variables p[i][j]: pigeon i in hole j; i in 0..3, j in 0..2.
        let var = |i: u32, j: u32| i * 2 + j;
        let mut cnf = Cnf::new(6);
        // Each pigeon in some hole.
        for i in 0..3 {
            cnf.add_clause([lit(var(i, 0), true), lit(var(i, 1), true)]);
        }
        // No two pigeons share a hole.
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_clause([lit(var(i1, j), false), lit(var(i2, j), false)]);
                }
            }
        }
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        // A slightly larger satisfiable instance.
        let mut cnf = Cnf::new(6);
        let clauses: Vec<Vec<(u32, bool)>> = vec![
            vec![(0, true), (1, false), (2, true)],
            vec![(1, true), (3, true)],
            vec![(2, false), (4, true), (5, false)],
            vec![(0, false), (5, true)],
            vec![(3, false), (4, false), (5, true)],
            vec![(1, true), (2, true), (4, true)],
        ];
        for c in &clauses {
            cnf.add_clause(c.iter().map(|&(v, s)| lit(v, s)));
        }
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(cnf.eval(|v| model[v as usize]));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn solver_agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let num_vars = rng.random_range(1..=8u32);
            let num_clauses = rng.random_range(1..=24usize);
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let width = rng.random_range(1..=3usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                    .collect();
                cnf.add_clause(clause);
            }
            let brute_force_sat =
                (0u64..(1 << num_vars)).any(|mask| cnf.eval(|v| mask & (1 << v) != 0));
            let mut solver = Solver::from_cnf(&cnf);
            let result = solver.solve();
            assert_eq!(
                result.is_sat(),
                brute_force_sat,
                "disagreement on {}",
                cnf.to_dimacs()
            );
            if let SatResult::Sat(model) = result {
                assert!(cnf.eval(|v| model[v as usize]));
            }
        }
    }

    #[test]
    fn solve_is_repeatable() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        let first = solver.solve();
        let second = solver.solve();
        assert_eq!(first.is_sat(), second.is_sat());
        assert!(first.is_sat());
    }

    #[test]
    fn assumptions_restrict_without_polluting() {
        // (a | b) is satisfiable; under assumptions !a, !b it is not.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
        assert_eq!(
            solver.solve_under_assumptions(&[lit(0, false), lit(1, false)]),
            SatResult::Unsat
        );
        // The assumptions were not added as clauses: still satisfiable.
        assert!(solver.solve().is_sat());
        // A single assumption forces the other variable.
        match solver.solve_under_assumptions(&[lit(0, false)]) {
            SatResult::Sat(model) => {
                assert!(!model[0]);
                assert!(model[1]);
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn assumptions_conflicting_with_units_are_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver.solve_under_assumptions(&[lit(0, false)]),
            SatResult::Unsat
        );
        // Redundant (already-implied) assumptions are fine.
        assert!(solver.solve_under_assumptions(&[lit(0, true)]).is_sat());
    }

    #[test]
    fn incremental_clause_addition_grows_the_universe() {
        let mut solver = Solver::new(0);
        assert!(solver.solve().is_sat());
        solver.add_clause([lit(0, true), lit(3, true)]);
        assert_eq!(solver.num_vars(), 4);
        assert!(solver.solve().is_sat());
        solver.add_clause([lit(0, false)]);
        solver.add_clause([lit(3, false)]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn learned_clauses_survive_assumption_cycles() {
        // An unsatisfiable core over x0..x2 plus a free selector x3. After a
        // first refutation under the selector, later calls reuse the learned
        // clauses (observable as a non-decreasing learned count and a correct
        // answer either way).
        let mut cnf = Cnf::new(4);
        let s = lit(3, false); // selector literal (x3 disables the core)
        for c in [
            vec![lit(0, true), lit(1, true)],
            vec![lit(0, true), lit(1, false)],
            vec![lit(0, false), lit(2, true)],
            vec![lit(0, false), lit(2, false)],
        ] {
            let mut clause = c.clone();
            clause.push(s.negated()); // core active only when x3 assumed false…
            cnf.add_clause(clause);
        }
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve_under_assumptions(&[s]), SatResult::Unsat);
        let learned_after_first = solver.stats().learned_clauses;
        // Without the activating assumption the formula is satisfiable.
        assert!(solver.solve().is_sat());
        // Re-activating is again unsatisfiable; learned clauses persisted.
        assert_eq!(solver.solve_under_assumptions(&[s]), SatResult::Unsat);
        assert!(solver.stats().learned_clauses >= learned_after_first);
    }

    #[test]
    fn incremental_and_monolithic_agree_on_random_formulas() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0xACE);
        for _ in 0..100 {
            let num_vars = rng.random_range(1..=6u32);
            let num_clauses = rng.random_range(1..=18usize);
            let mut cnf = Cnf::new(num_vars);
            let mut incremental = Solver::new(num_vars as usize);
            for _ in 0..num_clauses {
                let width = rng.random_range(1..=3usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                    .collect();
                cnf.add_clause(clause.clone());
                incremental.add_clause(clause);
                // Interleave solves to exercise clause retention mid-stream.
                let _ = incremental.solve();
            }
            let mut monolithic = Solver::from_cnf(&cnf);
            assert_eq!(
                incremental.solve().is_sat(),
                monolithic.solve().is_sat(),
                "disagreement on {}",
                cnf.to_dimacs()
            );
        }
    }

    #[test]
    fn assumption_order_does_not_matter() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        for assumptions in [
            vec![lit(0, true), lit(2, false)],
            vec![lit(2, false), lit(0, true)],
        ] {
            assert_eq!(
                solver.solve_under_assumptions(&assumptions),
                SatResult::Unsat
            );
        }
        assert!(solver
            .solve_under_assumptions(&[lit(0, true), lit(2, true)])
            .is_sat());
    }

    #[test]
    fn phase_saving_toggle_preserves_verdicts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0x9A5E);
        for _ in 0..60 {
            let num_vars = rng.random_range(1..=7u32);
            let num_clauses = rng.random_range(1..=20usize);
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let width = rng.random_range(1..=3usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| lit(rng.random_range(0..num_vars), rng.random_bool(0.5)))
                    .collect();
                cnf.add_clause(clause);
            }
            let mut saved = Solver::from_cnf(&cnf);
            assert!(saved.phase_saving());
            let mut fixed = Solver::from_cnf(&cnf);
            fixed.set_phase_saving(false);
            assert_eq!(saved.solve().is_sat(), fixed.solve().is_sat());
        }
    }

    #[test]
    fn phase_saving_revisits_last_polarity() {
        // Assuming an otherwise-unconstrained variable true records its
        // phase; with phase saving on the next unassumed solve re-decides it
        // true, with phase saving off it falls back to the `false` default.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve_under_assumptions(&[lit(1, true)]).is_sat());
        match solver.solve() {
            SatResult::Sat(model) => assert!(model[1], "saved phase is reused"),
            SatResult::Unsat => panic!("expected sat"),
        }
        solver.set_phase_saving(false);
        match solver.solve() {
            SatResult::Sat(model) => assert!(!model[1], "default polarity is false"),
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut solver = Solver::from_cnf(&cnf);
        let _ = solver.solve();
        assert!(solver.stats().decisions >= 1);
    }
}
